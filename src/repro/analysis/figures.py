"""Regenerate Figures 5-7 as data series and text charts."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.analysis.paper_data import FIG5_SYSTEM_ORDER
from repro.core.explorer import Explorer
from repro.core.report import format_breakdown_chart, format_series
from repro.sim.results import SimulationResult
from repro.taxonomy import AddressSpaceKind

__all__ = [
    "figure5_data",
    "figure6_data",
    "figure7_data",
    "figure5_text",
    "figure6_text",
    "figure7_text",
]


def figure5_data(
    explorer: Optional[Explorer] = None,
) -> Dict[str, Dict[str, SimulationResult]]:
    """Figure 5's content: {kernel: {system: result}} for the five systems."""
    explorer = explorer or Explorer()
    return explorer.run_case_studies()


def figure6_data(
    explorer: Optional[Explorer] = None,
    results: Optional[Dict[str, Dict[str, SimulationResult]]] = None,
) -> Dict[str, Dict[str, float]]:
    """Figure 6's content: communication seconds per (kernel, system)."""
    results = results or figure5_data(explorer)
    return {
        kernel: {
            system: result.breakdown.communication
            for system, result in per_system.items()
        }
        for kernel, per_system in results.items()
    }


def figure7_data(
    explorer: Optional[Explorer] = None,
) -> Dict[str, Dict[str, float]]:
    """Figure 7's content: total seconds per (kernel, address space) with
    ideal communication."""
    explorer = explorer or Explorer()
    raw = explorer.run_address_spaces()
    return {
        kernel: {space.short: result.total_seconds for space, result in per_space.items()}
        for kernel, per_space in raw.items()
    }


def figure5_text(explorer: Optional[Explorer] = None) -> str:
    """Figure 5 as a text chart (stacked S/P/C bars, normalized)."""
    results = figure5_data(explorer)
    ordered = {
        kernel: {name: per_system[name] for name in FIG5_SYSTEM_ORDER}
        for kernel, per_system in results.items()
    }
    return (
        "Figure 5: execution time breakdown "
        "(S=sequential, P=parallel, C=communication)\n"
        + format_breakdown_chart(ordered)
    )


def figure6_text(explorer: Optional[Explorer] = None) -> str:
    """Figure 6 as a table of communication times (microseconds)."""
    data = figure6_data(explorer)
    scaled = {
        kernel: {system: seconds * 1e6 for system, seconds in row.items()}
        for kernel, row in data.items()
    }
    return format_series(scaled, value_label="Figure 6: communication overhead (us)")


def figure7_text(explorer: Optional[Explorer] = None) -> str:
    """Figure 7 as a table of total times (microseconds)."""
    data = figure7_data(explorer)
    scaled = {
        kernel: {space: seconds * 1e6 for space, seconds in row.items()}
        for kernel, row in data.items()
    }
    return format_series(
        scaled, value_label="Figure 7: address spaces under ideal communication (us)"
    )
