"""Regenerate Figures 5-7 (and the coherence-overhead figure) as data
series and text charts."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.analysis.paper_data import FIG5_SYSTEM_ORDER
from repro.core.explorer import Explorer
from repro.core.report import format_breakdown_chart, format_series, format_table
from repro.sim.results import SimulationResult
from repro.taxonomy import AddressSpaceKind

__all__ = [
    "figure5_data",
    "figure6_data",
    "figure7_data",
    "figure5_text",
    "figure6_text",
    "figure7_text",
    "coherence_data",
    "coherence_text",
]


def figure5_data(
    explorer: Optional[Explorer] = None,
) -> Dict[str, Dict[str, SimulationResult]]:
    """Figure 5's content: {kernel: {system: result}} for the five systems."""
    explorer = explorer or Explorer()
    return explorer.run_case_studies()


def figure6_data(
    explorer: Optional[Explorer] = None,
    results: Optional[Dict[str, Dict[str, SimulationResult]]] = None,
) -> Dict[str, Dict[str, float]]:
    """Figure 6's content: communication seconds per (kernel, system)."""
    results = results or figure5_data(explorer)
    return {
        kernel: {
            system: result.breakdown.communication
            for system, result in per_system.items()
        }
        for kernel, per_system in results.items()
    }


def figure7_data(
    explorer: Optional[Explorer] = None,
) -> Dict[str, Dict[str, float]]:
    """Figure 7's content: total seconds per (kernel, address space) with
    ideal communication."""
    explorer = explorer or Explorer()
    raw = explorer.run_address_spaces()
    return {
        kernel: {space.short: result.total_seconds for space, result in per_space.items()}
        for kernel, per_space in raw.items()
    }


def figure5_text(explorer: Optional[Explorer] = None) -> str:
    """Figure 5 as a text chart (stacked S/P/C bars, normalized)."""
    results = figure5_data(explorer)
    ordered = {
        kernel: {name: per_system[name] for name in FIG5_SYSTEM_ORDER}
        for kernel, per_system in results.items()
    }
    return (
        "Figure 5: execution time breakdown "
        "(S=sequential, P=parallel, C=communication)\n"
        + format_breakdown_chart(ordered)
    )


def figure6_text(explorer: Optional[Explorer] = None) -> str:
    """Figure 6 as a table of communication times (microseconds)."""
    data = figure6_data(explorer)
    scaled = {
        kernel: {system: seconds * 1e6 for system, seconds in row.items()}
        for kernel, row in data.items()
    }
    return format_series(scaled, value_label="Figure 6: communication overhead (us)")


def coherence_data(
    explorer: Optional[Explorer] = None,
    kernels: Optional[Tuple] = None,
) -> Dict[str, Dict[str, Dict[str, SimulationResult]]]:
    """The coherence figure's content: {space: {protocol: {kernel: result}}}.

    Every address space's shared data is staged into the shared window
    (:func:`~repro.sim.mmu.stage_shared_trace`) and run under each protocol
    variant with ideal communication, so protocol traffic is the only
    variable between the columns. ``"none"`` is the overhead baseline.
    ``kernels`` restricts the sweep (default: all six paper kernels).
    """
    explorer = explorer or Explorer()
    return explorer.run_coherence_overhead(kernels=kernels)


def _protocol_invalidations(per_kernel: Dict[str, SimulationResult], kind: str) -> float:
    key = f"{kind}.invalidations_sent"
    return sum(r.counters.get(key, 0.0) for r in per_kernel.values())


def coherence_text(
    explorer: Optional[Explorer] = None,
    data: Optional[Dict[str, Dict[str, Dict[str, SimulationResult]]]] = None,
) -> str:
    """The coherence figure as a text table, plus the Table V deltas.

    One row per address space: total time (all six kernels) under no
    protocol, snooping, and a directory; the percentage each protocol adds
    over the protocol-free baseline; and the invalidations each generated.
    A second table shows what access-mode declarations do to the Table V
    communication-line counts — the programmability face of the same axis.
    """
    from repro.core.programmability import (
        TABLE5_SPACE_ORDER,
        table5_declared_dict,
        table5_dict,
    )

    data = data if data is not None else coherence_data(explorer)
    rows = []
    for space in ("UNI", "PAS", "DIS", "ADSM"):
        per_protocol = data[space]
        totals = {
            kind: sum(r.total_seconds for r in per_kernel.values())
            for kind, per_kernel in per_protocol.items()
        }
        base = totals["none"]
        rows.append(
            (
                space,
                f"{base * 1e6:.1f}",
                f"{totals['snoop'] * 1e6:.1f}",
                f"{(totals['snoop'] / base - 1) * 100:+.2f}%",
                f"{totals['directory'] * 1e6:.1f}",
                f"{(totals['directory'] / base - 1) * 100:+.2f}%",
                int(_protocol_invalidations(per_protocol["snoop"], "snoop")),
                int(_protocol_invalidations(per_protocol["directory"], "directory")),
            )
        )
    overhead = format_table(
        ("space", "none us", "snoop us", "snoop d", "dir us", "dir d", "inv(s)", "inv(d)"),
        rows,
        title="Coherence overhead by address space "
        "(six kernels, ideal communication, shared data staged)",
    )

    plain = table5_dict()
    declared = table5_declared_dict()
    delta_rows = []
    for kernel in sorted(plain):
        delta_rows.append(
            (kernel,)
            + tuple(
                f"{plain[kernel][kind]} -> {declared[kernel][kind]}"
                for kind in TABLE5_SPACE_ORDER
            )
        )
    deltas = format_table(
        ("kernel", "UNI", "PAS", "DIS", "ADSM"),
        delta_rows,
        title="Table V comm lines without -> with access declarations",
    )
    return overhead + "\n\n" + deltas


def figure7_text(explorer: Optional[Explorer] = None) -> str:
    """Figure 7 as a table of total times (microseconds)."""
    data = figure7_data(explorer)
    scaled = {
        kernel: {space: seconds * 1e6 for space, seconds in row.items()}
        for kernel, row in data.items()
    }
    return format_series(
        scaled, value_label="Figure 7: address spaces under ideal communication (us)"
    )
