"""Diff two metrics exports (the ``repro-explore metrics-diff`` backend).

Two runs of the same experiment — before and after a model change, at
different job counts, with a different simulator — each write a metrics
file via ``--metrics-out``. This module loads either format (the
``metric,value`` CSV or the flat JSON object), subtracts them sample by
sample over the union of names, and renders the non-zero deltas as an
aligned report, largest relative change first.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, List, Tuple

from repro.errors import ConfigError
from repro.obs.metrics import MetricSnapshot

__all__ = ["load_metrics", "diff_metrics", "format_metrics_diff"]


def load_metrics(path: str) -> MetricSnapshot:
    """Load a ``--metrics-out`` file (CSV with a header, or a JSON object)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ConfigError(f"cannot read metrics file {path!r}: {exc}") from exc
    stripped = text.lstrip()
    if not stripped:
        raise ConfigError(f"metrics file {path!r} is empty")
    if stripped.startswith("{"):
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ConfigError(f"metrics JSON {path!r} must be a flat object")
        return MetricSnapshot({str(k): float(v) for k, v in data.items()})
    samples: Dict[str, float] = {}
    reader = csv.reader(text.splitlines())
    for row_number, row in enumerate(reader):
        if not row:
            continue
        if row_number == 0 and row[0].strip().lower() == "metric":
            continue  # header line
        if len(row) < 2:
            raise ConfigError(
                f"metrics CSV {path!r} line {row_number + 1}: expected metric,value"
            )
        try:
            samples[row[0]] = float(row[1])
        except ValueError as exc:
            raise ConfigError(
                f"metrics CSV {path!r} line {row_number + 1}: {exc}"
            ) from exc
    return MetricSnapshot(samples)


def diff_metrics(before: MetricSnapshot, after: MetricSnapshot) -> MetricSnapshot:
    """Per-sample ``after - before`` over the union of metric names."""
    return after.diff(before)


def _relative(delta: float, base: float) -> float:
    if base:
        return delta / abs(base)
    return float("inf") if delta else 0.0


def format_metrics_diff(
    before: MetricSnapshot,
    after: MetricSnapshot,
    include_unchanged: bool = False,
) -> str:
    """An aligned before/after/delta report, largest relative change first."""
    delta = diff_metrics(before, after)
    rows: List[Tuple[str, float, float, float, float]] = []
    for name in sorted(delta):
        d = delta[name]
        if d == 0.0 and not include_unchanged:
            continue
        b = before.get(name, 0.0)
        a = after.get(name, 0.0)
        rows.append((name, b, a, d, _relative(d, b)))
    if not rows:
        return "no metric changed"
    rows.sort(key=lambda row: (-abs(row[4]), row[0]))
    width = max(len(row[0]) for row in rows)
    lines = [
        f"{'metric'.ljust(width)}  {'before':>14}  {'after':>14}  "
        f"{'delta':>14}  {'rel':>8}"
    ]
    for name, b, a, d, rel in rows:
        rel_text = "new" if rel == float("inf") else f"{rel:+.1%}"
        lines.append(
            f"{name.ljust(width)}  {b:>14.6g}  {a:>14.6g}  {d:>+14.6g}  {rel_text:>8}"
        )
    return "\n".join(lines)
