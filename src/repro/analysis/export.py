"""Machine-readable export of every regenerated experiment.

A downstream user comparing against this reproduction should not have to
scrape text tables: :func:`export_results` runs every experiment and
writes one JSON document with the regenerated Tables III/V, the Figure 5-7
data series, the 30 paper-vs-measured checks, and the environment's
configuration fingerprint.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.analysis.compare import compare_all
from repro.analysis.figures import figure5_data, figure6_data, figure7_data
from repro.config.comm import CommParams
from repro.core.explorer import Explorer
from repro.core.programmability import table5_rows
from repro.kernels.registry import all_kernels
from repro.version import __version__

__all__ = ["collect_results", "export_results"]

SCHEMA_VERSION = 1


def collect_results(explorer: Optional[Explorer] = None) -> Dict[str, Any]:
    """Run every experiment and gather the results as plain data."""
    explorer = explorer or Explorer()
    params = CommParams()

    fig5 = figure5_data(explorer)
    results: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "library_version": __version__,
        "config": {
            "api_pci_base_cycles": params.api_pci_base_cycles,
            "api_acq_cycles": params.api_acq_cycles,
            "api_tr_cycles": params.api_tr_cycles,
            "lib_pf_cycles": params.lib_pf_cycles,
            "pci_bandwidth_bytes_per_s": params.pci_bandwidth.bytes_per_second,
        },
        "table3": {
            k.name: {
                "cpu_instructions": k.table3_row().cpu_instructions,
                "gpu_instructions": k.table3_row().gpu_instructions,
                "serial_instructions": k.table3_row().serial_instructions,
                "num_communications": k.table3_row().num_communications,
                "initial_transfer_bytes": k.table3_row().initial_transfer_bytes,
            }
            for k in all_kernels()
        },
        "table5": [
            {
                "kernel": row[0],
                "comp": row[1],
                "uni": row[2],
                "pas": row[3],
                "dis": row[4],
                "adsm": row[5],
            }
            for row in table5_rows()
        ],
        "figure5": {
            kernel: {
                system: {
                    "sequential_s": r.breakdown.sequential,
                    "parallel_s": r.breakdown.parallel,
                    "communication_s": r.breakdown.communication,
                    "total_s": r.total_seconds,
                }
                for system, r in per_system.items()
            }
            for kernel, per_system in fig5.items()
        },
        "figure6": figure6_data(results=fig5),
        "figure7": figure7_data(explorer),
        "checks": [
            {
                "experiment": c.experiment,
                "description": c.description,
                "paper": c.paper,
                "measured": c.measured,
                "passed": c.passed,
            }
            for c in compare_all(explorer)
        ],
    }
    return results


def export_results(
    path: Union[str, Path], explorer: Optional[Explorer] = None
) -> Path:
    """Write :func:`collect_results` output as JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(collect_results(explorer), indent=2, sort_keys=True))
    return path
