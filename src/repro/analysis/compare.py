"""Automated paper-vs-measured comparison.

Runs every experiment and checks the measured output against the paper's
exact numbers (Tables III-V) or qualitative claims (Figures 5-7, the
programmability ordering, and the design-space conclusion). The output of
:func:`compare_all` is what EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis import paper_data
from repro.analysis.figures import figure5_data, figure6_data, figure7_data
from repro.core.explorer import Explorer
from repro.core.programmability import programmability_rank, table5_dict
from repro.core.space import DesignSpace
from repro.kernels.registry import all_kernels
from repro.taxonomy import AddressSpaceKind

__all__ = ["Check", "compare_all"]


@dataclass(frozen=True)
class Check:
    """One paper-vs-measured check."""

    experiment: str
    description: str
    paper: str
    measured: str
    passed: bool

    def line(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return (
            f"[{mark}] {self.experiment}: {self.description} "
            f"(paper: {self.paper}; measured: {self.measured})"
        )


def _check_table3() -> List[Check]:
    checks = []
    for kernel in all_kernels():
        row = kernel.table3_row()
        measured = (
            row.cpu_instructions,
            row.gpu_instructions,
            row.serial_instructions,
            row.num_communications,
            row.initial_transfer_bytes,
        )
        expected = paper_data.TABLE3_EXPECTED[kernel.name]
        checks.append(
            Check(
                experiment="Table III",
                description=f"{kernel.name} trace statistics",
                paper=str(expected),
                measured=str(measured),
                passed=measured == expected,
            )
        )
    return checks


def _check_table5() -> List[Check]:
    checks = []
    measured_table = table5_dict()
    for kernel_name, expected in paper_data.TABLE5_EXPECTED.items():
        per_space = measured_table[kernel_name]
        measured = (
            expected[0],  # Comp is metadata from the paper by construction
            per_space[AddressSpaceKind.UNIFIED],
            per_space[AddressSpaceKind.PARTIALLY_SHARED],
            per_space[AddressSpaceKind.DISJOINT],
            per_space[AddressSpaceKind.ADSM],
        )
        checks.append(
            Check(
                experiment="Table V",
                description=f"{kernel_name} comm-handling lines per space",
                paper=str(expected),
                measured=str(measured),
                passed=measured == expected,
            )
        )
    order = programmability_rank()
    checks.append(
        Check(
            experiment="Table V",
            description="programmability ordering UNI < PAS <= ADSM < DIS",
            paper=" < ".join(k.short for k in paper_data.PROGRAMMABILITY_ORDER),
            measured=" < ".join(k.short for k in order),
            passed=tuple(order) == paper_data.PROGRAMMABILITY_ORDER,
        )
    )
    return checks


def _check_figure5(explorer: Explorer) -> List[Check]:
    results = figure5_data(explorer)
    checks = []
    # Parallel computation dominates everywhere.
    dominated = all(
        r.breakdown.parallel
        >= max(r.breakdown.sequential, r.breakdown.communication)
        for per_system in results.values()
        for r in per_system.values()
    )
    checks.append(
        Check(
            experiment="Figure 5",
            description="parallel computation dominates execution time",
            paper="majority of time in parallel computation",
            measured=f"dominates in all cells: {dominated}",
            passed=dominated,
        )
    )
    for slower, faster in paper_data.FIG5_TOTAL_TIME_ORDERING:
        ok = all(
            per_system[slower].total_seconds >= per_system[faster].total_seconds * 0.999
            for per_system in results.values()
        )
        checks.append(
            Check(
                experiment="Figure 5",
                description=f"{slower} is no faster than {faster} on every kernel",
                paper=f"{slower} >= {faster}",
                measured=f"holds on all kernels: {ok}",
                passed=ok,
            )
        )
    # The kernels the paper singles out for "relatively high communication
    # overhead" must each sit clearly above the fully-parallel compute-heavy
    # kernels (matrix mul, dct). See EXPERIMENTS.md for the convolution
    # caveat: Table III's counts make convolution comm-intensive too.
    comm_frac = {
        kernel: per_system["CPU+GPU"].breakdown.communication_fraction
        for kernel, per_system in results.items()
    }
    low_comm = max(comm_frac["matrix mul"], comm_frac["dct"])
    named = sorted(paper_data.FIG5_HIGH_COMM_KERNELS)
    ok = all(comm_frac[kernel] > low_comm for kernel in named)
    checks.append(
        Check(
            experiment="Figure 5",
            description="paper's high-communication kernels exceed the "
            "fully-parallel kernels",
            paper=", ".join(named) + " have relatively high comm overhead",
            measured="; ".join(f"{k}: {comm_frac[k]:.1%}" for k in sorted(comm_frac)),
            passed=ok,
        )
    )
    return checks


def _check_figure6(explorer: Explorer) -> List[Check]:
    data = figure6_data(explorer)
    checks = []
    for slower, faster in paper_data.FIG6_COMM_ORDERING:
        ok = all(row[slower] >= row[faster] * 0.999 for row in data.values())
        checks.append(
            Check(
                experiment="Figure 6",
                description=f"comm overhead {slower} >= {faster} on every kernel",
                paper=f"{slower} >= {faster}",
                measured=f"holds on all kernels: {ok}",
                passed=ok,
            )
        )
    ideal_zero = all(row["IDEAL-HETERO"] == 0.0 for row in data.values())
    checks.append(
        Check(
            experiment="Figure 6",
            description="IDEAL-HETERO has zero communication cost",
            paper="0",
            measured=str(ideal_zero),
            passed=ideal_zero,
        )
    )
    return checks


def _check_figure7(explorer: Explorer) -> List[Check]:
    data = figure7_data(explorer)
    checks = []
    worst = 0.0
    for kernel, row in data.items():
        lo, hi = min(row.values()), max(row.values())
        spread = (hi - lo) / lo if lo else 0.0
        worst = max(worst, spread)
    checks.append(
        Check(
            experiment="Figure 7",
            description="address space choice barely affects performance",
            paper=f"spread < {paper_data.FIG7_MAX_SPREAD:.0%}",
            measured=f"max spread {worst:.3%}",
            passed=worst < paper_data.FIG7_MAX_SPREAD,
        )
    )
    return checks


def _check_conclusion() -> List[Check]:
    space = DesignSpace()
    winner = space.most_versatile_address_space()
    return [
        Check(
            experiment="Conclusion",
            description="most versatile address space by feasible design points",
            paper="partially shared",
            measured=winner.value,
            passed=winner is AddressSpaceKind.PARTIALLY_SHARED,
        )
    ]


def compare_all(explorer: Optional[Explorer] = None) -> List[Check]:
    """Run every paper-vs-measured check."""
    explorer = explorer or Explorer()
    checks: List[Check] = []
    checks.extend(_check_table3())
    checks.extend(_check_table5())
    checks.extend(_check_figure5(explorer))
    checks.extend(_check_figure6(explorer))
    checks.extend(_check_figure7(explorer))
    checks.extend(_check_conclusion())
    return checks
