"""The paper's reported numbers and qualitative claims, as data.

Quantities the paper prints exactly (Tables III-V) are embedded verbatim;
figures 5-7 are bar charts without printed numbers, so their content is
captured as the qualitative claims the text makes about them.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.taxonomy import AddressSpaceKind

__all__ = [
    "TABLE3_EXPECTED",
    "TABLE4_EXPECTED",
    "TABLE5_EXPECTED",
    "FIG5_SYSTEM_ORDER",
    "FIG5_TOTAL_TIME_ORDERING",
    "FIG5_HIGH_COMM_KERNELS",
    "FIG6_COMM_ORDERING",
    "FIG7_MAX_SPREAD",
    "PROGRAMMABILITY_ORDER",
]

#: Table III: name -> (cpu, gpu, serial, #comms, initial bytes).
TABLE3_EXPECTED: Dict[str, Tuple[int, int, int, int, int]] = {
    "reduction": (70006, 70001, 99996, 2, 320512),
    "matrix mul": (8585229, 8585228, 16384, 2, 524288),
    "convolution": (448260, 448259, 65536, 3, 65536),
    "dct": (2359298, 2359298, 262144, 2, 262244),
    "merge sort": (161233, 157233, 97668, 2, 39936),
    "k-mean": (1847765, 1844981, 36784, 6, 136192),
}

#: Table IV: special-instruction name -> latency in CPU cycles (api-pci's
#: size-dependent term is bytes / 16 GB/s on top of the base).
TABLE4_EXPECTED: Dict[str, int] = {
    "api-pci": 33250,
    "api-acq": 1000,
    "api-tr": 7000,
    "lib-pf": 42000,
}

#: Table V: kernel -> (Comp, UNI, PAS, DIS, ADSM).
TABLE5_EXPECTED: Dict[str, Tuple[int, int, int, int, int]] = {
    "matrix mul": (39, 0, 2, 9, 6),
    "merge sort": (112, 0, 2, 6, 4),
    "dct": (410, 0, 2, 6, 4),
    "reduction": (142, 0, 2, 9, 6),
    "convolution": (75, 0, 4, 9, 6),
    "k-mean": (332, 0, 6, 6, 4),
}

#: Figure 5/6 system order.
FIG5_SYSTEM_ORDER: Tuple[str, ...] = (
    "CPU+GPU",
    "LRB",
    "GMAC",
    "Fusion",
    "IDEAL-HETERO",
)

#: §V-A: "CPU+GPU, LRB and GMAC have a longer execution time than those of
#: IDEAL-HETERO and Fusion." Systems earlier in this tuple must be at
#: least as slow as later ones.
FIG5_TOTAL_TIME_ORDERING: Tuple[Tuple[str, str], ...] = (
    ("CPU+GPU", "Fusion"),
    ("LRB", "Fusion"),
    ("GMAC", "Fusion"),
    ("CPU+GPU", "IDEAL-HETERO"),
    ("LRB", "IDEAL-HETERO"),
    ("GMAC", "IDEAL-HETERO"),
    ("Fusion", "IDEAL-HETERO"),
)

#: §V-A: kernels singled out for "relatively high communication overhead"
#: (the printed percentages are the paper's: reduction 1.3% is almost
#: certainly a typo for 13%, recorded verbatim regardless).
FIG5_HIGH_COMM_KERNELS: Dict[str, float] = {
    "reduction": 0.013,
    "merge sort": 0.12,
    "k-mean": 0.076,
}

#: Figure 6 claims: GMAC hides copies, Fusion's cost is "very small
#: compared to PCI-e", IDEAL is zero. Pairs (slower, faster) by
#: communication overhead.
FIG6_COMM_ORDERING: Tuple[Tuple[str, str], ...] = (
    ("CPU+GPU", "GMAC"),
    ("CPU+GPU", "Fusion"),
    ("LRB", "Fusion"),
    ("GMAC", "Fusion"),
    ("Fusion", "IDEAL-HETERO"),
)

#: Figure 7: "there is almost no performance difference between options" —
#: max relative spread between the four address spaces per kernel.
FIG7_MAX_SPREAD: float = 0.01

#: §V-C: programmability overhead ordering (fewest extra lines first):
#: Unified < partially shared <= ADSM < disjoint.
PROGRAMMABILITY_ORDER: Tuple[AddressSpaceKind, ...] = (
    AddressSpaceKind.UNIFIED,
    AddressSpaceKind.PARTIALLY_SHARED,
    AddressSpaceKind.ADSM,
    AddressSpaceKind.DISJOINT,
)
