"""Analysis: regenerate every paper table/figure and compare to the paper.

- :mod:`repro.analysis.paper_data` — the paper's reported numbers and
  qualitative claims, embedded as data;
- :mod:`repro.analysis.tables` — Tables I-V as formatted text;
- :mod:`repro.analysis.figures` — Figures 5-7 as data series and text
  charts;
- :mod:`repro.analysis.compare` — automated paper-vs-measured checks
  (the source of EXPERIMENTS.md).
"""

from repro.analysis.figures import figure5_data, figure6_data, figure7_data
from repro.analysis.tables import table1, table2, table3, table4, table5
from repro.analysis.compare import Check, compare_all
from repro.analysis.export import collect_results, export_results
from repro.analysis.metrics_diff import diff_metrics, format_metrics_diff, load_metrics

__all__ = [
    "load_metrics",
    "diff_metrics",
    "format_metrics_diff",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "figure5_data",
    "figure6_data",
    "figure7_data",
    "Check",
    "compare_all",
    "collect_results",
    "export_results",
]
