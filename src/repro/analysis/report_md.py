"""One-shot markdown report of the whole reproduction.

``repro-explore report`` (or :func:`full_report`) regenerates every table,
every figure (as text charts), the 30 paper-vs-measured checks, and the
efficiency guidelines into a single markdown document — the artifact to
attach to a reproduction claim.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.analysis.compare import compare_all
from repro.analysis.figures import figure5_text, figure6_text, figure7_text
from repro.analysis.tables import table1, table2, table3, table4, table5
from repro.core.explorer import Explorer
from repro.core.metrics import EfficiencyMetric
from repro.version import __version__

__all__ = ["full_report", "write_report"]


def _block(text: str) -> str:
    return "```\n" + text.rstrip() + "\n```\n"


def full_report(explorer: Optional[Explorer] = None) -> str:
    """The complete reproduction report as markdown."""
    explorer = explorer or Explorer()
    checks = compare_all(explorer)
    passed = sum(1 for c in checks if c.passed)

    sections = [
        "# Reproduction report",
        "",
        f"Library version {__version__}. Lim & Kim, *Design Space Exploration "
        "of Memory Model for Heterogeneous Computing* (MSPC/PLDI-W 2012).",
        "",
        f"**Paper-vs-measured checks: {passed}/{len(checks)} passed.**",
        "",
        "## Tables",
        "",
        _block(table1()),
        _block(table2()),
        _block(table3()),
        _block(table4()),
        _block(table5()),
        "## Figures",
        "",
        _block(figure5_text(explorer)),
        _block(figure6_text(explorer)),
        _block(figure7_text(explorer)),
        "## Checks",
        "",
        _block("\n".join(c.line() for c in checks)),
        "## Efficiency guidelines (paper §VII future work)",
        "",
        _block(EfficiencyMetric().guidelines()),
    ]
    return "\n".join(sections)


def write_report(path: Union[str, Path], explorer: Optional[Explorer] = None) -> Path:
    """Write :func:`full_report` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(full_report(explorer))
    return path
