"""Regenerate the paper's five tables as formatted text."""

from __future__ import annotations

from repro.config.comm import CommParams
from repro.config.system import SystemConfig
from repro.core.programmability import table5_rows
from repro.core.report import format_table
from repro.kernels.registry import all_kernels
from repro.systems.registry import table1_rows

__all__ = ["table1", "table2", "table3", "table4", "table5"]


def table1() -> str:
    """Table I: summary of existing heterogeneous memory systems."""
    headers = (
        "scheme",
        "address space",
        "connection",
        "coherence",
        "shared data use",
        "consistency",
        "synchronization",
        "locality",
    )
    return format_table(
        headers,
        table1_rows(),
        title="Table I: heterogeneous computing memory systems",
    )


def table2(system: "SystemConfig | None" = None) -> str:
    """Table II: the baseline system configuration."""
    system = system or SystemConfig()
    return format_table(
        ("parameter", "CPU", "GPU"),
        system.table_rows(),
        title="Table II: baseline system configuration",
    )


def table3() -> str:
    """Table III: benchmark characteristics (regenerated from the traces)."""
    headers = (
        "name",
        "compute pattern",
        "CPU instrs",
        "GPU instrs",
        "serial",
        "# comms",
        "initial bytes",
    )
    rows = [k.table3_row().as_row() for k in all_kernels()]
    return format_table(headers, rows, title="Table III: benchmark characteristics")


def table4(params: "CommParams | None" = None) -> str:
    """Table IV: communication-overhead parameters."""
    params = params or CommParams()
    return format_table(
        ("name", "description", "system", "latency"),
        params.table_rows(),
        title="Table IV: communication overhead parameters "
        f"(trans_rate = {params.pci_bandwidth} PCI-E)",
    )


def table5() -> str:
    """Table V: source lines handling data communication (derived from the
    mini-DSL lowering, not hard-coded)."""
    headers = ("kernel", "Comp", "UNI", "PAS", "DIS", "ADSM")
    return format_table(
        headers,
        table5_rows(),
        title="Table V: source lines to handle data communication",
    )
