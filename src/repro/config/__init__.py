"""Configuration objects for the heterogeneous system under study.

``repro.config`` holds everything the paper fixes in its methodology section:

- :mod:`repro.config.system` — the Table II baseline machine (one
  Sandy-Bridge-like CPU core, one Fermi-like GPU core, cache hierarchy, ring
  bus, DDR3-1333 DRAM);
- :mod:`repro.config.comm` — the Table IV communication-overhead parameters
  (``api-pci``, ``api-acq``, ``api-tr``, ``lib-pf``);
- :mod:`repro.config.presets` — named configurations for the five case-study
  systems of Section V-A (CPU+GPU, LRB, GMAC, Fusion, IDEAL-HETERO).
"""

from repro.config.comm import CommParams, DEFAULT_COMM_PARAMS
from repro.config.system import (
    BranchPredictorConfig,
    CacheConfig,
    CpuConfig,
    DramConfig,
    GpuConfig,
    InterconnectConfig,
    SystemConfig,
    baseline_system,
)
from repro.config.presets import (
    CaseStudy,
    case_study,
    case_study_names,
    CASE_STUDIES,
)

__all__ = [
    "BranchPredictorConfig",
    "CacheConfig",
    "CpuConfig",
    "DramConfig",
    "GpuConfig",
    "InterconnectConfig",
    "SystemConfig",
    "baseline_system",
    "CommParams",
    "DEFAULT_COMM_PARAMS",
    "CaseStudy",
    "case_study",
    "case_study_names",
    "CASE_STUDIES",
]
