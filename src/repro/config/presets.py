"""Named configurations for the five case-study systems (paper §V-A).

The paper evaluates five distinct heterogeneous computing systems, all with
identical CPUs and GPUs (Table II) so that only the memory system differs:

- **CPU+GPU** (CUDA): disjoint address space over PCI-E; the final GPU
  result must be copied back to host memory.
- **LRB**: partially shared address space through a PCI aperture, with
  ownership (acquire/release) and first-touch page faults in the shared
  window.
- **GMAC**: ADSM over PCI-E with asynchronous copies that overlap
  computation.
- **Fusion**: disjoint address space connected through the memory
  controllers; transfers become ordinary DRAM traffic.
- **IDEAL-HETERO**: a unified, fully coherent system with zero
  communication cost (the upper bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigError
from repro.taxonomy import (
    AddressSpaceKind,
    CoherenceKind,
    CommMechanism,
    ConsistencyModel,
)

__all__ = [
    "CaseStudy",
    "CASE_STUDIES",
    "EXTENDED_CASE_STUDIES",
    "case_study",
    "case_study_names",
]


@dataclass(frozen=True)
class CaseStudy:
    """One of the five evaluated systems, reduced to its memory-model axes."""

    name: str
    address_space: AddressSpaceKind
    comm: CommMechanism
    coherence: CoherenceKind
    consistency: ConsistencyModel
    async_overlap: bool = False
    aperture_pages: bool = False
    reference: str = ""

    def __post_init__(self) -> None:
        if self.aperture_pages and self.comm is not CommMechanism.PCI_APERTURE:
            raise ConfigError(
                f"{self.name}: aperture page faults require the PCI-aperture mechanism"
            )


CASE_STUDIES: Dict[str, CaseStudy] = {
    "CPU+GPU": CaseStudy(
        name="CPU+GPU",
        address_space=AddressSpaceKind.DISJOINT,
        comm=CommMechanism.PCIE,
        coherence=CoherenceKind.NONE,
        consistency=ConsistencyModel.WEAK,
        reference="CUDA Programming Guide V4.0 [29]",
    ),
    "LRB": CaseStudy(
        name="LRB",
        address_space=AddressSpaceKind.PARTIALLY_SHARED,
        comm=CommMechanism.PCI_APERTURE,
        coherence=CoherenceKind.OWNERSHIP,
        consistency=ConsistencyModel.WEAK,
        aperture_pages=True,
        reference="Saha et al., PLDI 2009 [31]",
    ),
    "GMAC": CaseStudy(
        name="GMAC",
        address_space=AddressSpaceKind.ADSM,
        comm=CommMechanism.PCIE,
        coherence=CoherenceKind.SOFTWARE_RUNTIME,
        consistency=ConsistencyModel.WEAK,
        async_overlap=True,
        reference="Gelado et al., ASPLOS 2010 [10]",
    ),
    "Fusion": CaseStudy(
        name="Fusion",
        address_space=AddressSpaceKind.DISJOINT,
        comm=CommMechanism.MEMORY_CONTROLLER,
        coherence=CoherenceKind.NONE,
        consistency=ConsistencyModel.WEAK,
        reference="AMD Fusion APU [3]",
    ),
    "IDEAL-HETERO": CaseStudy(
        name="IDEAL-HETERO",
        address_space=AddressSpaceKind.UNIFIED,
        comm=CommMechanism.IDEAL,
        coherence=CoherenceKind.HARDWARE_DIRECTORY,
        consistency=ConsistencyModel.STRONG,
        reference="hypothetical upper bound (paper §V-A)",
    ),
}


#: Additional systems from Table I, modeled with the same machinery (the
#: paper evaluates five; these extend Figure 5's comparison to the
#: interconnect-connected and on-die-unified designs it only tabulates).
EXTENDED_CASE_STUDIES: Dict[str, CaseStudy] = {
    "Cell-like": CaseStudy(
        name="Cell-like",
        address_space=AddressSpaceKind.DISJOINT,
        comm=CommMechanism.INTERCONNECT,
        coherence=CoherenceKind.NONE,
        consistency=ConsistencyModel.WEAK,
        reference="IBM Cell [16] (Table I)",
    ),
    "COMIC-like": CaseStudy(
        name="COMIC-like",
        address_space=AddressSpaceKind.UNIFIED,
        comm=CommMechanism.INTERCONNECT,
        coherence=CoherenceKind.HARDWARE_DIRECTORY,
        consistency=ConsistencyModel.CENTRALIZED_RELEASE,
        reference="COMIC [21] (Table I)",
    ),
    "EXOCHI-like": CaseStudy(
        name="EXOCHI-like",
        address_space=AddressSpaceKind.UNIFIED,
        comm=CommMechanism.MEMORY_CONTROLLER,
        coherence=CoherenceKind.HARDWARE_DIRECTORY,
        consistency=ConsistencyModel.WEAK,
        reference="EXOCHI [34] (Table I)",
    ),
}


def case_study(name: str, extended: bool = True) -> CaseStudy:
    """Look up a case study by name (case-insensitive).

    The paper's five systems are always available; with ``extended`` the
    Table I-derived extras (Cell-like, COMIC-like, EXOCHI-like) resolve too.
    """
    pools = [CASE_STUDIES]
    if extended:
        pools.append(EXTENDED_CASE_STUDIES)
    for pool in pools:
        for key, value in pool.items():
            if key.lower() == name.lower():
                return value
    known = ", ".join(list(CASE_STUDIES) + (list(EXTENDED_CASE_STUDIES) if extended else []))
    raise ConfigError(f"unknown case study {name!r}; known: {known}")


def case_study_names(extended: bool = False) -> Tuple[str, ...]:
    """The system names in the paper's figure order (optionally with the
    Table I-derived extras appended)."""
    names = tuple(CASE_STUDIES)
    if extended:
        names += tuple(EXTENDED_CASE_STUDIES)
    return names
