"""Communication-overhead model parameters (paper Table IV).

The paper models programming-model effects as special instructions whose
latencies are fixed CPU-cycle costs:

========  =============================  =============  =====================
Name      Description                    System         Latency (CPU cycles)
========  =============================  =============  =====================
api-pci   mem copy using PCI-E           CPU+GPU, GMAC  33250 + bytes/rate
api-acq   acquire action                 LRB            1000
api-tr    data transfer                  LRB            7000
lib-pf    page fault                     LRB            42000
========  =============================  =============  =====================

``trans_rate`` is 16 GB/s (PCI-E 2.0). The size-dependent term of ``api-pci``
is converted from seconds to CPU cycles at the CPU clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigError
from repro.units import GHZ, Bandwidth, Frequency

__all__ = ["CommParams", "DEFAULT_COMM_PARAMS"]


@dataclass(frozen=True)
class CommParams:
    """Latency parameters for the communication special instructions.

    All fixed latencies are in CPU cycles, matching Table IV, which quotes
    latencies for instructions executed on the CPU side of the runtime.
    """

    api_pci_base_cycles: int = 33250
    pci_bandwidth: Bandwidth = Bandwidth.from_gb_per_s(16.0)
    api_acq_cycles: int = 1000
    api_tr_cycles: int = 7000
    lib_pf_cycles: int = 42000
    cpu_frequency: Frequency = Frequency(3.5 * GHZ)

    def __post_init__(self) -> None:
        for name in ("api_pci_base_cycles", "api_acq_cycles", "api_tr_cycles", "lib_pf_cycles"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")

    def api_pci_cycles(self, num_bytes: int) -> int:
        """Cycles for a PCI-E memcpy of ``num_bytes``: base + size/rate."""
        if num_bytes < 0:
            raise ConfigError(f"byte count must be non-negative, got {num_bytes}")
        transfer_s = self.pci_bandwidth.seconds_for(num_bytes)
        return self.api_pci_base_cycles + self.cpu_frequency.seconds_to_cycles(transfer_s)

    def api_pci_seconds(self, num_bytes: int) -> float:
        """Wall-clock time of a PCI-E memcpy of ``num_bytes``."""
        return self.cpu_frequency.cycles_to_seconds(self.api_pci_cycles(num_bytes))

    def api_acq_seconds(self) -> float:
        """Wall-clock time of one ownership acquire/release action."""
        return self.cpu_frequency.cycles_to_seconds(self.api_acq_cycles)

    def api_tr_seconds(self) -> float:
        """Wall-clock time of one partially-shared-space data-transfer call."""
        return self.cpu_frequency.cycles_to_seconds(self.api_tr_cycles)

    def lib_pf_seconds(self) -> float:
        """Wall-clock time of servicing one page fault in the shared space."""
        return self.cpu_frequency.cycles_to_seconds(self.lib_pf_cycles)

    def table_rows(self) -> Tuple[Tuple[str, str, str, str], ...]:
        """Render the Table IV content as (name, description, system, latency)."""
        return (
            (
                "api-pci",
                "mem copy using PCI-E",
                "CPU+GPU, GMAC",
                f"{self.api_pci_base_cycles}+trans_rate",
            ),
            ("api-acq", "acquire action", "LRB", str(self.api_acq_cycles)),
            ("api-tr", "data transfer", "LRB", str(self.api_tr_cycles)),
            ("lib-pf", "page fault", "LRB", str(self.lib_pf_cycles)),
        )


DEFAULT_COMM_PARAMS = CommParams()
