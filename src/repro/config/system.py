"""Baseline system configuration (paper Table II).

The paper models one out-of-order CPU core similar to Intel Sandy Bridge and
one in-order SIMD GPU core similar to NVIDIA Fermi, a private L1/L2 per CPU,
a tiled shared L3, a ring-bus interconnect, and DDR3-1333 DRAM behind four
FR-FCFS controllers. Cache latencies follow CACTI 6.5 (see
:mod:`repro.mem.cacti`).

All dataclasses here are frozen: a configuration is a value that can be
hashed, compared, and safely shared between design points.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.errors import ConfigError
from repro.units import GB, GHZ, KB, MB, Bandwidth, Frequency

__all__ = [
    "CacheConfig",
    "BranchPredictorConfig",
    "CpuConfig",
    "GpuConfig",
    "InterconnectConfig",
    "DramConfig",
    "SystemConfig",
    "baseline_system",
]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level.

    ``latency`` is the hit latency in the owning clock domain's cycles.
    ``tiles`` models a physically tiled cache (the L3 has 4 tiles); capacity
    is the *total* across tiles.
    """

    name: str
    size_bytes: int
    ways: int
    line_bytes: int = 64
    latency: int = 1
    tiles: int = 1
    mshr_entries: int = 16
    write_back: bool = True
    write_allocate: bool = True

    def __post_init__(self) -> None:
        _require(self.size_bytes > 0, f"{self.name}: size must be positive")
        _require(self.ways > 0, f"{self.name}: ways must be positive")
        _require(_is_pow2(self.line_bytes), f"{self.name}: line size must be a power of two")
        _require(self.latency >= 1, f"{self.name}: latency must be >= 1 cycle")
        _require(self.tiles >= 1, f"{self.name}: tiles must be >= 1")
        _require(self.mshr_entries >= 1, f"{self.name}: need at least one MSHR")
        _require(
            self.size_bytes % (self.ways * self.line_bytes * self.tiles) == 0,
            f"{self.name}: size {self.size_bytes} not divisible into "
            f"{self.tiles} tiles x {self.ways} ways x {self.line_bytes}B lines",
        )

    @property
    def num_sets(self) -> int:
        """Sets per tile."""
        return self.size_bytes // (self.ways * self.line_bytes * self.tiles)

    @property
    def num_lines(self) -> int:
        """Total cache lines across all tiles."""
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True)
class BranchPredictorConfig:
    """A gshare predictor (the paper's CPU uses gshare; the GPU stalls)."""

    kind: str = "gshare"
    history_bits: int = 12
    table_entries: int = 4096

    def __post_init__(self) -> None:
        _require(self.kind in ("gshare", "none"), f"unknown predictor kind {self.kind!r}")
        _require(_is_pow2(self.table_entries), "predictor table must be a power of two")
        _require(
            0 < self.history_bits <= 32,
            f"history bits out of range: {self.history_bits}",
        )


@dataclass(frozen=True)
class CpuConfig:
    """The Sandy-Bridge-like out-of-order CPU core (Table II, CPU column)."""

    num_cores: int = 1
    frequency: Frequency = Frequency(3.5 * GHZ)
    issue_width: int = 4
    rob_entries: int = 168
    branch_predictor: BranchPredictorConfig = BranchPredictorConfig()
    branch_mispredict_penalty: int = 14
    l1d: CacheConfig = CacheConfig("cpu.l1d", 32 * KB, ways=8, latency=2)
    l1i: CacheConfig = CacheConfig("cpu.l1i", 32 * KB, ways=8, latency=2)
    l2: CacheConfig = CacheConfig("cpu.l2", 256 * KB, ways=8, latency=8)

    def __post_init__(self) -> None:
        _require(self.num_cores >= 1, "need at least one CPU core")
        _require(self.issue_width >= 1, "issue width must be >= 1")
        _require(self.rob_entries >= self.issue_width, "ROB smaller than issue width")
        _require(self.branch_mispredict_penalty >= 0, "penalty must be non-negative")


@dataclass(frozen=True)
class GpuConfig:
    """The Fermi-like in-order SIMD GPU core (Table II, GPU column).

    The GPU has no L2 of its own in the baseline; it reaches the shared L3
    over the ring. ``smem_bytes`` is the 16 KB software-managed cache.
    """

    num_cores: int = 1
    frequency: Frequency = Frequency(1.5 * GHZ)
    simd_width: int = 8
    warps_per_core: int = 16
    stall_on_branch: bool = True
    branch_stall_cycles: int = 4
    l1d: CacheConfig = CacheConfig("gpu.l1d", 32 * KB, ways=8, latency=2)
    l1i: CacheConfig = CacheConfig("gpu.l1i", 4 * KB, ways=4, latency=1)
    smem_bytes: int = 16 * KB
    smem_latency: int = 2

    def __post_init__(self) -> None:
        _require(self.num_cores >= 1, "need at least one GPU core")
        _require(_is_pow2(self.simd_width), "SIMD width must be a power of two")
        _require(self.warps_per_core >= 1, "need at least one warp")
        _require(self.smem_bytes >= 0, "smem size must be non-negative")
        _require(self.branch_stall_cycles >= 0, "branch stall must be non-negative")


@dataclass(frozen=True)
class InterconnectConfig:
    """The ring-bus network joining cores, L3 tiles, and DRAM controllers."""

    kind: str = "ring"
    hop_latency: int = 2
    link_bytes_per_cycle: int = 32
    frequency: Frequency = Frequency(3.5 * GHZ)

    def __post_init__(self) -> None:
        _require(self.kind in ("ring", "crossbar"), f"unknown interconnect {self.kind!r}")
        _require(self.hop_latency >= 0, "hop latency must be non-negative")
        _require(self.link_bytes_per_cycle >= 1, "link width must be >= 1 byte")


@dataclass(frozen=True)
class DramConfig:
    """DDR3-1333, 4 controllers, 41.6 GB/s aggregate, FR-FCFS scheduling."""

    kind: str = "ddr3-1333"
    num_controllers: int = 4
    banks_per_controller: int = 8
    row_bytes: int = 8 * KB
    bandwidth: Bandwidth = Bandwidth.from_gb_per_s(41.6)
    scheduler: str = "fr-fcfs"
    # DDR3-1333 core timings in DRAM-clock cycles (667 MHz command clock).
    t_cl: int = 9
    t_rcd: int = 9
    t_rp: int = 9
    t_ras: int = 24
    frequency: Frequency = Frequency(667_000_000.0)
    queue_depth: int = 32

    def __post_init__(self) -> None:
        _require(self.num_controllers >= 1, "need at least one DRAM controller")
        _require(_is_pow2(self.banks_per_controller), "banks must be a power of two")
        _require(_is_pow2(self.row_bytes), "row size must be a power of two")
        _require(self.scheduler in ("fr-fcfs", "fcfs"), f"unknown scheduler {self.scheduler!r}")
        for name in ("t_cl", "t_rcd", "t_rp", "t_ras"):
            _require(getattr(self, name) >= 1, f"{name} must be >= 1")
        _require(self.queue_depth >= 1, "queue depth must be >= 1")


@dataclass(frozen=True)
class SystemConfig:
    """The full baseline machine of Table II.

    The shared L3 (32-way, 8 MB, 4 tiles, 20-cycle) sits between both PUs'
    private hierarchies and DRAM. ``name`` labels the configuration in
    reports.
    """

    name: str = "baseline"
    cpu: CpuConfig = CpuConfig()
    gpu: GpuConfig = GpuConfig()
    l3: CacheConfig = CacheConfig("l3", 8 * MB, ways=32, latency=20, tiles=4)
    interconnect: InterconnectConfig = InterconnectConfig()
    dram: DramConfig = DramConfig()
    page_bytes_cpu: int = 4 * KB
    page_bytes_gpu: int = 64 * KB
    physical_memory_bytes: int = 4 * GB

    def __post_init__(self) -> None:
        _require(_is_pow2(self.page_bytes_cpu), "CPU page size must be a power of two")
        _require(_is_pow2(self.page_bytes_gpu), "GPU page size must be a power of two")
        _require(
            self.physical_memory_bytes >= self.l3.size_bytes,
            "physical memory smaller than the L3",
        )

    def with_name(self, name: str) -> "SystemConfig":
        """Return a copy of this configuration under a different label."""
        return replace(self, name=name)

    def clock_of(self, pu: str) -> Frequency:
        """Frequency of the named processing unit (``"cpu"`` or ``"gpu"``)."""
        if pu == "cpu":
            return self.cpu.frequency
        if pu == "gpu":
            return self.gpu.frequency
        raise ConfigError(f"unknown processing unit {pu!r}")

    def table_rows(self) -> Tuple[Tuple[str, str, str], ...]:
        """Render the Table II content as (parameter, CPU, GPU) rows."""
        cpu, gpu = self.cpu, self.gpu
        return (
            ("# cores", str(cpu.num_cores), str(gpu.num_cores)),
            (
                "Execution engine",
                f"{cpu.frequency}, out-of-order",
                f"{gpu.frequency}, in-order, {gpu.simd_width}-wide SIMD",
            ),
            (
                "Branch predictor",
                cpu.branch_predictor.kind,
                "N/A (stall on branch)" if gpu.stall_on_branch else "none",
            ),
            (
                "L1",
                f"{cpu.l1d.ways}-way {cpu.l1d.size_bytes // KB}KB L1 Dcache "
                f"({cpu.l1d.latency}-cycle), "
                f"{cpu.l1i.ways}-way {cpu.l1i.size_bytes // KB}KB L1 Icache "
                f"({cpu.l1i.latency}-cycle)",
                f"{gpu.l1d.ways}-way {gpu.l1d.size_bytes // KB}KB L1 Dcache "
                f"({gpu.l1d.latency}-cycle), "
                f"{gpu.l1i.ways}-way {gpu.l1i.size_bytes // KB}KB L1 Icache "
                f"({gpu.l1i.latency}-cycle), "
                f"{gpu.smem_bytes // KB}KB s/w managed cache",
            ),
            (
                "L2",
                f"{cpu.l2.ways}-way {cpu.l2.size_bytes // KB}KB L2 Cache "
                f"({cpu.l2.latency}-cycle)",
                "N/A",
            ),
            (
                "L3",
                f"{self.l3.ways}-way {self.l3.size_bytes // MB}MB L3 Cache "
                f"({self.l3.tiles} tiles, {self.l3.latency}-cycle)",
                "(shared)",
            ),
            ("Interconnection", f"{self.interconnect.kind}-bus network", "(shared)"),
            (
                "DRAM",
                f"{self.dram.kind.upper()}, {self.dram.num_controllers} controllers, "
                f"{self.dram.bandwidth} bandwidth, {self.dram.scheduler.upper()}",
                "(shared)",
            ),
        )


def baseline_system() -> SystemConfig:
    """The Table II machine with all defaults."""
    return SystemConfig()
