"""The hot-path perf harness: legacy vs compiled wall-clock per kernel.

Measures :meth:`repro.sim.detailed.DetailedSimulator.run` on the six
Table III kernels at a reduced scale, once through the legacy generator
path (``compiled=False``) and once through the compiled hot path, at two
fidelities — ``serial`` (cores run back-to-back, the batched
``run_compiled`` loops) and ``interleaved`` (timestamp-ordered parallel
phases, the per-instruction steppers) — plus the analytic
:class:`~repro.sim.fast.FastSimulator` as a reference row. The result
feeds ``BENCH_hotpath.json``: the repo's perf trajectory, and what the CI
perf-smoke job regresses against.

A second mode, :func:`run_sweep_bench`, measures the design-point axis
(:mod:`repro.perf.sweep`) on a rank-style workload: a stride sample of
the full feasible design space evaluated per kernel, once point-by-point
through ``DetailedSimulator(compiled=True)`` and once as one
:class:`~repro.perf.sweep.BatchedDesignPoints` pass. The two result lists
are asserted equal before either timing is reported, so the recorded
speedup is only ever for bit-identical output.

A third mode, :func:`run_coherence_bench`, measures what the coherence
axis costs the simulator itself: every kernel trace staged into the
shared window and run through the compiled path with protocol modeling
off (``coherence="none"``) and once per hardware protocol. The recorded
*slowdown* ratio bounds what a sweep pays for turning the axis on.

A fourth mode, :func:`run_store_bench`, measures the durable result
store's warm-start payoff: the same rank-style sweep run cold (fresh
store, every point simulated and written through) and warm (fresh
explorer and caches against the store the cold run populated, so every
result is a disk hit). Both evaluation lists are asserted equal before
either timing is reported.

A fifth mode, :func:`run_scale_bench`, measures the machine-saturation
path: the full 1933-point rank once flat (per-point jobs fanned through
the pool) and once sharded through :mod:`repro.exec.sweepjob` with a
prestarted pool, plus a detailed sweep run cold (empty shared compile
region, workers compile) and warm (region populated, workers pre-warmed
by :func:`repro.perf.warm.attach_region` — steady-state worker compile
misses must be ~0). Its document section is named ``scaling`` because
the hotpath section already uses ``scale`` for the trace-scale factor.

Comparisons against a stored baseline use the *speedup ratio* (or, for
the coherence section, the slowdown ratio), not raw wall-clock —
absolute seconds differ across machines, but both sides of each ratio
run on the same machine in the same process, so the ratio travels well.
"""

from __future__ import annotations

import json
import math
import time
from typing import Dict, List, Optional, Sequence

from repro.config.presets import case_study
from repro.errors import ConfigError, SimulationError
from repro.kernels.registry import all_kernels, kernel
from repro.perf.compiled import SegmentCompileCache
from repro.sim.detailed import DetailedSimulator
from repro.sim.fast import FastSimulator

__all__ = [
    "SCHEMA",
    "run_hotpath_bench",
    "run_sweep_bench",
    "run_coherence_bench",
    "run_store_bench",
    "run_scale_bench",
    "format_bench",
    "compare_to_baseline",
    "write_bench_json",
    "load_bench_json",
]

SCHEMA = "bench_hotpath/v1"

#: (fidelity name, interleave_parallel flag) measured by the harness.
FIDELITIES = (("serial", False), ("interleaved", True))

#: Defaults for the sweep mode. Two kernels bound the workload shapes
#: (reduction: comm-heavy with short phases; k-mean: the largest compute
#: trace); a smaller trace scale than the hotpath cells because the
#: single-point oracle replays the trace once per sampled design point.
SWEEP_KERNELS = ("reduction", "k-mean")
SWEEP_SCALE = 0.01
SWEEP_STRIDE = 3

#: Hardware protocols measured by the coherence mode, in report order.
COHERENCE_PROTOCOLS = ("snoop", "directory")

#: Defaults for the store mode: same bounding kernels as the sweep mode,
#: a coarser stride (the cold side simulates every sampled point).
STORE_STRIDE = 8

#: Defaults for the scale mode: the worker count the acceptance criterion
#: pins (sharded + warm pool >= 2x flat at 4 jobs) and a small trace
#: scale for the cold-vs-warm detailed pool comparison.
SCALE_JOBS = 4
SCALE_POOL_SCALE = 0.01


def _geomean(values: Sequence[float]) -> float:
    positive = [v for v in values if v > 0]
    if not positive:
        return 0.0
    return math.exp(sum(map(math.log, positive)) / len(positive))


def _time_detailed(
    trace,
    case,
    compiled: bool,
    interleave: bool,
    repeats: int,
    compile_cache: SegmentCompileCache,
) -> float:
    best = math.inf
    for _ in range(repeats):
        sim = DetailedSimulator(
            compiled=compiled,
            interleave_parallel=interleave,
            compile_cache=compile_cache,
        )
        start = time.perf_counter()
        sim.run(trace, case=case)
        best = min(best, time.perf_counter() - start)
    return best


def run_hotpath_bench(
    scale: float = 0.05,
    repeats: int = 1,
    case_name: str = "CPU+GPU",
    kernels: Optional[Sequence[str]] = None,
) -> Dict:
    """Benchmark the six kernels; returns the ``BENCH_hotpath`` document.

    ``scale`` shrinks the compute phases (0.05 keeps the full run under a
    minute while the largest kernels still execute >400k instructions);
    ``repeats`` takes the best of N timings per cell. Segment compilation
    is pre-warmed through a private cache so the compiled timings measure
    execution, not compilation — matching exploration, where every design
    point past the first reuses the cached compilation.
    """
    if scale <= 0:
        raise ConfigError(f"bench scale must be positive, got {scale}")
    if repeats < 1:
        raise ConfigError(f"bench repeats must be >= 1, got {repeats}")
    case = case_study(case_name)
    if kernels:
        selected = [kernel(name) for name in kernels]
    else:
        selected = list(all_kernels())

    compile_cache = SegmentCompileCache()
    fidelities: Dict[str, Dict] = {
        name: {"kernels": {}} for name, _ in FIDELITIES
    }
    fast_rows: Dict[str, float] = {}
    fast_sim = FastSimulator()
    for k in selected:
        trace = k.build().scaled(scale)
        # Warm the compile cache (and any lazy kernel state) off the clock.
        DetailedSimulator(
            compiled=True, interleave_parallel=False, compile_cache=compile_cache
        ).run(trace, case=case)
        for name, interleave in FIDELITIES:
            legacy = _time_detailed(trace, case, False, interleave, repeats, compile_cache)
            compiled = _time_detailed(trace, case, True, interleave, repeats, compile_cache)
            fidelities[name]["kernels"][k.name] = {
                "legacy_seconds": legacy,
                "compiled_seconds": compiled,
                "speedup": legacy / compiled if compiled > 0 else 0.0,
            }
        start = time.perf_counter()
        fast_sim.run(trace, case=case)
        fast_rows[k.name] = time.perf_counter() - start

    for name, _ in FIDELITIES:
        rows = fidelities[name]["kernels"]
        fidelities[name]["geomean_speedup"] = _geomean(
            [row["speedup"] for row in rows.values()]
        )
    return {
        "schema": SCHEMA,
        "scale": scale,
        "repeats": repeats,
        "case": case.name,
        "fidelities": fidelities,
        "fast_reference_seconds": fast_rows,
    }


def _time_coherent(trace, case, coherence: str, repeats: int, compile_cache):
    """Best-of-N wall clock (and that run's result) for one protocol cell."""
    best = math.inf
    result = None
    for _ in range(repeats):
        sim = DetailedSimulator(compiled=True, compile_cache=compile_cache)
        start = time.perf_counter()
        out = sim.run(trace, case=case, coherence=coherence)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best, result = elapsed, out
    return best, result


def run_coherence_bench(
    scale: float = 0.05,
    repeats: int = 1,
    case_name: str = "CPU+GPU",
    kernels: Optional[Sequence[str]] = None,
) -> Dict:
    """Benchmark protocol-on vs protocol-off simulation; returns a document.

    Every kernel trace is staged into the shared window with the unified
    layout (so the protocol sees the whole working set — the worst case
    for bookkeeping cost) and run through the compiled
    ``DetailedSimulator`` once with coherence modeling off
    (``coherence="none"``) and once per hardware protocol. The recorded
    *slowdown* ratio (protocol-on wall clock over protocol-off) is what
    travels to the baseline: it bounds what enabling the coherence axis
    costs a sweep, independent of the machine's absolute speed.
    """
    if scale <= 0:
        raise ConfigError(f"bench scale must be positive, got {scale}")
    if repeats < 1:
        raise ConfigError(f"bench repeats must be >= 1, got {repeats}")
    from repro.sim.mmu import stage_shared_trace
    from repro.taxonomy import AddressSpaceKind

    case = case_study(case_name)
    if kernels:
        selected = [kernel(name) for name in kernels]
    else:
        selected = list(all_kernels())
    compile_cache = SegmentCompileCache()
    rows: Dict[str, Dict] = {}
    for k in selected:
        trace = stage_shared_trace(
            k.build().scaled(scale), AddressSpaceKind.UNIFIED
        )
        # Warm the compile cache off the clock; coherence runs reuse the
        # same compiled segments, so one warm pass covers every cell.
        DetailedSimulator(compiled=True, compile_cache=compile_cache).run(
            trace, case=case, coherence="none"
        )
        off_seconds, _ = _time_coherent(trace, case, "none", repeats, compile_cache)
        protocols: Dict[str, Dict] = {}
        for kind in COHERENCE_PROTOCOLS:
            seconds, result = _time_coherent(trace, case, kind, repeats, compile_cache)
            protocols[kind] = {
                "seconds": seconds,
                "slowdown": seconds / off_seconds if off_seconds > 0 else 0.0,
                "invalidations": result.counters.get(
                    f"{kind}.invalidations_sent", 0.0
                ),
            }
        rows[k.name] = {"off_seconds": off_seconds, "protocols": protocols}

    return {
        "schema": SCHEMA,
        "coherence": {
            "scale": scale,
            "repeats": repeats,
            "case": case.name,
            "kernels": rows,
            "geomean_slowdown": {
                kind: _geomean(
                    [row["protocols"][kind]["slowdown"] for row in rows.values()]
                )
                for kind in COHERENCE_PROTOCOLS
            },
        },
    }


def _rank_style_points(stride: int) -> List:
    """A stride sample of the feasible design space as sweep points.

    Mirrors ``Explorer._point_jobs``: one point per feasible
    (space, comm, locality, coherence, consistency) combination, labeled
    with the design point's display label so duplicate-timing points
    exercise the relabel-on-scatter path exactly like a real ranking run.
    """
    from repro.core.space import DesignSpace
    from repro.perf.sweep import SweepPoint
    from repro.taxonomy import CommMechanism

    return [
        SweepPoint(
            mechanism=point.comm,
            async_overlap=point.comm is CommMechanism.DMA_ASYNC,
            address_space=point.address_space,
            system_name=point.label,
        )
        for point in DesignSpace().feasible_points()[::stride]
    ]


def run_sweep_bench(
    scale: float = SWEEP_SCALE,
    repeats: int = 1,
    kernels: Optional[Sequence[str]] = None,
    stride: int = SWEEP_STRIDE,
) -> Dict:
    """Benchmark the batched design-point axis; returns a bench document.

    The workload is rank-style: every ``stride``-th feasible design point
    of the full space (stride 3 samples ~645 of the 1933 points), each
    kernel's trace evaluated against all of them — once per point through
    ``DetailedSimulator(compiled=True)`` (the single-point compiled path)
    and once as a single :class:`~repro.perf.sweep.SweepSimulator` pass.
    Both runs share a pre-warmed compile cache so neither pays
    compilation, and their result lists are asserted equal before any
    timing is reported. The returned document carries a ``sweep`` section
    (no ``fidelities``); the CLI merges it with the hotpath section under
    ``--mode all``.
    """
    if scale <= 0:
        raise ConfigError(f"bench scale must be positive, got {scale}")
    if repeats < 1:
        raise ConfigError(f"bench repeats must be >= 1, got {repeats}")
    if stride < 1:
        raise ConfigError(f"bench stride must be >= 1, got {stride}")
    from repro.comm.base import make_channel
    from repro.config.comm import CommParams
    from repro.config.system import SystemConfig
    from repro.perf.sweep import BatchedDesignPoints, SweepSimulator

    selected = [kernel(name) for name in (kernels or SWEEP_KERNELS)]
    system = SystemConfig()
    params = CommParams()
    points = _rank_style_points(stride)
    batch = BatchedDesignPoints(points, system, params)
    compile_cache = SegmentCompileCache()
    rows: Dict[str, Dict] = {}
    for k in selected:
        trace = k.build().scaled(scale)
        # Warm the compile cache off the clock; the warm pass's results
        # also serve as the batched output for the identity check.
        batched_results = SweepSimulator(
            system=system, comm_params=params, compile_cache=compile_cache
        ).run(trace, batch)

        single_results = None
        single_seconds = math.inf
        for _ in range(repeats):
            start = time.perf_counter()
            results = []
            for point in points:
                sim = DetailedSimulator(
                    system=system,
                    comm_params=params,
                    compiled=True,
                    compile_cache=compile_cache,
                )
                channel = make_channel(
                    point.mechanism,
                    params=params,
                    system=system,
                    async_overlap=point.async_overlap,
                )
                results.append(
                    sim.run(
                        trace,
                        channel=channel,
                        system_name=point.system_name,
                        address_space=point.address_space,
                    )
                )
            single_seconds = min(single_seconds, time.perf_counter() - start)
            single_results = results

        batched_seconds = math.inf
        for _ in range(repeats):
            simulator = SweepSimulator(
                system=system, comm_params=params, compile_cache=compile_cache
            )
            start = time.perf_counter()
            batched_results = simulator.run(trace, batch)
            batched_seconds = min(batched_seconds, time.perf_counter() - start)

        if single_results != batched_results:
            raise SimulationError(
                f"sweep bench identity violation: batched results for "
                f"{k.name} differ from the single-point compiled path"
            )
        rows[k.name] = {
            "single_seconds": single_seconds,
            "batched_seconds": batched_seconds,
            "speedup": (
                single_seconds / batched_seconds if batched_seconds > 0 else 0.0
            ),
        }

    return {
        "schema": SCHEMA,
        "sweep": {
            "scale": scale,
            "repeats": repeats,
            "stride": stride,
            "points": len(points),
            "distinct": len(batch.distinct),
            "kernels": rows,
            "geomean_speedup": _geomean([row["speedup"] for row in rows.values()]),
        },
    }


def run_store_bench(
    repeats: int = 1,
    kernels: Optional[Sequence[str]] = None,
    stride: int = STORE_STRIDE,
) -> Dict:
    """Benchmark warm-store vs cold sweep wall-clock; returns a document.

    The workload is a rank over every ``stride``-th feasible design point.
    The *cold* side is a fresh explorer writing through to an empty
    :class:`~repro.store.store.ResultStore` — full simulation plus
    durability cost. The *warm* side is a fresh explorer (empty in-memory
    caches, as a new process would have) reopening the store the cold run
    populated, so every result is a verified disk hit. Both evaluation
    lists are asserted equal before either timing is reported, and the
    warm run must be all hits — the recorded *speedup* (cold wall-clock
    over warm) is only ever for bit-identical output.
    """
    if repeats < 1:
        raise ConfigError(f"bench repeats must be >= 1, got {repeats}")
    if stride < 1:
        raise ConfigError(f"bench stride must be >= 1, got {stride}")
    import os
    import shutil
    import tempfile

    from repro.core.explorer import Explorer
    from repro.core.space import DesignSpace
    from repro.exec.cache import TraceCache
    from repro.store.store import ResultStore

    selected = [kernel(name) for name in (kernels or SWEEP_KERNELS)]
    points = DesignSpace().feasible_points()[::stride]

    def _flat(evaluations):
        return [
            (e.point.label, e.mean_seconds, e.mean_comm_fraction)
            for e in evaluations
        ]

    root = tempfile.mkdtemp(prefix="repro-store-bench-")
    try:
        cold_seconds = math.inf
        cold_flat = None
        entries = 0
        for attempt in range(repeats):
            cold_root = os.path.join(root, f"cold-{attempt}")
            store = ResultStore(cold_root)
            explorer = Explorer(trace_cache=TraceCache(), store=store)
            start = time.perf_counter()
            evaluations = explorer.rank_design_points(points, selected)
            elapsed = time.perf_counter() - start
            count = len(store)
            store.close()
            if elapsed < cold_seconds:
                cold_seconds = elapsed
                cold_flat = _flat(evaluations)
                entries = count
                warm_root = cold_root

        warm_seconds = math.inf
        warm_hits = 0
        for _ in range(repeats):
            store = ResultStore(warm_root)
            explorer = Explorer(trace_cache=TraceCache(), store=store)
            start = time.perf_counter()
            evaluations = explorer.rank_design_points(points, selected)
            elapsed = time.perf_counter() - start
            if _flat(evaluations) != cold_flat:
                store.close()
                raise SimulationError(
                    "store bench identity violation: warm-store ranking "
                    "differs from the cold run that populated the store"
                )
            if store.misses:
                store.close()
                raise SimulationError(
                    f"store bench warm run was not warm: "
                    f"{store.misses} store miss(es)"
                )
            if elapsed < warm_seconds:
                warm_seconds = elapsed
                warm_hits = store.hits
            store.close()
    finally:
        shutil.rmtree(root, ignore_errors=True)

    return {
        "schema": SCHEMA,
        "store": {
            "repeats": repeats,
            "stride": stride,
            "points": len(points),
            "kernels": [k.name for k in selected],
            "entries": entries,
            "warm_hits": warm_hits,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "speedup": cold_seconds / warm_seconds if warm_seconds > 0 else 0.0,
        },
    }


def run_scale_bench(
    jobs: int = SCALE_JOBS,
    rank_stride: int = 1,
    pool_scale: float = SCALE_POOL_SCALE,
    kernels: Optional[Sequence[str]] = None,
) -> Dict:
    """Benchmark the machine-saturation path; returns a ``scaling`` document.

    Two measurements, both identity-checked before any timing is reported:

    - *rank*: every ``rank_stride``-th feasible design point (stride 1 =
      the full 1933-point space) ranked once flat — per-point jobs fanned
      through a ``jobs``-wide pool, the pre-sharding path — and once
      through ``rank_design_points(shards=2*jobs)`` with the pool
      prestarted. The flattened evaluation lists must match exactly; the
      recorded speedup is the acceptance criterion's "sharded + warm pool
      vs flat at ``--jobs 4``" ratio.
    - *pool*: a detailed batched sweep (``sweep=True``) over the bounding
      kernels, run cold — fresh shared compile region, every worker
      compiles its segments — then warm — a new explorer and pool against
      the region the cold run populated, workers pre-warmed by the
      :func:`~repro.perf.warm.attach_region` initializer. The warm run's
      ``exec.compile.misses`` is recorded; with shared memory available it
      is ~0, and the CI baseline comparison gates on that.

    When shared memory is unavailable the region disables itself and the
    pool comparison degrades to private caches (misses stay nonzero); the
    document records ``shm_available`` so comparisons can tell the two
    apart rather than failing the fallback path.
    """
    if jobs < 1:
        raise ConfigError(f"bench jobs must be >= 1, got {jobs}")
    if rank_stride < 1:
        raise ConfigError(f"bench rank stride must be >= 1, got {rank_stride}")
    if pool_scale <= 0:
        raise ConfigError(f"bench pool scale must be positive, got {pool_scale}")
    import os
    import shutil
    import tempfile

    from repro.core.explorer import Explorer
    from repro.core.space import DesignSpace
    from repro.exec.cache import TraceCache
    from repro.perf.compiled import SHARED_COMPILE_CACHE
    from repro.perf.warm import shm_available

    selected = [kernel(name) for name in (kernels or SWEEP_KERNELS)]
    points = DesignSpace().feasible_points()[::rank_stride]
    shards = max(2 * jobs, 1)

    def _flat_evals(evaluations):
        return [
            (
                e.point.label,
                e.mean_seconds,
                e.mean_comm_fraction,
                e.comm_lines_total,
                e.locality_options,
            )
            for e in evaluations
        ]

    # -- rank: flat vs sharded ------------------------------------------
    explorer = Explorer(jobs=jobs, trace_cache=TraceCache())
    try:
        start = time.perf_counter()
        flat_evaluations = explorer.rank_design_points(points, selected)
        flat_seconds = time.perf_counter() - start
    finally:
        explorer.runner.close()

    explorer = Explorer(jobs=jobs, trace_cache=TraceCache())
    try:
        explorer.runner.prestart()
        start = time.perf_counter()
        sharded_evaluations = explorer.rank_design_points(
            points, selected, shards=shards
        )
        sharded_seconds = time.perf_counter() - start
    finally:
        explorer.runner.close()

    if _flat_evals(sharded_evaluations) != _flat_evals(flat_evaluations):
        raise SimulationError(
            "scale bench identity violation: sharded ranking differs "
            "from the flat pool path"
        )

    # -- pool: cold vs warm shared compile region -----------------------
    root = tempfile.mkdtemp(prefix="repro-scale-bench-")
    warm_root = os.path.join(root, "warm-region")
    region = None
    try:
        explorer = Explorer(
            jobs=jobs,
            sweep=True,
            detailed_scale=pool_scale,
            trace_cache=TraceCache(),
            warm_dir=warm_root,
        )
        try:
            start = time.perf_counter()
            cold_results = explorer.run_case_studies_detailed(selected)
            cold_seconds = time.perf_counter() - start
            cold_misses = explorer.run_stats.compile_misses
        finally:
            explorer.runner.close()

        explorer = Explorer(
            jobs=jobs,
            sweep=True,
            detailed_scale=pool_scale,
            trace_cache=TraceCache(),
            warm_dir=warm_root,
        )
        region = explorer.warm_region
        try:
            explorer.runner.prestart()
            start = time.perf_counter()
            warm_results = explorer.run_case_studies_detailed(selected)
            warm_seconds = time.perf_counter() - start
            warm_misses = explorer.run_stats.compile_misses
        finally:
            explorer.runner.close()

        if warm_results != cold_results:
            raise SimulationError(
                "scale bench identity violation: warm-pool detailed sweep "
                "differs from the cold run that populated the region"
            )
    finally:
        if region is not None:
            region.destroy()
        SHARED_COMPILE_CACHE.shared = None
        shutil.rmtree(root, ignore_errors=True)

    return {
        "schema": SCHEMA,
        "scaling": {
            "jobs": jobs,
            "shm_available": shm_available(),
            "rank": {
                "points": len(points),
                "stride": rank_stride,
                "shards": shards,
                "kernels": [k.name for k in selected],
                "flat_seconds": flat_seconds,
                "sharded_seconds": sharded_seconds,
                "speedup": (
                    flat_seconds / sharded_seconds if sharded_seconds > 0 else 0.0
                ),
            },
            "pool": {
                "scale": pool_scale,
                "kernels": [k.name for k in selected],
                "cold_seconds": cold_seconds,
                "warm_seconds": warm_seconds,
                "cold_compile_misses": cold_misses,
                "warm_compile_misses": warm_misses,
                "speedup": cold_seconds / warm_seconds if warm_seconds > 0 else 0.0,
            },
        },
    }


def format_bench(doc: Dict) -> str:
    """Human-readable report of a bench document."""
    from repro.core.report import format_table

    lines: List[str] = []
    for name, data in doc.get("fidelities", {}).items():
        rows = [
            (
                kernel_name,
                f"{cell['legacy_seconds']:.3f}",
                f"{cell['compiled_seconds']:.3f}",
                f"{cell['speedup']:.2f}x",
            )
            for kernel_name, cell in data["kernels"].items()
        ]
        lines.append(
            format_table(
                ("kernel", "legacy s", "compiled s", "speedup"),
                rows,
                title=(
                    f"DetailedSimulator hot path — {name} "
                    f"(scale {doc['scale']:g}, geomean "
                    f"{data['geomean_speedup']:.2f}x)"
                ),
            )
        )
    coherence = doc.get("coherence")
    if coherence is not None:
        kinds = [k for k in COHERENCE_PROTOCOLS if k in coherence["geomean_slowdown"]]
        rows = []
        for kernel_name, cell in coherence["kernels"].items():
            row = [kernel_name, f"{cell['off_seconds']:.3f}"]
            for kind in kinds:
                proto = cell["protocols"][kind]
                row.append(f"{proto['seconds']:.3f}")
                row.append(f"{proto['slowdown']:.2f}x")
            rows.append(tuple(row))
        headers = ("kernel", "off s") + tuple(
            h for kind in kinds for h in (f"{kind} s", f"{kind} x")
        )
        geomeans = ", ".join(
            f"{kind} {coherence['geomean_slowdown'][kind]:.2f}x" for kind in kinds
        )
        lines.append(
            format_table(
                headers,
                rows,
                title=(
                    f"Coherence protocol overhead — compiled path, shared "
                    f"staging (scale {coherence['scale']:g}, geomean "
                    f"slowdown {geomeans})"
                ),
            )
        )
    sweep = doc.get("sweep")
    if sweep is not None:
        rows = [
            (
                kernel_name,
                f"{cell['single_seconds']:.3f}",
                f"{cell['batched_seconds']:.3f}",
                f"{cell['speedup']:.2f}x",
            )
            for kernel_name, cell in sweep["kernels"].items()
        ]
        lines.append(
            format_table(
                ("kernel", "per-point s", "batched s", "speedup"),
                rows,
                title=(
                    f"Batched design-point sweep — rank-style, "
                    f"{sweep['points']} points ({sweep['distinct']} "
                    f"timing-distinct), scale {sweep['scale']:g}, geomean "
                    f"{sweep['geomean_speedup']:.2f}x"
                ),
            )
        )
    store = doc.get("store")
    if store is not None:
        lines.append(
            format_table(
                ("points", "entries", "cold s", "warm s", "speedup"),
                [
                    (
                        str(store["points"]),
                        str(store["entries"]),
                        f"{store['cold_seconds']:.3f}",
                        f"{store['warm_seconds']:.3f}",
                        f"{store['speedup']:.2f}x",
                    )
                ],
                title=(
                    f"Durable result store — warm-start vs cold sweep "
                    f"({', '.join(store['kernels'])}; stride "
                    f"{store['stride']}, {store['warm_hits']} warm hits)"
                ),
            )
        )
    scaling = doc.get("scaling")
    if scaling is not None:
        rank_cell = scaling["rank"]
        pool_cell = scaling["pool"]
        rows = [
            (
                f"rank ({rank_cell['points']} pts, {rank_cell['shards']} shards)",
                f"{rank_cell['flat_seconds']:.3f}",
                f"{rank_cell['sharded_seconds']:.3f}",
                f"{rank_cell['speedup']:.2f}x",
            ),
            (
                f"pool ({', '.join(pool_cell['kernels'])})",
                f"{pool_cell['cold_seconds']:.3f}",
                f"{pool_cell['warm_seconds']:.3f}",
                f"{pool_cell['speedup']:.2f}x",
            ),
        ]
        lines.append(
            format_table(
                ("workload", "flat/cold s", "sharded/warm s", "speedup"),
                rows,
                title=(
                    f"Machine-scale sweep — {scaling['jobs']} jobs, warm "
                    f"compile misses {pool_cell['warm_compile_misses']} "
                    f"(cold {pool_cell['cold_compile_misses']}; shm "
                    f"{'on' if scaling['shm_available'] else 'off'})"
                ),
            )
        )
    return "\n\n".join(lines)


def compare_to_baseline(
    current: Dict, baseline: Dict, tolerance: float = 0.5
) -> List[str]:
    """Speedup regressions of ``current`` against a stored ``baseline``.

    A cell regresses when its speedup falls below the baseline's by more
    than ``tolerance`` (a fraction — 0.5 tolerates halving, loose enough
    for shared CI runners). Returns human-readable regression lines;
    empty means the compiled path is still ahead.

    Only sections the current run measured are compared — a ``--mode
    sweep`` run is judged against the baseline's ``sweep`` section alone,
    a ``--mode hotpath`` run against the fidelities alone — so partial
    runs never fail on sections they deliberately skipped.
    """
    problems: List[str] = []
    if current.get("fidelities"):
        for name, base_data in baseline.get("fidelities", {}).items():
            cur_data = current.get("fidelities", {}).get(name)
            if cur_data is None:
                problems.append(f"{name}: fidelity missing from current run")
                continue
            for kernel_name, base_cell in base_data.get("kernels", {}).items():
                cur_cell = cur_data.get("kernels", {}).get(kernel_name)
                if cur_cell is None:
                    problems.append(
                        f"{name}/{kernel_name}: missing from current run"
                    )
                    continue
                floor = base_cell["speedup"] * (1.0 - tolerance)
                if cur_cell["speedup"] < floor:
                    problems.append(
                        f"{name}/{kernel_name}: speedup {cur_cell['speedup']:.2f}x "
                        f"fell below {floor:.2f}x "
                        f"(baseline {base_cell['speedup']:.2f}x - {tolerance:.0%})"
                    )
    if current.get("coherence") and baseline.get("coherence"):
        cur_rows = current["coherence"].get("kernels", {})
        for kernel_name, base_cell in baseline["coherence"].get("kernels", {}).items():
            cur_cell = cur_rows.get(kernel_name)
            if cur_cell is None:
                problems.append(f"coherence/{kernel_name}: missing from current run")
                continue
            for kind, base_proto in base_cell.get("protocols", {}).items():
                cur_proto = cur_cell.get("protocols", {}).get(kind)
                if cur_proto is None:
                    problems.append(
                        f"coherence/{kernel_name}/{kind}: missing from current run"
                    )
                    continue
                ceiling = base_proto["slowdown"] * (1.0 + tolerance)
                if cur_proto["slowdown"] > ceiling:
                    problems.append(
                        f"coherence/{kernel_name}/{kind}: slowdown "
                        f"{cur_proto['slowdown']:.2f}x rose above {ceiling:.2f}x "
                        f"(baseline {base_proto['slowdown']:.2f}x + {tolerance:.0%})"
                    )
    if current.get("sweep") and baseline.get("sweep"):
        cur_rows = current["sweep"].get("kernels", {})
        for kernel_name, base_cell in baseline["sweep"].get("kernels", {}).items():
            cur_cell = cur_rows.get(kernel_name)
            if cur_cell is None:
                problems.append(f"sweep/{kernel_name}: missing from current run")
                continue
            floor = base_cell["speedup"] * (1.0 - tolerance)
            if cur_cell["speedup"] < floor:
                problems.append(
                    f"sweep/{kernel_name}: speedup {cur_cell['speedup']:.2f}x "
                    f"fell below {floor:.2f}x "
                    f"(baseline {base_cell['speedup']:.2f}x - {tolerance:.0%})"
                )
    if current.get("store") and baseline.get("store"):
        base_cell = baseline["store"]
        cur_cell = current["store"]
        floor = base_cell["speedup"] * (1.0 - tolerance)
        if cur_cell["speedup"] < floor:
            problems.append(
                f"store: warm-start speedup {cur_cell['speedup']:.2f}x "
                f"fell below {floor:.2f}x "
                f"(baseline {base_cell['speedup']:.2f}x - {tolerance:.0%})"
            )
    if current.get("scaling"):
        cur_scaling = current["scaling"]
        if baseline.get("scaling"):
            base_rank = baseline["scaling"]["rank"]
            cur_rank = cur_scaling["rank"]
            floor = base_rank["speedup"] * (1.0 - tolerance)
            if cur_rank["speedup"] < floor:
                problems.append(
                    f"scaling/rank: sharded speedup {cur_rank['speedup']:.2f}x "
                    f"fell below {floor:.2f}x "
                    f"(baseline {base_rank['speedup']:.2f}x - {tolerance:.0%})"
                )
        # Not baseline-relative: a warm pool recompiling is a warm-start
        # bug regardless of what any stored run did — unless shared
        # memory is off, where private caches legitimately recompile.
        pool = cur_scaling["pool"]
        if cur_scaling.get("shm_available") and pool["warm_compile_misses"]:
            problems.append(
                f"scaling/pool: warm run recompiled "
                f"{pool['warm_compile_misses']} segment(s) with the shared "
                f"region available (expected ~0 worker compile misses)"
            )
    return problems


def write_bench_json(path: str, doc: Dict) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_bench_json(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if doc.get("schema") != SCHEMA:
        raise ConfigError(
            f"{path}: not a {SCHEMA} document (schema={doc.get('schema')!r})"
        )
    return doc
