"""The hot-path perf harness: legacy vs compiled wall-clock per kernel.

Measures :meth:`repro.sim.detailed.DetailedSimulator.run` on the six
Table III kernels at a reduced scale, once through the legacy generator
path (``compiled=False``) and once through the compiled hot path, at two
fidelities — ``serial`` (cores run back-to-back, the batched
``run_compiled`` loops) and ``interleaved`` (timestamp-ordered parallel
phases, the per-instruction steppers) — plus the analytic
:class:`~repro.sim.fast.FastSimulator` as a reference row. The result
feeds ``BENCH_hotpath.json``: the repo's perf trajectory, and what the CI
perf-smoke job regresses against.

Comparisons against a stored baseline use the *speedup ratio*, not raw
wall-clock — absolute seconds differ across machines, but legacy and
compiled run on the same machine in the same process, so their ratio
travels well.
"""

from __future__ import annotations

import json
import math
import time
from typing import Dict, List, Optional, Sequence

from repro.config.presets import case_study
from repro.errors import ConfigError
from repro.kernels.registry import all_kernels, kernel
from repro.perf.compiled import SegmentCompileCache
from repro.sim.detailed import DetailedSimulator
from repro.sim.fast import FastSimulator

__all__ = [
    "SCHEMA",
    "run_hotpath_bench",
    "format_bench",
    "compare_to_baseline",
    "write_bench_json",
    "load_bench_json",
]

SCHEMA = "bench_hotpath/v1"

#: (fidelity name, interleave_parallel flag) measured by the harness.
FIDELITIES = (("serial", False), ("interleaved", True))


def _geomean(values: Sequence[float]) -> float:
    positive = [v for v in values if v > 0]
    if not positive:
        return 0.0
    return math.exp(sum(map(math.log, positive)) / len(positive))


def _time_detailed(
    trace,
    case,
    compiled: bool,
    interleave: bool,
    repeats: int,
    compile_cache: SegmentCompileCache,
) -> float:
    best = math.inf
    for _ in range(repeats):
        sim = DetailedSimulator(
            compiled=compiled,
            interleave_parallel=interleave,
            compile_cache=compile_cache,
        )
        start = time.perf_counter()
        sim.run(trace, case=case)
        best = min(best, time.perf_counter() - start)
    return best


def run_hotpath_bench(
    scale: float = 0.05,
    repeats: int = 1,
    case_name: str = "CPU+GPU",
    kernels: Optional[Sequence[str]] = None,
) -> Dict:
    """Benchmark the six kernels; returns the ``BENCH_hotpath`` document.

    ``scale`` shrinks the compute phases (0.05 keeps the full run under a
    minute while the largest kernels still execute >400k instructions);
    ``repeats`` takes the best of N timings per cell. Segment compilation
    is pre-warmed through a private cache so the compiled timings measure
    execution, not compilation — matching exploration, where every design
    point past the first reuses the cached compilation.
    """
    if scale <= 0:
        raise ConfigError(f"bench scale must be positive, got {scale}")
    if repeats < 1:
        raise ConfigError(f"bench repeats must be >= 1, got {repeats}")
    case = case_study(case_name)
    if kernels:
        selected = [kernel(name) for name in kernels]
    else:
        selected = list(all_kernels())

    compile_cache = SegmentCompileCache()
    fidelities: Dict[str, Dict] = {
        name: {"kernels": {}} for name, _ in FIDELITIES
    }
    fast_rows: Dict[str, float] = {}
    fast_sim = FastSimulator()
    for k in selected:
        trace = k.build().scaled(scale)
        # Warm the compile cache (and any lazy kernel state) off the clock.
        DetailedSimulator(
            compiled=True, interleave_parallel=False, compile_cache=compile_cache
        ).run(trace, case=case)
        for name, interleave in FIDELITIES:
            legacy = _time_detailed(trace, case, False, interleave, repeats, compile_cache)
            compiled = _time_detailed(trace, case, True, interleave, repeats, compile_cache)
            fidelities[name]["kernels"][k.name] = {
                "legacy_seconds": legacy,
                "compiled_seconds": compiled,
                "speedup": legacy / compiled if compiled > 0 else 0.0,
            }
        start = time.perf_counter()
        fast_sim.run(trace, case=case)
        fast_rows[k.name] = time.perf_counter() - start

    for name, _ in FIDELITIES:
        rows = fidelities[name]["kernels"]
        fidelities[name]["geomean_speedup"] = _geomean(
            [row["speedup"] for row in rows.values()]
        )
    return {
        "schema": SCHEMA,
        "scale": scale,
        "repeats": repeats,
        "case": case.name,
        "fidelities": fidelities,
        "fast_reference_seconds": fast_rows,
    }


def format_bench(doc: Dict) -> str:
    """Human-readable report of a bench document."""
    from repro.core.report import format_table

    lines: List[str] = []
    for name, data in doc["fidelities"].items():
        rows = [
            (
                kernel_name,
                f"{cell['legacy_seconds']:.3f}",
                f"{cell['compiled_seconds']:.3f}",
                f"{cell['speedup']:.2f}x",
            )
            for kernel_name, cell in data["kernels"].items()
        ]
        lines.append(
            format_table(
                ("kernel", "legacy s", "compiled s", "speedup"),
                rows,
                title=(
                    f"DetailedSimulator hot path — {name} "
                    f"(scale {doc['scale']:g}, geomean "
                    f"{data['geomean_speedup']:.2f}x)"
                ),
            )
        )
    return "\n\n".join(lines)


def compare_to_baseline(
    current: Dict, baseline: Dict, tolerance: float = 0.5
) -> List[str]:
    """Speedup regressions of ``current`` against a stored ``baseline``.

    A cell regresses when its speedup falls below the baseline's by more
    than ``tolerance`` (a fraction — 0.5 tolerates halving, loose enough
    for shared CI runners). Returns human-readable regression lines;
    empty means the compiled path is still ahead.
    """
    problems: List[str] = []
    for name, base_data in baseline.get("fidelities", {}).items():
        cur_data = current.get("fidelities", {}).get(name)
        if cur_data is None:
            problems.append(f"{name}: fidelity missing from current run")
            continue
        for kernel_name, base_cell in base_data.get("kernels", {}).items():
            cur_cell = cur_data.get("kernels", {}).get(kernel_name)
            if cur_cell is None:
                problems.append(f"{name}/{kernel_name}: missing from current run")
                continue
            floor = base_cell["speedup"] * (1.0 - tolerance)
            if cur_cell["speedup"] < floor:
                problems.append(
                    f"{name}/{kernel_name}: speedup {cur_cell['speedup']:.2f}x "
                    f"fell below {floor:.2f}x "
                    f"(baseline {base_cell['speedup']:.2f}x - {tolerance:.0%})"
                )
    return problems


def write_bench_json(path: str, doc: Dict) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_bench_json(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if doc.get("schema") != SCHEMA:
        raise ConfigError(
            f"{path}: not a {SCHEMA} document (schema={doc.get('schema')!r})"
        )
    return doc
