"""The compiled trace hot path.

Exploration replays the same six kernel traces across every design point
of the space, so the per-instruction expansion work — millions of
dataclass constructions per simulation — is pure overhead after the first
run. This package compiles each :class:`~repro.trace.phase.Segment` once
into compact parallel numpy arrays plus a batched event encoding that the
core models execute without constructing a single per-instruction object,
and memoizes the result per segment so every (system x locality x
fault-rate) design point that replays the same trace shares one
compilation.

The compiled path is bit-identical to the legacy generator path — the
parity suite in ``tests/perf`` asserts equal
:class:`~repro.sim.results.SimulationResult` timings and counters — and is
the :class:`~repro.sim.detailed.DetailedSimulator` default.
"""

from repro.perf.compiled import (
    EV_BRANCH,
    EV_COMPUTE_RUN,
    EV_MEMORY,
    CompiledSegment,
    SegmentCompileCache,
    SHARED_COMPILE_CACHE,
    compile_segment,
)
from repro.perf.sweep import (
    BatchedDesignPoints,
    SweepPoint,
    SweepSimulator,
    run_design_sweep,
)

__all__ = [
    "CompiledSegment",
    "SegmentCompileCache",
    "SHARED_COMPILE_CACHE",
    "compile_segment",
    "EV_COMPUTE_RUN",
    "EV_MEMORY",
    "EV_BRANCH",
    "SweepPoint",
    "BatchedDesignPoints",
    "SweepSimulator",
    "run_design_sweep",
]
