"""Segment compilation: pack a trace segment into parallel numpy arrays.

A :class:`CompiledSegment` is the array form of one
:class:`~repro.trace.phase.Segment`'s deterministic instruction stream
(:meth:`~repro.trace.phase.Segment.raw_ops`): opcode codes, addresses,
sizes, and branch directions live in compact parallel numpy arrays instead
of millions of per-instruction dataclass objects. On top of the arrays we
build a *batched event encoding* — maximal runs of plain compute
instructions collapse into a single ``(EV_COMPUTE_RUN, count)`` record —
which is what the cores' batched loops actually execute
(:meth:`repro.sim.cpu.core.CpuCore.run_compiled`).

Compilation is memoized per segment (:class:`SegmentCompileCache`), so the
many (system x locality x fault-rate) design points that replay the same
kernel trace share one compilation; each ``repro.exec`` worker process gets
the same sharing through its own process-global cache because the
:class:`~repro.exec.cache.TraceCache` hands every job the same frozen
trace (hence equal segments).

The decoded stream (:meth:`CompiledSegment.instructions`) is bit-for-bit
the segment's own :meth:`~repro.trace.phase.Segment.instructions` output;
``tests/perf`` holds the hypothesis property asserting it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.isa.opcodes import CODE_TO_OPCODE, OPCODE_TO_CODE, Opcode
from repro.trace.instruction import Instruction
from repro.trace.phase import Segment

__all__ = [
    "PC_BASE",
    "EV_COMPUTE_RUN",
    "EV_MEMORY",
    "EV_BRANCH",
    "CompiledSegment",
    "SegmentCompileCache",
    "SHARED_COMPILE_CACHE",
    "compile_segment",
]

#: First program-counter value the CPU core's gshare predictor sees; the
#: legacy loop advances it by 4 per instruction, so compiled branch events
#: carry ``PC_BASE + 4 * (index + 1)`` precomputed.
PC_BASE = 0x400000

#: Batched event kinds. A compute run covers every opcode the core loops
#: treat as "just an issue slot" (ALU flavours, NOP, FENCE, SPECIAL).
EV_COMPUTE_RUN = 0
EV_MEMORY = 1
EV_BRANCH = 2

_MEMORY_CODES = frozenset(
    OPCODE_TO_CODE[op]
    for op in (Opcode.LOAD, Opcode.STORE, Opcode.SIMD_LOAD, Opcode.SIMD_STORE)
)
_STORE_CODES = frozenset(
    OPCODE_TO_CODE[op] for op in (Opcode.STORE, Opcode.SIMD_STORE)
)
_BRANCH_CODE = OPCODE_TO_CODE[Opcode.BRANCH]


class CompiledSegment:
    """One segment's instruction stream as parallel numpy arrays.

    ``opcodes`` (uint8) indexes :data:`repro.isa.opcodes.CODE_TO_OPCODE`;
    ``addrs`` (int64) is ``-1`` for non-memory records; ``sizes`` (int32)
    and ``taken`` (bool) complete the record. ``events`` is the batched
    encoding consumed by the cores' ``run_compiled`` loops —
    :meth:`from_segment` builds it eagerly, so compiled segments shipped
    into worker processes never rebuild it.
    """

    __slots__ = ("segment", "opcodes", "addrs", "sizes", "taken", "length", "_events")

    def __init__(
        self,
        segment: Segment,
        opcodes: np.ndarray,
        addrs: np.ndarray,
        sizes: np.ndarray,
        taken: np.ndarray,
    ) -> None:
        self.segment = segment
        self.opcodes = opcodes
        self.addrs = addrs
        self.sizes = sizes
        self.taken = taken
        self.length = int(opcodes.shape[0])
        self._events: "List[Tuple[int, int, int, int]] | None" = None

    @classmethod
    def from_segment(cls, segment: Segment) -> "CompiledSegment":
        """Expand and pack ``segment`` (one pass over ``raw_ops``)."""
        codes: List[int] = []
        addrs: List[int] = []
        sizes: List[int] = []
        taken: List[bool] = []
        codes_append = codes.append
        addrs_append = addrs.append
        sizes_append = sizes.append
        taken_append = taken.append
        for code, addr, size, tk in segment.raw_ops():
            codes_append(code)
            addrs_append(addr)
            sizes_append(size)
            taken_append(tk)
        compiled = cls(
            segment,
            np.asarray(codes, dtype=np.uint8),
            np.asarray(addrs, dtype=np.int64),
            np.asarray(sizes, dtype=np.int32),
            np.asarray(taken, dtype=np.bool_),
        )
        # Build the event encoding eagerly: a compilation always ends up
        # executed through `events`, and building it here means a compiled
        # segment that crosses a process boundary (``repro.exec`` worker
        # fan-out pickles warm caches' entries) arrives ready to run
        # instead of every worker re-deriving the same event list.
        compiled._events = compiled._build_events()
        return compiled

    @property
    def nbytes(self) -> int:
        """Array storage footprint in bytes."""
        return int(
            self.opcodes.nbytes + self.addrs.nbytes + self.sizes.nbytes + self.taken.nbytes
        )

    @property
    def events(self) -> "List[Tuple[int, int, int, int]]":
        """The batched event encoding (eager via :meth:`from_segment`;
        built on first use for hand-constructed instances).

        Records are 4-tuples:

        - ``(EV_COMPUTE_RUN, count, 0, 0)`` — ``count`` consecutive
          issue-slot-only instructions;
        - ``(EV_MEMORY, addr, size, is_write)``;
        - ``(EV_BRANCH, taken, pc, 0)`` — ``pc`` precomputed for the CPU's
          gshare predictor (the GPU ignores it).
        """
        if self._events is None:
            self._events = self._build_events()
        return self._events

    def _build_events(self) -> "List[Tuple[int, int, int, int]]":
        events: List[Tuple[int, int, int, int]] = []
        append = events.append
        memory_codes = _MEMORY_CODES
        store_codes = _STORE_CODES
        branch_code = _BRANCH_CODE
        run = 0
        # .tolist() yields plain python ints/bools — much faster to iterate
        # than boxed numpy scalars.
        codes = self.opcodes.tolist()
        addrs = self.addrs.tolist()
        sizes = self.sizes.tolist()
        taken = self.taken.tolist()
        pc = PC_BASE
        for index, code in enumerate(codes):
            pc += 4
            if code in memory_codes:
                if run:
                    append((EV_COMPUTE_RUN, run, 0, 0))
                    run = 0
                append((EV_MEMORY, addrs[index], sizes[index], code in store_codes))
            elif code == branch_code:
                if run:
                    append((EV_COMPUTE_RUN, run, 0, 0))
                    run = 0
                append((EV_BRANCH, taken[index], pc, 0))
            else:
                run += 1
        if run:
            append((EV_COMPUTE_RUN, run, 0, 0))
        return events

    def instructions(self) -> Iterator[Instruction]:
        """Decode back into :class:`Instruction` objects.

        Bit-identical to ``self.segment.instructions()``; used by paths
        that still need real objects (the GPU warp scheduler) and by the
        parity tests.
        """
        opcode_table = CODE_TO_OPCODE
        codes = self.opcodes.tolist()
        addrs = self.addrs.tolist()
        sizes = self.sizes.tolist()
        taken = self.taken.tolist()
        for index, code in enumerate(codes):
            addr = addrs[index]
            if addr >= 0:
                yield Instruction(opcode_table[code], addr=addr, size=sizes[index])
            else:
                yield Instruction(opcode_table[code], taken=taken[index])

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CompiledSegment {self.segment.label!r} x{self.length} "
            f"({self.nbytes} array bytes)>"
        )


class SegmentCompileCache:
    """A bounded memo of segment → :class:`CompiledSegment`.

    Segments are frozen dataclasses, so equality-keyed sharing is safe: two
    design points replaying the same (possibly staged or scaled) trace get
    the same compilation. The cache is LRU-bounded because address-space
    staging rewrites segment base addresses, producing a fresh key per
    (kernel, space) pair.

    ``shared`` is an optional second tier — duck-typed as anything with
    ``load(segment) -> CompiledSegment | None`` and ``publish(segment,
    compiled) -> bool``, in practice a
    :class:`~repro.perf.warm.SharedCompileRegion`. Lookups fall through
    local LRU → shared region → compile-and-publish; a shared hit counts
    as ``shared_hits`` (not a miss — no compilation happened) and lands in
    the local LRU copy-on-read.
    """

    def __init__(self, capacity: int = 256, shared: "object | None" = None) -> None:
        if capacity < 1:
            raise ValueError("compile cache capacity must be positive")
        self.capacity = capacity
        self._store: "OrderedDict[Segment, CompiledSegment]" = OrderedDict()
        self.shared = shared
        self.hits = 0
        self.misses = 0
        self.shared_hits = 0
        self.published = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._store)

    def _insert(self, segment: Segment, compiled: CompiledSegment) -> None:
        self._store[segment] = compiled
        while len(self._store) > self.capacity:
            self._store.popitem(last=False)
            self.evictions += 1

    def get(self, segment: Segment) -> CompiledSegment:
        """The compiled form of ``segment`` (compiling on first sight)."""
        compiled = self._store.get(segment)
        if compiled is not None:
            self.hits += 1
            self._store.move_to_end(segment)
            return compiled
        shared = self.shared
        if shared is not None:
            compiled = shared.load(segment)
            if compiled is not None:
                self.shared_hits += 1
                self._insert(segment, compiled)
                return compiled
        self.misses += 1
        compiled = CompiledSegment.from_segment(segment)
        if shared is not None and shared.publish(segment, compiled):
            self.published += 1
        self._insert(segment, compiled)
        return compiled

    def seed(self, segment: Segment, compiled: CompiledSegment) -> None:
        """Insert without touching the counters (pool pre-warming)."""
        self._insert(segment, compiled)

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0
        self.shared_hits = 0
        self.published = 0
        self.evictions = 0

    def stats(self) -> "Dict[str, int | float]":
        lookups = self.hits + self.shared_hits + self.misses
        return {
            "entries": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
            "shared_hits": self.shared_hits,
            "published": self.published,
            "evictions": self.evictions,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }


#: Process-wide compile memo: the detailed simulator's default, so repeated
#: runs across design points (and benchmark rounds) compile each segment
#: exactly once per process.
SHARED_COMPILE_CACHE = SegmentCompileCache()


def compile_segment(segment: Segment) -> CompiledSegment:
    """Compile ``segment`` through the process-wide cache."""
    return SHARED_COMPILE_CACHE.get(segment)
