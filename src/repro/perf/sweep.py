"""The design-point axis of the compiled hot path.

Ranking and figure sweeps replay the same six kernel traces across dozens
of design points; until this module the :class:`~repro.sim.detailed.DetailedSimulator`
consumed each point one at a time, re-decoding the same
:class:`~repro.perf.compiled.CompiledSegment` event stream per point. Here
the points become an *axis*:

- :class:`SweepPoint` — one design point's simulation parameters (the
  pure-data subset of a :class:`~repro.exec.job.SimJob`);
- :class:`BatchedDesignPoints` — a batch of points with their
  latency/bandwidth/capacity/issue-width parameters stacked into parallel
  numpy arrays, the timing-equivalence dedup (points differing only in
  display label share one simulation, mirroring
  :class:`~repro.exec.cache.ResultCache` relabel-on-hit), and the
  execution grouping (points that can share one phase walk);
- :class:`SweepSimulator` — evaluates one trace against every point of a
  batch: per execution group the phase walk runs *once*, driving the
  batched core loops (:func:`repro.sim.cpu.core.run_compiled_batch`,
  :func:`repro.sim.gpu.core.run_compiled_batch`) so each event record is
  decoded once for N per-point machines.

Bit-identity contract: for every point, the returned
:class:`~repro.sim.results.SimulationResult` equals what
``DetailedSimulator(compiled=True).run`` produces for that point alone —
``tests/perf/test_sweep.py`` pins this for all six kernels across the five
case-study systems and for rank-style mechanism/space points.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.addrspace.base import AddressSpace, make_address_space
from repro.config.comm import CommParams
from repro.config.presets import CaseStudy
from repro.config.system import SystemConfig
from repro.comm.base import make_channel
from repro.errors import SimulationError
from repro.mem.cache.replacement import ReplacementPolicy
from repro.mem.coherence.api import resolve_protocol_kind
from repro.perf.compiled import SHARED_COMPILE_CACHE, SegmentCompileCache
from repro.sim.cpu.core import run_compiled_batch as cpu_run_compiled_batch
from repro.sim.engine import run_parallel_interleaved
from repro.sim.gpu.core import run_compiled_batch as gpu_run_compiled_batch
from repro.sim.mmu import TranslationFront, stage_trace
from repro.sim.results import PhaseTiming, SimulationResult, TimeBreakdown
from repro.sim.system import build_machine
from repro.taxonomy import (
    AddressSpaceKind,
    CoherenceKind,
    CommMechanism,
    ProcessingUnit,
)
from repro.trace.phase import CommPhase, Direction, ParallelPhase, SequentialPhase
from repro.trace.stream import KernelTrace

__all__ = [
    "SweepPoint",
    "BatchedDesignPoints",
    "SweepSimulator",
    "run_design_sweep",
]


@dataclass(frozen=True)
class SweepPoint:
    """One design point of a batched sweep (pure data, picklable).

    Exactly one of ``case``/``mechanism`` selects the communication
    mechanism, mirroring :class:`~repro.exec.job.SimJob`. ``system`` and
    ``comm_params`` override the simulator's machine parameters for this
    point only (``None`` inherits them); ``system_name`` is the display
    label and never affects timing.
    """

    case: Optional[CaseStudy] = None
    mechanism: Optional[CommMechanism] = None
    async_overlap: bool = False
    address_space: Optional[AddressSpaceKind] = None
    system_name: Optional[str] = None
    system: Optional[SystemConfig] = None
    comm_params: Optional[CommParams] = None
    #: Coherence-protocol override (``"none" | "snoop" | "directory"`` or a
    #: :class:`~repro.taxonomy.CoherenceKind`); ``None`` derives from the
    #: case study, matching :meth:`repro.sim.detailed.DetailedSimulator.run`.
    coherence: "str | CoherenceKind | None" = None

    def __post_init__(self) -> None:
        selectors = sum(x is not None for x in (self.case, self.mechanism))
        if selectors != 1:
            raise SimulationError(
                f"a SweepPoint needs exactly one of case/mechanism, got {selectors}"
            )

    @property
    def hardware_coherence(self) -> bool:
        return bool(
            self.case and self.case.coherence is CoherenceKind.HARDWARE_DIRECTORY
        )

    @property
    def protocol_kind(self) -> str:
        """The protocol variant this point's machine is built with."""
        if self.coherence is not None:
            return resolve_protocol_kind(self.coherence)
        if self.case is not None:
            return self.case.coherence.protocol
        return "none"

    def timing_key(self) -> Tuple:
        """Everything that can affect this point's timing — the dedup key.

        Excludes ``system_name``, exactly like
        :meth:`repro.exec.job.SimJob.cache_key`: two points equal up to the
        label share one simulation and the result is re-labeled on scatter.
        The coherence override enters as its *resolved* protocol kind, so
        spelling the case's own kind explicitly still dedups.
        """
        return (
            self.case,
            self.mechanism,
            self.async_overlap,
            self.address_space,
            self.system,
            self.comm_params,
            self.protocol_kind,
        )

    def label(self) -> str:
        """The result's ``system`` field, matching ``DetailedSimulator.run``."""
        if self.system_name:
            return self.system_name
        if self.case is not None:
            return self.case.name
        return str(self.mechanism)


class BatchedDesignPoints:
    """A batch of :class:`SweepPoint`\\ s prepared for one-pass evaluation.

    Stacks each point's machine parameters into parallel numpy arrays
    (``issue_widths``, ``cpu_hertz``, ``gpu_hertz``, ``l1d_latencies``,
    ``l1d_capacities``, ``l3_capacities``, ``pci_bandwidths`` — one entry
    per point), computes the timing-equivalence partition
    (:attr:`distinct` representatives plus the :attr:`inverse` map), and
    groups the representatives into execution groups that can share a
    single phase walk: equal machine parameters, equal address-space
    staging, equal coherence — so the per-point machines see identical
    event streams and only channels, clocks, and cache contents differ.
    """

    def __init__(
        self,
        points: Sequence[SweepPoint],
        system: Optional[SystemConfig] = None,
        comm_params: Optional[CommParams] = None,
    ) -> None:
        if not points:
            raise SimulationError("a batch needs at least one design point")
        self.points: Tuple[SweepPoint, ...] = tuple(points)
        self.default_system = system or SystemConfig()
        self.default_comm_params = comm_params or CommParams()

        systems = [p.system or self.default_system for p in self.points]
        params = [p.comm_params or self.default_comm_params for p in self.points]
        self.issue_widths = np.asarray(
            [s.cpu.issue_width for s in systems], dtype=np.int64
        )
        self.cpu_hertz = np.asarray(
            [s.cpu.frequency.hertz for s in systems], dtype=np.float64
        )
        self.gpu_hertz = np.asarray(
            [s.gpu.frequency.hertz for s in systems], dtype=np.float64
        )
        self.l1d_latencies = np.asarray(
            [s.cpu.l1d.latency for s in systems], dtype=np.int64
        )
        self.l1d_capacities = np.asarray(
            [s.cpu.l1d.size_bytes for s in systems], dtype=np.int64
        )
        self.l3_capacities = np.asarray(
            [s.l3.size_bytes for s in systems], dtype=np.int64
        )
        self.pci_bandwidths = np.asarray(
            [p.pci_bandwidth.bytes_per_second for p in params], dtype=np.float64
        )

        #: Indices (into ``points``) of the timing-distinct representatives,
        #: in first-appearance order; ``inverse[i]`` is the position in
        #: ``distinct`` that point ``i`` shares a simulation with.
        self.distinct: List[int] = []
        self.inverse: List[int] = []
        seen: Dict[Tuple, int] = {}
        for index, point in enumerate(self.points):
            key = point.timing_key()
            rep = seen.get(key)
            if rep is None:
                rep = len(self.distinct)
                seen[key] = rep
                self.distinct.append(index)
            self.inverse.append(rep)

    def __len__(self) -> int:
        return len(self.points)

    def resolved(self, point: SweepPoint) -> Tuple[SystemConfig, CommParams]:
        """The (system, comm params) this point actually simulates under."""
        return (
            point.system or self.default_system,
            point.comm_params or self.default_comm_params,
        )

    def groups(self) -> List[List[int]]:
        """Execution groups over the distinct representatives.

        Each group is a list of positions into :attr:`distinct`; its points
        share machine parameters, address-space kind, and coherence, so one
        phase walk (with batched core loops) evaluates them all. Points in
        different groups differ in the staged trace or the machine itself
        and walk separately.
        """
        grouped: Dict[Tuple, List[int]] = {}
        for position, index in enumerate(self.distinct):
            point = self.points[index]
            system, params = self.resolved(point)
            key = (system, point.address_space, point.protocol_kind)
            grouped.setdefault(key, []).append(position)
        return list(grouped.values())


class SweepSimulator:
    """Evaluates one trace against a batch of design points in shared passes.

    Construction knobs mirror :class:`~repro.sim.detailed.DetailedSimulator`
    (the per-point parity oracle); the compiled hot path is always on —
    batching *is* the compiled event encoding applied across a point axis.
    Interleaved parallel phases are inherently per-point (the engine steps
    the two cores of one machine in timestamp order), so they fall back to
    :func:`~repro.sim.engine.run_parallel_interleaved` per point while
    sequential and serial parallel phases run the batched core loops.
    """

    def __init__(
        self,
        system: Optional[SystemConfig] = None,
        comm_params: Optional[CommParams] = None,
        l3_policy: Optional[ReplacementPolicy] = None,
        interleave_parallel: bool = True,
        l1_prefetch: bool = False,
        gpu_mode: str = "heuristic",
        interleave_quantum: int = 1,
        compile_cache: Optional[SegmentCompileCache] = None,
    ) -> None:
        self.system = system or SystemConfig()
        self.comm_params = comm_params or CommParams()
        self.l3_policy = l3_policy
        self.interleave_parallel = interleave_parallel
        self.l1_prefetch = l1_prefetch
        self.gpu_mode = gpu_mode
        if interleave_quantum < 1:
            raise SimulationError(
                f"interleave quantum must be >= 1, got {interleave_quantum}"
            )
        self.interleave_quantum = interleave_quantum
        self.compile_cache = compile_cache or SHARED_COMPILE_CACHE

    def run(
        self,
        trace: KernelTrace,
        points: "Sequence[SweepPoint] | BatchedDesignPoints",
        scale: float = 1.0,
    ) -> List[SimulationResult]:
        """Simulate ``trace`` for every point; results in point order.

        Each timing-distinct point is simulated exactly once; duplicates
        receive the shared result re-labeled to their own ``system_name``
        (determinism makes the shared result bit-identical to a dedicated
        run, the same argument :class:`~repro.exec.cache.ResultCache`
        relies on).
        """
        batch = (
            points
            if isinstance(points, BatchedDesignPoints)
            else BatchedDesignPoints(points, self.system, self.comm_params)
        )
        if scale != 1.0:
            trace = trace.scaled(scale)
        distinct_results: List[Optional[SimulationResult]] = [None] * len(
            batch.distinct
        )
        for group in batch.groups():
            self._run_group(trace, batch, group, distinct_results)
        results: List[SimulationResult] = []
        for index, point in enumerate(batch.points):
            result = distinct_results[batch.inverse[index]]
            assert result is not None
            name = point.label()
            if result.system != name:
                result = replace(result, system=name)
            results.append(result)
        return results

    def _run_group(
        self,
        trace: KernelTrace,
        batch: BatchedDesignPoints,
        group: Sequence[int],
        out: List[Optional[SimulationResult]],
    ) -> None:
        """One shared phase walk over the group's per-point machines.

        The walk is :meth:`repro.sim.detailed.DetailedSimulator.run` with
        every piece of per-run state turned into a per-point list; the
        order of operations per point is preserved exactly.
        """
        points = [batch.points[batch.distinct[g]] for g in group]
        n = len(points)
        system, _ = batch.resolved(points[0])
        cpu_freq = system.cpu.frequency
        gpu_freq = system.gpu.frequency
        space_kind = points[0].address_space
        protocol_kind = points[0].protocol_kind

        channels = []
        for point in points:
            _, params = batch.resolved(point)
            if point.case is not None:
                channels.append(
                    make_channel(
                        point.case.comm,
                        params=params,
                        system=system,
                        async_overlap=point.case.async_overlap,
                    )
                )
            else:
                channels.append(
                    make_channel(
                        point.mechanism,
                        params=params,
                        system=system,
                        async_overlap=point.async_overlap,
                    )
                )

        staged = trace
        spaces: Optional[List[AddressSpace]] = None
        if space_kind is not None:
            # Stage per point: staging allocates in the point's own page
            # tables (the MMUs translate against them), but the rebased
            # trace is deterministic, so every point stages identically and
            # the first staging is the shared event stream.
            spaces = [make_address_space(space_kind, system) for _ in range(n)]
            staged = stage_trace(trace, spaces[0])
            for space in spaces[1:]:
                stage_trace(trace, space)

        machines = [
            build_machine(
                system,
                l3_policy=self.l3_policy,
                coherence=protocol_kind,
                l1_prefetch=self.l1_prefetch,
                gpu_mode=self.gpu_mode,
            )
            for _ in range(n)
        ]
        mmus: Optional[List[Dict[ProcessingUnit, TranslationFront]]] = None
        if spaces is not None:
            mmus = []
            for machine, space in zip(machines, spaces):
                cpu_mmu = TranslationFront(
                    ProcessingUnit.CPU, space, machine.cpu_core.memory
                )
                gpu_mmu = TranslationFront(
                    ProcessingUnit.GPU, space, machine.gpu_core.memory
                )
                machine.cpu_core.memory = cpu_mmu
                machine.gpu_core.memory = gpu_mmu
                mmus.append(
                    {ProcessingUnit.CPU: cpu_mmu, ProcessingUnit.GPU: gpu_mmu}
                )

        cpu_cores = [machine.cpu_core for machine in machines]
        gpu_cores = [machine.gpu_core for machine in machines]
        compile_get = self.compile_cache.get

        sequential = [0.0] * n
        parallel = [0.0] * n
        communication = [0.0] * n
        now = [0.0] * n
        last_parallel_seconds = [0.0] * n
        pending_h2d: List[List[CommPhase]] = [[] for _ in range(n)]
        phase_timings: List[List[PhaseTiming]] = [[] for _ in range(n)]

        def resolve_pending(i: int, window: float) -> None:
            for comm in pending_h2d[i]:
                result = channels[i].transfer(comm, overlap_window=window)
                communication[i] += result.exposed
                now[i] += result.exposed
                phase_timings[i].append(
                    PhaseTiming(
                        label=comm.label,
                        kind="communication",
                        seconds=result.exposed,
                        overlapped_seconds=result.overlapped,
                    )
                )
            pending_h2d[i].clear()

        for phase in staged.phases:
            if isinstance(phase, SequentialPhase):
                compiled = compile_get(phase.segment)
                cycles = cpu_run_compiled_batch(cpu_cores, compiled, now)
                for i in range(n):
                    seconds = cpu_freq.cycles_to_seconds(cycles[i])
                    sequential[i] += seconds
                    now[i] += seconds
                    phase_timings[i].append(
                        PhaseTiming(
                            label=phase.label,
                            kind="sequential",
                            seconds=seconds,
                            cpu_seconds=seconds,
                        )
                    )
            elif isinstance(phase, ParallelPhase):
                if self.interleave_parallel:
                    cpu_compiled = compile_get(phase.cpu)
                    gpu_compiled = compile_get(phase.gpu)
                    cpu_seconds_list = [0.0] * n
                    gpu_seconds_list = [0.0] * n
                    for i in range(n):
                        outcome = run_parallel_interleaved(
                            cpu_cores[i],
                            gpu_cores[i],
                            cpu_compiled,
                            gpu_compiled,
                            start_seconds=now[i],
                            quantum=self.interleave_quantum,
                        )
                        cpu_seconds_list[i] = outcome.cpu_seconds
                        gpu_seconds_list[i] = outcome.gpu_seconds
                else:
                    cpu_cycles = cpu_run_compiled_batch(
                        cpu_cores, compile_get(phase.cpu), now
                    )
                    gpu_cycles = gpu_run_compiled_batch(
                        gpu_cores, compile_get(phase.gpu), now
                    )
                    cpu_seconds_list = [
                        cpu_freq.cycles_to_seconds(c) for c in cpu_cycles
                    ]
                    gpu_seconds_list = [
                        gpu_freq.cycles_to_seconds(c) for c in gpu_cycles
                    ]
                for i in range(n):
                    cpu_seconds = cpu_seconds_list[i]
                    gpu_seconds = gpu_seconds_list[i]
                    seconds = max(cpu_seconds, gpu_seconds)
                    resolve_pending(i, seconds)
                    parallel[i] += seconds
                    now[i] += seconds
                    last_parallel_seconds[i] = seconds
                    phase_timings[i].append(
                        PhaseTiming(
                            label=phase.label,
                            kind="parallel",
                            seconds=seconds,
                            cpu_seconds=cpu_seconds,
                            gpu_seconds=gpu_seconds,
                        )
                    )
            elif isinstance(phase, CommPhase):
                if phase.direction is Direction.H2D:
                    for i in range(n):
                        pending_h2d[i].append(phase)
                    continue
                for i in range(n):
                    result = channels[i].transfer(
                        phase, overlap_window=last_parallel_seconds[i]
                    )
                    communication[i] += result.exposed
                    now[i] += result.exposed
                    phase_timings[i].append(
                        PhaseTiming(
                            label=phase.label,
                            kind="communication",
                            seconds=result.exposed,
                            overlapped_seconds=result.overlapped,
                        )
                    )
            else:
                raise SimulationError(f"unknown phase type {type(phase).__name__}")
        for i in range(n):
            resolve_pending(i, 0.0)

        for i, (g, point) in enumerate(zip(group, points)):
            counters: Dict[str, float] = dict(channels[i].stats())
            for component, stats in machines[i].stats().items():
                for key, value in stats.items():
                    counters[f"{component}.{key}"] = value
            if mmus is not None:
                for pu, mmu in mmus[i].items():
                    for key, value in mmu.stats().items():
                        counters[f"mmu.{pu}.{key}"] = value
            out[g] = SimulationResult(
                kernel=staged.name,
                system=point.label(),
                breakdown=TimeBreakdown(
                    sequential=sequential[i],
                    parallel=parallel[i],
                    communication=communication[i],
                ),
                phases=tuple(phase_timings[i]),
                counters=counters,
            )


def run_design_sweep(
    trace: KernelTrace,
    points: Sequence[SweepPoint],
    system: Optional[SystemConfig] = None,
    comm_params: Optional[CommParams] = None,
    scale: float = 1.0,
    **kwargs,
) -> List[SimulationResult]:
    """Convenience wrapper: batch ``points`` and evaluate ``trace`` once.

    ``kwargs`` pass through to :class:`SweepSimulator`.
    """
    simulator = SweepSimulator(system=system, comm_params=comm_params, **kwargs)
    return simulator.run(trace, points, scale=scale)
