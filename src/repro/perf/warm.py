"""Warm-shared compile cache: compiled segments in POSIX shared memory.

A :class:`~repro.perf.compiled.CompiledSegment` is four columnar numpy
arrays plus a batched event encoding — pure data, expensive to rebuild,
and identical in every process that replays the same trace. This module
publishes that data once into :mod:`multiprocessing.shared_memory` blocks
behind a keyed on-disk index, so a pool of worker processes starts *warm*:
instead of each worker recompiling every segment into its private
:data:`~repro.perf.compiled.SHARED_COMPILE_CACHE`, the pool initializer
(:func:`attach_region`) attaches the region and pre-loads every published
compilation, driving steady-state ``exec.compile.misses`` to ~0.

Layout — a :class:`SharedCompileRegion` is a directory::

    region/
      index.json   # digest -> {shm name, array dtypes/shapes/offsets}
      index.lock   # fcntl advisory lock serializing publishers

and one shared-memory block per published segment holding, back to back:
the pickled :class:`~repro.trace.phase.Segment` (so pre-warm can enumerate
entries without knowing the keys), the four instruction arrays, and the
event encoding packed as an ``(n, 4)`` int64 array. Loads are
**copy-on-read**: the arrays are copied out of the block, so consumers can
never corrupt the shared region and blocks can be unlinked safely.

Publication is **single-writer**: publishers take the fcntl lock, re-read
the index (another process may have won the race), write the block, and
atomically replace ``index.json`` (tmp + rename). Readers never lock.

Everything degrades gracefully: on platforms (or sandboxes) without
``shared_memory``/``fcntl`` support, :func:`shm_available` reports False,
:meth:`SharedCompileRegion.publish` / :meth:`~SharedCompileRegion.load`
become no-ops, and the private in-process cache carries on exactly as
before — byte-identical results, just cold workers.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pickle
import tempfile
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.obs.log import get_logger
from repro.perf.compiled import (
    EV_BRANCH,
    EV_COMPUTE_RUN,
    EV_MEMORY,
    CompiledSegment,
)
from repro.trace.phase import Segment

__all__ = [
    "SCHEMA",
    "segment_digest",
    "shm_available",
    "SharedCompileRegion",
    "attach_region",
]

_log = get_logger("perf.warm")

#: Version tag baked into every digest and index: a region written by an
#: incompatible layout is ignored wholesale instead of misread.
SCHEMA = "warm_region/v1"

#: The four columnar arrays, in block order, with their fixed dtypes.
_ARRAY_FIELDS: Tuple[Tuple[str, str], ...] = (
    ("opcodes", "uint8"),
    ("addrs", "int64"),
    ("sizes", "int32"),
    ("taken", "bool"),
)


def segment_digest(segment: Segment) -> str:
    """A stable content digest for ``segment`` (hex, schema-versioned).

    Covers every field the deterministic expansion depends on, so two
    equal segments — across processes, runs, and machines — share one
    digest, and any differing field (a staged base address, a scaled mix)
    produces a different one.
    """
    mix = segment.mix
    canonical = (
        SCHEMA,
        segment.pu.name,
        tuple(
            (name, getattr(mix, name))
            for name in (
                "int_alu",
                "fp_alu",
                "simd_alu",
                "loads",
                "stores",
                "simd_loads",
                "simd_stores",
                "branches",
                "specials",
            )
        ),
        segment.base_addr,
        segment.footprint_bytes,
        segment.elem_bytes,
        segment.label,
    )
    return hashlib.sha256(repr(canonical).encode("utf-8")).hexdigest()


_SHM_PROBED: Optional[bool] = None


def shm_available() -> bool:
    """Whether POSIX shared memory actually works here (probed once).

    Restricted sandboxes can import :mod:`multiprocessing.shared_memory`
    yet fail at creation time, so the probe allocates (and immediately
    unlinks) a real block.
    """
    global _SHM_PROBED
    if _SHM_PROBED is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(create=True, size=1)
            probe.close()
            # unlink() also unregisters from the resource tracker, so the
            # probe needs no _untrack (doubling up makes the tracker warn).
            probe.unlink()
            import fcntl  # noqa: F401 - lock support is part of the contract

            _SHM_PROBED = True
        except Exception:  # noqa: BLE001 - any failure means "not here"
            _SHM_PROBED = False
    return _SHM_PROBED


def _untrack(shm: object) -> None:
    """Keep the resource tracker's fingers off ``shm``.

    Every process that creates *or attaches* a block registers it with its
    resource tracker, which unlinks the segment when that process exits —
    exactly wrong for a region meant to outlive pool workers. Cleanup is
    explicit (:meth:`SharedCompileRegion.destroy`) instead.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:  # noqa: BLE001 - tracker API is interpreter-internal
        pass


def _pack_events(events: List[Tuple[int, int, int, int]]) -> np.ndarray:
    """The event list as an ``(n, 4)`` int64 array (bools become 0/1)."""
    if not events:
        return np.empty((0, 4), dtype=np.int64)
    return np.asarray(events, dtype=np.int64)


def _unpack_events(packed: np.ndarray) -> List[Tuple[int, int, int, int]]:
    """Reconstruct the event list, bool fields restored exactly.

    ``EV_MEMORY`` carries ``is_write`` in field 3 and ``EV_BRANCH``
    carries ``taken`` in field 1 as real bools in a freshly built
    compilation; the round-trip restores the same types so a loaded
    segment's ``events`` compares equal element-for-element.
    """
    events: List[Tuple[int, int, int, int]] = []
    append = events.append
    for kind, a, b, c in packed.tolist():
        if kind == EV_MEMORY:
            append((EV_MEMORY, a, b, bool(c)))
        elif kind == EV_BRANCH:
            append((EV_BRANCH, bool(a), b, 0))
        else:
            append((EV_COMPUTE_RUN, a, 0, 0))
    return events


class SharedCompileRegion:
    """A directory-backed index of compiled segments in shared memory.

    One region is shared by a parent process and its worker pool: the
    parent (or any worker) publishes each compilation once, every process
    loads copy-on-read. The instance is picklable *by root path* — ship
    ``region.root`` to pool initializers, not the object.
    """

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self._index_path = os.path.join(self.root, "index.json")
        self._lock_path = os.path.join(self.root, "index.lock")
        self._entries: Dict[str, dict] = {}
        self._disabled = not shm_available()
        #: Region-level counters (merged into cache stats by consumers).
        self.publishes = 0
        self.loads = 0
        self.load_failures = 0
        self._refresh()

    # -- index plumbing ----------------------------------------------------

    def _refresh(self) -> None:
        """Re-read ``index.json`` (tolerating a missing or torn file)."""
        try:
            with open(self._index_path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, ValueError):
            return
        if doc.get("schema") != SCHEMA:
            return
        entries = doc.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    def _write_index(self) -> None:
        """Atomically replace the index (readers see old or new, never torn)."""
        doc = {"schema": SCHEMA, "entries": self._entries}
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".index.tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(doc, handle, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self._index_path)
        except OSError:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise

    @contextlib.contextmanager
    def _locked(self) -> Iterator[None]:
        """The single-writer publish lock (fcntl advisory, blocking)."""
        import fcntl

        with open(self._lock_path, "a+") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def __len__(self) -> int:
        return len(self._entries)

    def digests(self) -> List[str]:
        return sorted(self._entries)

    # -- publish -----------------------------------------------------------

    def publish(self, segment: Segment, compiled: CompiledSegment) -> bool:
        """Publish one compilation; False when already present or disabled.

        Safe to call from any process: the fcntl lock serializes writers
        and the post-lock re-read makes the losing racer a no-op.
        """
        if self._disabled:
            return False
        digest = segment_digest(segment)
        if digest in self._entries:
            return False
        try:
            return self._publish_locked(digest, segment, compiled)
        except Exception as exc:  # noqa: BLE001 - shm loss must not kill runs
            _log.debug("disabling shared compile region (%s)", exc)
            self._disabled = True
            return False

    def _publish_locked(
        self, digest: str, segment: Segment, compiled: CompiledSegment
    ) -> bool:
        from multiprocessing import shared_memory

        with self._locked():
            self._refresh()
            if digest in self._entries:
                return False
            segment_blob = pickle.dumps(segment, protocol=pickle.HIGHEST_PROTOCOL)
            events = _pack_events(compiled.events)
            chunks: List[Tuple[str, bytes, str, Tuple[int, ...]]] = [
                ("segment", segment_blob, "bytes", (len(segment_blob),))
            ]
            for name, dtype in _ARRAY_FIELDS:
                array = np.ascontiguousarray(getattr(compiled, name))
                chunks.append((name, array.tobytes(), dtype, array.shape))
            chunks.append(("events", events.tobytes(), "int64", events.shape))
            total = sum(len(blob) for _, blob, _, _ in chunks)
            shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
            try:
                header: Dict[str, dict] = {}
                offset = 0
                for name, blob, dtype, shape in chunks:
                    shm.buf[offset : offset + len(blob)] = blob
                    header[name] = {
                        "offset": offset,
                        "nbytes": len(blob),
                        "dtype": dtype,
                        "shape": list(shape),
                    }
                    offset += len(blob)
                self._entries[digest] = {"shm": shm.name, "fields": header}
                self._write_index()
                # Only once the block is durably indexed: keep the tracker
                # off it so it outlives this process (destroy() cleans up).
                # The failure path's unlink() sends its own unregister.
                _untrack(shm)
            except Exception:
                with contextlib.suppress(Exception):
                    shm.unlink()
                raise
            finally:
                shm.close()
        self.publishes += 1
        return True

    # -- load --------------------------------------------------------------

    def load(self, segment: Segment) -> Optional[CompiledSegment]:
        """The published compilation of ``segment``, or None (copy-on-read)."""
        if self._disabled:
            return None
        digest = segment_digest(segment)
        entry = self._entries.get(digest)
        if entry is None:
            self._refresh()
            entry = self._entries.get(digest)
            if entry is None:
                return None
        compiled = self._load_entry(entry, segment)
        if compiled is None:
            self.load_failures += 1
        else:
            self.loads += 1
        return compiled

    def _load_entry(
        self, entry: dict, segment: Optional[Segment]
    ) -> Optional[CompiledSegment]:
        from multiprocessing import shared_memory

        try:
            shm = shared_memory.SharedMemory(name=entry["shm"])
        except (OSError, ValueError):
            return None
        _untrack(shm)
        try:
            fields = entry["fields"]

            def chunk(name: str) -> "tuple[bytes, dict]":
                # bytes() copies out of the block immediately — copy-on-read,
                # and no exported buffer pointers survive past close().
                spec = fields[name]
                start = spec["offset"]
                return bytes(shm.buf[start : start + spec["nbytes"]]), spec

            if segment is None:
                blob, _ = chunk("segment")
                segment = pickle.loads(blob)
            arrays = {}
            for name, dtype in _ARRAY_FIELDS:
                blob, spec = chunk(name)
                arrays[name] = np.frombuffer(blob, dtype=np.dtype(dtype)).reshape(
                    tuple(spec["shape"])
                ).copy()
            blob, spec = chunk("events")
            packed = np.frombuffer(blob, dtype=np.int64).reshape(
                tuple(spec["shape"])
            )
        except (KeyError, ValueError, TypeError, pickle.PickleError):
            return None
        finally:
            shm.close()
        compiled = CompiledSegment(
            segment,
            arrays["opcodes"],
            arrays["addrs"],
            arrays["sizes"],
            arrays["taken"],
        )
        compiled._events = _unpack_events(packed)
        return compiled

    def items(self) -> Iterator[Tuple[Segment, CompiledSegment]]:
        """Every published (segment, compilation) pair (for pre-warming)."""
        if self._disabled:
            return
        self._refresh()
        for digest in sorted(self._entries):
            compiled = self._load_entry(self._entries[digest], None)
            if compiled is not None:
                yield compiled.segment, compiled

    # -- lifecycle ---------------------------------------------------------

    def destroy(self) -> None:
        """Unlink every block and remove the index (owner-side cleanup)."""
        if not shm_available():
            self._entries = {}
            return
        from multiprocessing import shared_memory

        self._refresh()
        for entry in self._entries.values():
            try:
                shm = shared_memory.SharedMemory(name=entry["shm"])
            except (OSError, ValueError):
                continue
            shm.close()
            # attach registered the name; unlink() unregisters it again,
            # so no _untrack here (doubling up makes the tracker warn).
            with contextlib.suppress(OSError):
                shm.unlink()
        self._entries = {}
        for path in (self._index_path, self._lock_path):
            with contextlib.suppress(OSError):
                os.unlink(path)

    def __enter__(self) -> "SharedCompileRegion":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.destroy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "disabled" if self._disabled else f"{len(self._entries)} entries"
        return f"<SharedCompileRegion {self.root} ({state})>"


def attach_region(root: str, prewarm: bool = True) -> None:
    """Attach the process-global compile cache to the region at ``root``.

    This is the pool-initializer entry point: pass it as
    ``initializer=attach_region, initargs=(region.root,)`` to a
    :class:`~repro.exec.runner.ParallelRunner` and every worker boots with
    the shared tier wired in and (with ``prewarm``) its local LRU already
    holding every published compilation — zero compile misses in steady
    state. Harmless when the region is unreadable: the worker just stays
    on its private cache.
    """
    from repro.perf.compiled import SHARED_COMPILE_CACHE

    try:
        region = SharedCompileRegion(root)
    except Exception as exc:  # noqa: BLE001 - init must never kill a worker
        _log.debug("cannot attach compile region %s (%s)", root, exc)
        return
    SHARED_COMPILE_CACHE.shared = region
    if prewarm:
        seeded = 0
        for segment, compiled in region.items():
            SHARED_COMPILE_CACHE.seed(segment, compiled)
            seeded += 1
        if seeded:
            _log.debug("pre-warmed compile cache with %d segment(s)", seeded)
