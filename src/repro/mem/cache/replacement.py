"""Replacement policies, including the hybrid locality-aware policy.

Paper §II-B5 ("Hybrid Locality in the Second-Level Cache"): when a cache is
shared by an implicitly-managed PU and an explicitly-managed PU, the
replacement policy must guarantee that "an implicitly-managed cache block
cannot evict an explicitly-managed cache block", and "the explicitly
managed cache size must be smaller than the total size of the physically
shared cache". :class:`HybridLocalityPolicy` implements exactly those two
rules on top of LRU.
"""

from __future__ import annotations

import abc
from typing import List, Optional

from repro.errors import ConfigError, LocalityError
from repro.mem.cache.block import CacheBlock

__all__ = ["ReplacementPolicy", "LRUPolicy", "HybridLocalityPolicy"]


class ReplacementPolicy(abc.ABC):
    """Chooses a victim way within a set."""

    @abc.abstractmethod
    def victim(self, blocks: List[CacheBlock], incoming_explicit: bool) -> Optional[int]:
        """Index of the way to evict for an incoming fill, or ``None`` if
        the fill must be rejected (hybrid policy: no evictable way)."""

    def on_access(self, blocks: List[CacheBlock], way: int, tick: int) -> None:
        """Update recency state after a hit or fill."""
        blocks[way].last_use = tick


def _lru_way(blocks: List[CacheBlock], candidates: List[int]) -> int:
    """The least-recently-used way among ``candidates`` (prefer invalid)."""
    for way in candidates:
        if not blocks[way].valid:
            return way
    return min(candidates, key=lambda w: blocks[w].last_use)


class LRUPolicy(ReplacementPolicy):
    """Plain least-recently-used replacement."""

    def victim(self, blocks: List[CacheBlock], incoming_explicit: bool) -> Optional[int]:
        return _lru_way(blocks, list(range(len(blocks))))


class HybridLocalityPolicy(ReplacementPolicy):
    """LRU with explicit-block protection (§II-B5).

    - An *implicit* fill may only evict invalid or implicit blocks; if the
      whole set is explicit, the fill is rejected (the requester bypasses
      this cache level), which cannot happen when ``max_explicit_ways`` is
      honoured.
    - An *explicit* fill prefers implicit victims and is capped at
      ``max_explicit_ways`` explicit blocks per set, keeping the explicitly
      managed region strictly smaller than the cache.
    """

    def __init__(self, ways: int, max_explicit_ways: Optional[int] = None) -> None:
        if ways < 2:
            raise ConfigError("hybrid policy needs at least 2 ways")
        if max_explicit_ways is None:
            max_explicit_ways = ways - 1
        if not 1 <= max_explicit_ways < ways:
            raise ConfigError(
                f"max_explicit_ways must be in [1, {ways - 1}], got {max_explicit_ways} "
                "(the explicit region must be smaller than the cache, paper §II-B5)"
            )
        self.ways = ways
        self.max_explicit_ways = max_explicit_ways
        self.protected_evictions_avoided = 0

    def victim(self, blocks: List[CacheBlock], incoming_explicit: bool) -> Optional[int]:
        if len(blocks) != self.ways:
            raise LocalityError(
                f"policy configured for {self.ways} ways, set has {len(blocks)}"
            )
        implicit_ways = [w for w, b in enumerate(blocks) if not (b.valid and b.explicit)]
        if incoming_explicit:
            explicit_count = sum(1 for b in blocks if b.valid and b.explicit)
            if explicit_count >= self.max_explicit_ways:
                # Evict the LRU *explicit* block: the explicit region is full.
                explicit_ways = [w for w, b in enumerate(blocks) if b.valid and b.explicit]
                return _lru_way(blocks, explicit_ways)
            if implicit_ways:
                return _lru_way(blocks, implicit_ways)
            return None
        # Implicit fill: explicit blocks are off limits.
        if not implicit_ways:
            self.protected_evictions_avoided += 1
            return None
        return _lru_way(blocks, implicit_ways)
