"""Miss-status holding registers.

The detailed simulator is trace-driven and services one request at a time,
so the MSHR file's role is (a) modelling *miss merging* — a miss to a line
that is already outstanding inside the miss window piggybacks on the
in-flight fill instead of paying the full miss penalty — and (b) bounding
memory-level parallelism for the core models' stall calculations.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict

from repro.errors import ConfigError

__all__ = ["MSHRFile"]


class MSHRFile:
    """Tracks lines with in-flight fills.

    ``lookup(line, now)`` returns the remaining latency if the line's fill
    is still in flight (a merged miss), else ``None``. ``allocate`` records
    a new outstanding fill completing at ``now + latency``; when the file
    is full the oldest entry is retired (its fill has long completed in a
    sequential trace-driven model).
    """

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise ConfigError("MSHR file needs at least one entry")
        self.entries = entries
        self._inflight: "OrderedDict[int, float]" = OrderedDict()
        self.merges = 0
        self.allocations = 0

    def lookup(self, line_addr: int, now: float) -> "float | None":
        """Remaining fill latency for a merged miss, or None."""
        done_at = self._inflight.get(line_addr)
        if done_at is None:
            return None
        if done_at <= now:
            del self._inflight[line_addr]
            return None
        self.merges += 1
        return done_at - now

    def allocate(self, line_addr: int, now: float, latency: float) -> None:
        """Record a new outstanding fill."""
        self.allocations += 1
        if line_addr in self._inflight:
            self._inflight.move_to_end(line_addr)
        while len(self._inflight) >= self.entries:
            self._inflight.popitem(last=False)
        self._inflight[line_addr] = now + latency

    @property
    def outstanding(self) -> int:
        return len(self._inflight)

    def stats(self) -> Dict[str, int]:
        return {"mshr_merges": self.merges, "mshr_allocations": self.allocations}

    def reset(self) -> None:
        self._inflight.clear()
        self.merges = 0
        self.allocations = 0
