"""Miss-status holding registers.

The detailed simulator is trace-driven and services one request at a time,
so the MSHR file's role is (a) modelling *miss merging* — a miss to a line
that is already outstanding inside the miss window piggybacks on the
in-flight fill instead of paying the full miss penalty — and (b) bounding
memory-level parallelism for the core models' stall calculations.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict

from repro.errors import ConfigError
from repro.obs.metrics import MetricRegistry

__all__ = ["MSHRFile"]


class MSHRFile:
    """Tracks lines with in-flight fills.

    ``lookup(line, now)`` returns the remaining latency if the line's fill
    is still in flight (a merged miss), else ``None``. ``allocate`` records
    a new outstanding fill completing at ``now + latency``; when the file
    is full the oldest entry is retired (its fill has long completed in a
    sequential trace-driven model).
    """

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise ConfigError("MSHR file needs at least one entry")
        self.entries = entries
        self._inflight: "OrderedDict[int, float]" = OrderedDict()
        self.metrics = MetricRegistry("mshr")
        self._merges = self.metrics.counter(
            "mshr_merges", unit="misses", description="misses merged onto in-flight fills"
        )
        self._allocations = self.metrics.counter(
            "mshr_allocations", unit="fills", description="new outstanding fills recorded"
        )

    def lookup(self, line_addr: int, now: float) -> "float | None":
        """Remaining fill latency for a merged miss, or None."""
        done_at = self._inflight.get(line_addr)
        if done_at is None:
            return None
        if done_at <= now:
            del self._inflight[line_addr]
            return None
        self._merges.inc()
        return done_at - now

    def allocate(self, line_addr: int, now: float, latency: float) -> None:
        """Record a new outstanding fill."""
        self._allocations.inc()
        if line_addr in self._inflight:
            self._inflight.move_to_end(line_addr)
        while len(self._inflight) >= self.entries:
            self._inflight.popitem(last=False)
        self._inflight[line_addr] = now + latency

    @property
    def outstanding(self) -> int:
        return len(self._inflight)

    @property
    def merges(self) -> int:
        return self._merges.value

    @property
    def allocations(self) -> int:
        return self._allocations.value

    def stats(self) -> Dict[str, int]:
        return self.metrics.as_dict()

    def reset(self) -> None:
        self._inflight.clear()
        self.metrics.reset()
