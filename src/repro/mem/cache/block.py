"""Cache block (line) state."""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.coherence.protocol import MESIState, reset_block_state

__all__ = ["CacheBlock"]


@dataclass(slots=True)
class CacheBlock:
    """One cache line's metadata.

    ``explicit`` is the locality bit of §II-B5: set when the block was
    placed by an explicit ``push`` (or an explicitly-managed allocation),
    and consulted by :class:`~repro.mem.cache.replacement.HybridLocalityPolicy`
    so implicitly cached data cannot evict explicitly managed data.

    ``state`` is the MESI coherence state, owned entirely by
    :mod:`repro.mem.coherence`: it stays ``INVALID`` unless a
    :class:`~repro.mem.coherence.api.CoherenceProtocol` manages the cache,
    and only that package may assign it (repo lint rule L004).
    """

    tag: int = -1
    valid: bool = False
    dirty: bool = False
    explicit: bool = False
    prefetched: bool = False
    last_use: int = 0
    state: MESIState = MESIState.INVALID

    def fill(self, tag: int, tick: int, explicit: bool, prefetched: bool = False) -> None:
        """Install a new line in this block."""
        self.tag = tag
        self.valid = True
        self.dirty = False
        self.explicit = explicit
        self.prefetched = prefetched
        self.last_use = tick
        reset_block_state(self)

    def invalidate(self) -> None:
        self.tag = -1
        self.valid = False
        self.dirty = False
        self.explicit = False
        self.prefetched = False
        reset_block_state(self)
