"""The set-associative cache model."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.config.system import CacheConfig
from repro.mem.cache.block import CacheBlock
from repro.mem.cache.mshr import MSHRFile
from repro.mem.cache.prefetch import NextLinePrefetcher
from repro.mem.cache.replacement import LRUPolicy, ReplacementPolicy
from repro.mem.level import MemoryLevel
from repro.mem.request import AccessResult, MemRequest
from repro.obs.metrics import MetricRegistry
from repro.units import Frequency

__all__ = ["Cache"]


class Cache(MemoryLevel):
    """A write-back/write-allocate set-associative cache.

    Timing is accounted in seconds: hit latency is ``config.latency`` cycles
    of ``frequency``; a miss adds the next level's access latency. Dirty
    evictions generate write-back traffic into the next level (counted, and
    charged to bandwidth statistics rather than the critical path, as in
    most trace-driven models).

    ``policy`` defaults to LRU; pass a
    :class:`~repro.mem.cache.replacement.HybridLocalityPolicy` for the
    §II-B5 hybrid shared cache. When the policy rejects a fill (no
    evictable way for an implicit fill), the access bypasses this level:
    the requester still gets its data from below, but nothing is installed.

    Lookup is O(1): alongside the per-set block arrays the cache keeps a
    per-set ``tag -> way`` dict (``_tags``), maintained at every fill and
    invalidation. The invariant is that ``_tags[index]`` maps exactly the
    valid blocks of set ``index``.
    """

    def __init__(
        self,
        config: CacheConfig,
        frequency: Frequency,
        next_level: Optional[MemoryLevel] = None,
        policy: Optional[ReplacementPolicy] = None,
        prefetcher: "Optional[NextLinePrefetcher]" = None,
    ) -> None:
        self.config = config
        self.name = config.name
        self.frequency = frequency
        self.next_level = next_level
        self.policy = policy or LRUPolicy()
        self.prefetcher = prefetcher
        total_sets = config.num_sets * config.tiles
        #: Sets are allocated lazily on first touch: an 8 MB L3 has ~130k
        #: blocks, and small runs touch a fraction of them — eager
        #: allocation would dominate machine-build time.
        self._sets: "List[Optional[List[CacheBlock]]]" = [None] * total_sets
        #: Per-set tag -> way index of every *valid* block (O(1) lookup).
        self._tags: List[Dict[int, int]] = [{} for _ in range(total_sets)]
        self._ways = config.ways
        self._num_sets = total_sets
        self._line = config.line_bytes
        self._mshr = MSHRFile(config.mshr_entries)
        self._tick = 0
        self._hit_latency = frequency.cycles_to_seconds(config.latency)
        #: Declared metrics — the uniform stats surface of this level.
        self.metrics = MetricRegistry(f"cache.{self.name}")
        self._hits = self.metrics.counter(
            "hits", unit="accesses", description="demand accesses hitting this level"
        )
        self._misses = self.metrics.counter(
            "misses", unit="accesses", description="demand accesses missing this level"
        )
        self._evictions = self.metrics.counter(
            "evictions", unit="lines", description="valid lines displaced by fills"
        )
        self._writebacks = self.metrics.counter(
            "writebacks", unit="lines", description="dirty lines written back below"
        )
        self._bypasses = self.metrics.counter(
            "bypasses", unit="fills", description="fills rejected by the policy"
        )
        self._invalidations = self.metrics.counter(
            "invalidations", unit="lines", description="coherence invalidations"
        )
        self._flushes = self.metrics.counter(
            "flushes", unit="events", description="whole-cache flush operations"
        )
        # Bound methods hoisted for the access fast path.
        self._hits_inc = self._hits.inc
        self._misses_inc = self._misses.inc

    # -- geometry ---------------------------------------------------------

    def _index_tag(self, addr: int) -> "tuple[int, int]":
        line = addr // self._line
        return line % self._num_sets, line // self._num_sets

    @property
    def geometry(self) -> "tuple[int, int]":
        """``(line_bytes, num_sets)`` — the address decomposition parameters.

        Two caches with equal geometry map any address to the same
        ``(index, tag)`` pair, which is what lets the batched sweep loops
        decompose an address once and probe N per-point caches with it
        (:meth:`access_latency_located`).
        """
        return self._line, self._num_sets

    def _find(self, index: int, tag: int) -> Optional[int]:
        return self._tags[index].get(tag)

    def _blocks(self, index: int) -> List[CacheBlock]:
        """The block array of set ``index``, allocating it on first touch."""
        blocks = self._sets[index]
        if blocks is None:
            blocks = self._sets[index] = [CacheBlock() for _ in range(self._ways)]
        return blocks

    @property
    def hit_latency(self) -> float:
        """Hit latency in seconds."""
        return self._hit_latency

    def _write_back(self, index: int, block: CacheBlock) -> None:
        """Send a dirty line's write-back traffic into the next level.

        Off the critical path (the returned latency is discarded), but the
        traffic must flow so lower-level byte/access statistics see it —
        software-coherence flushes otherwise under-report.
        """
        self._writebacks.inc()
        if self.next_level is None:
            return
        addr = (block.tag * self._num_sets + index) * self._line
        self.next_level.access(
            MemRequest(addr=addr, size=self._line, is_write=True)
        )

    # -- the MemoryLevel interface ----------------------------------------

    def access(self, request: MemRequest) -> AccessResult:
        """Service a request; recurse into the next level on a miss."""
        self._tick += 1
        line = request.addr // self._line
        index = line % self._num_sets
        tag = line // self._num_sets
        way = self._tags[index].get(tag)
        if way is not None:
            self._hit(index, way, request.is_write, request.explicit)
            return AccessResult(
                latency=self._hit_latency, hit_level=self.name, was_hit=True
            )
        return self._miss(request, index, tag)

    def access_latency(
        self,
        addr: int,
        size: int,
        is_write: bool,
        pu,
        explicit: bool = False,
        shared_space: bool = False,
        issue_time: float = 0.0,
    ) -> float:
        """Scalar fast path: a hit allocates no request/result objects.

        Behaviourally identical to :meth:`access` — same bookkeeping, same
        latency — but the common case (a top-level hit) touches only plain
        ints and dicts, which is what makes the compiled core loops cheap.
        """
        self._tick += 1
        line = addr // self._line
        index = line % self._num_sets
        tag = line // self._num_sets
        way = self._tags[index].get(tag)
        if way is not None:
            self._hit(index, way, is_write, explicit)
            return self._hit_latency
        return self._miss(
            MemRequest(
                addr=addr,
                size=size,
                is_write=is_write,
                pu=pu,
                explicit=explicit,
                shared_space=shared_space,
                issue_time=issue_time,
            ),
            index,
            tag,
        ).latency

    def access_latency_located(
        self,
        index: int,
        tag: int,
        addr: int,
        size: int,
        is_write: bool,
        pu,
        explicit: bool = False,
        shared_space: bool = False,
        issue_time: float = 0.0,
    ) -> float:
        """:meth:`access_latency` with the set ``index``/``tag`` precomputed.

        The batched design-point sweep decomposes each memory event's
        address once and probes every per-point cache with the shared
        ``(index, tag)`` pair — valid whenever the caches' :attr:`geometry`
        matches. Bookkeeping and latency are identical to
        :meth:`access_latency` on the same address.
        """
        self._tick += 1
        way = self._tags[index].get(tag)
        if way is not None:
            self._hit(index, way, is_write, explicit)
            return self._hit_latency
        return self._miss(
            MemRequest(
                addr=addr,
                size=size,
                is_write=is_write,
                pu=pu,
                explicit=explicit,
                shared_space=shared_space,
                issue_time=issue_time,
            ),
            index,
            tag,
        ).latency

    def _hit(self, index: int, way: int, is_write: bool, explicit: bool) -> None:
        """Demand-hit bookkeeping shared by both access entry points."""
        self._hits_inc()
        blocks = self._sets[index]
        block = blocks[way]
        if block.prefetched:
            block.prefetched = False
            if self.prefetcher is not None:
                self.prefetcher.record_useful()
        if is_write:
            block.dirty = True
        if explicit:
            block.explicit = True
        self.policy.on_access(blocks, way, self._tick)

    def _miss(self, request: MemRequest, index: int, tag: int) -> AccessResult:
        """Demand-miss path: MSHR merge, fetch from below, fill, prefetch."""
        self._misses_inc()
        # Merged miss? Pay only the residual fill time.
        line_addr = request.line_addr(self._line)
        merged = self._mshr.lookup(line_addr, request.issue_time)
        if merged is not None:
            return AccessResult(
                latency=self._hit_latency + merged, hit_level=self.name, was_hit=False
            )

        if self.next_level is None:
            raise SimulationError(f"{self.name}: miss with no next level")
        below = self.next_level.access(
            request.with_time(request.issue_time + self._hit_latency)
        )
        latency = self._hit_latency + below.latency
        self._mshr.allocate(line_addr, request.issue_time, latency)
        self._fill(index, tag, request)
        if self.prefetcher is not None:
            self._issue_prefetches(line_addr, request)
        return AccessResult(latency=latency, hit_level=below.hit_level, was_hit=False)

    def _issue_prefetches(self, miss_line_addr: int, request: MemRequest) -> None:
        """Install the prefetcher's chosen lines off the critical path.

        Prefetch fills fetch through the next level (traffic is counted
        there) but add no latency to the demand request; they insert as
        implicit blocks, so they never displace protected explicit lines.
        """
        for line_addr in self.prefetcher.lines_to_prefetch(
            miss_line_addr, self._line
        ):
            index, tag = self._index_tag(line_addr)
            tags = self._tags[index]
            if tag in tags:
                continue
            if self.next_level is not None:
                self.next_level.access(
                    MemRequest(
                        addr=line_addr,
                        size=self._line,
                        pu=request.pu,
                        issue_time=request.issue_time,
                    )
                )
            blocks = self._blocks(index)
            victim = self.policy.victim(blocks, False)
            if victim is None:
                self._bypasses.inc()
                continue
            block = blocks[victim]
            if block.valid:
                self._evictions.inc()
                if block.dirty and self.config.write_back:
                    self._writebacks.inc()
                del tags[block.tag]
            block.fill(tag, self._tick, explicit=False, prefetched=True)
            tags[tag] = victim

    def _fill(self, index: int, tag: int, request: MemRequest) -> None:
        """Install the fetched line, honouring the replacement policy."""
        if not self.config.write_allocate and request.is_write:
            return
        blocks = self._blocks(index)
        victim = self.policy.victim(blocks, request.explicit)
        if victim is None:
            self._bypasses.inc()
            return
        block = blocks[victim]
        tags = self._tags[index]
        if block.valid:
            self._evictions.inc()
            if block.dirty and self.config.write_back and self.next_level is not None:
                self._writebacks.inc()
            del tags[block.tag]
        block.fill(tag, self._tick, request.explicit)
        tags[tag] = victim
        if request.is_write:
            block.dirty = True
        self.policy.on_access(blocks, victim, self._tick)

    # -- explicit locality management --------------------------------------

    def push_line(self, addr: int) -> None:
        """Explicitly place the line containing ``addr`` (the §II-B ``push``).

        The line is installed with its locality bit set, without charging a
        demand-miss latency (push is a hint executed off the critical path).
        """
        self._tick += 1
        index, tag = self._index_tag(addr)
        tags = self._tags[index]
        way = tags.get(tag)
        blocks = self._blocks(index)
        if way is not None:
            blocks[way].explicit = True
            self.policy.on_access(blocks, way, self._tick)
            return
        victim = self.policy.victim(blocks, True)
        if victim is None:
            self._bypasses.inc()
            return
        block = blocks[victim]
        if block.valid:
            self._evictions.inc()
            if block.dirty and self.config.write_back:
                self._write_back(index, block)
            del tags[block.tag]
        block.fill(tag, self._tick, explicit=True)
        tags[tag] = victim

    def contains(self, addr: int) -> bool:
        """Whether the line holding ``addr`` is resident."""
        index, tag = self._index_tag(addr)
        return tag in self._tags[index]

    def block_for(self, addr: int) -> Optional[CacheBlock]:
        """The resident block holding ``addr``, or ``None``.

        A read-only lookup for the coherence layer: the protocol package
        mirrors its per-line MESI state onto the block it returns (block
        state mutation itself is confined to ``repro.mem.coherence``,
        lint rule L004).
        """
        index, tag = self._index_tag(addr)
        way = self._tags[index].get(tag)
        if way is None:
            return None
        return self._sets[index][way]

    def is_explicit(self, addr: int) -> bool:
        """Whether the resident line holding ``addr`` carries the locality bit."""
        index, tag = self._index_tag(addr)
        way = self._tags[index].get(tag)
        return way is not None and self._sets[index][way].explicit

    def invalidate_line(self, addr: int) -> bool:
        """Invalidate one line (coherence); returns True if it was present."""
        index, tag = self._index_tag(addr)
        way = self._tags[index].get(tag)
        if way is None:
            return False
        self._sets[index][way].invalidate()
        del self._tags[index][tag]
        self._invalidations.inc()
        return True

    def flush(self) -> int:
        """Write back and invalidate everything (software coherence).

        Returns the number of dirty lines written back.
        """
        dirty = 0
        for index, blocks in enumerate(self._sets):
            if blocks is None:
                continue
            for block in blocks:
                if block.valid:
                    if block.dirty:
                        dirty += 1
                        self._write_back(index, block)
                    block.invalidate()
            self._tags[index].clear()
        self._flushes.inc()
        return dirty

    # -- statistics ---------------------------------------------------------

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    @property
    def writebacks(self) -> int:
        return self._writebacks.value

    @property
    def bypasses(self) -> int:
        return self._bypasses.value

    @property
    def invalidations(self) -> int:
        return self._invalidations.value

    @property
    def flushes(self) -> int:
        return self._flushes.value

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def stats(self) -> Dict[str, int]:
        data = self.metrics.as_dict()
        data.update(self._mshr.stats())
        if self.prefetcher is not None:
            data.update(self.prefetcher.stats())
        return data

    def reset_stats(self) -> None:
        self.metrics.reset()
        self._mshr.reset()
        if self.prefetcher is not None:
            self.prefetcher.reset()
