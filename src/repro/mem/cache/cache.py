"""The set-associative cache model."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ConfigError, SimulationError
from repro.config.system import CacheConfig
from repro.mem.cache.block import CacheBlock
from repro.mem.cache.mshr import MSHRFile
from repro.mem.cache.prefetch import NextLinePrefetcher
from repro.mem.cache.replacement import LRUPolicy, ReplacementPolicy
from repro.mem.level import MemoryLevel
from repro.mem.request import AccessResult, MemRequest
from repro.obs.metrics import MetricRegistry
from repro.units import Frequency

__all__ = ["Cache"]


class Cache(MemoryLevel):
    """A write-back/write-allocate set-associative cache.

    Timing is accounted in seconds: hit latency is ``config.latency`` cycles
    of ``frequency``; a miss adds the next level's access latency. Dirty
    evictions generate write-back traffic into the next level (counted, and
    charged to bandwidth statistics rather than the critical path, as in
    most trace-driven models).

    ``policy`` defaults to LRU; pass a
    :class:`~repro.mem.cache.replacement.HybridLocalityPolicy` for the
    §II-B5 hybrid shared cache. When the policy rejects a fill (no
    evictable way for an implicit fill), the access bypasses this level:
    the requester still gets its data from below, but nothing is installed.
    """

    def __init__(
        self,
        config: CacheConfig,
        frequency: Frequency,
        next_level: Optional[MemoryLevel] = None,
        policy: Optional[ReplacementPolicy] = None,
        prefetcher: "Optional[NextLinePrefetcher]" = None,
    ) -> None:
        self.config = config
        self.name = config.name
        self.frequency = frequency
        self.next_level = next_level
        self.policy = policy or LRUPolicy()
        self.prefetcher = prefetcher
        total_sets = config.num_sets * config.tiles
        self._sets: List[List[CacheBlock]] = [
            [CacheBlock() for _ in range(config.ways)] for _ in range(total_sets)
        ]
        self._num_sets = total_sets
        self._line = config.line_bytes
        self._mshr = MSHRFile(config.mshr_entries)
        self._tick = 0
        #: Declared metrics — the uniform stats surface of this level.
        self.metrics = MetricRegistry(f"cache.{self.name}")
        self._hits = self.metrics.counter(
            "hits", unit="accesses", description="demand accesses hitting this level"
        )
        self._misses = self.metrics.counter(
            "misses", unit="accesses", description="demand accesses missing this level"
        )
        self._evictions = self.metrics.counter(
            "evictions", unit="lines", description="valid lines displaced by fills"
        )
        self._writebacks = self.metrics.counter(
            "writebacks", unit="lines", description="dirty lines written back below"
        )
        self._bypasses = self.metrics.counter(
            "bypasses", unit="fills", description="fills rejected by the policy"
        )
        self._invalidations = self.metrics.counter(
            "invalidations", unit="lines", description="coherence invalidations"
        )
        self._flushes = self.metrics.counter(
            "flushes", unit="events", description="whole-cache flush operations"
        )

    # -- geometry ---------------------------------------------------------

    def _index_tag(self, addr: int) -> "tuple[int, int]":
        line = addr // self._line
        return line % self._num_sets, line // self._num_sets

    def _find(self, index: int, tag: int) -> Optional[int]:
        for way, block in enumerate(self._sets[index]):
            if block.valid and block.tag == tag:
                return way
        return None

    @property
    def hit_latency(self) -> float:
        """Hit latency in seconds."""
        return self.frequency.cycles_to_seconds(self.config.latency)

    def _write_back(self, index: int, block: CacheBlock) -> None:
        """Send a dirty line's write-back traffic into the next level.

        Off the critical path (the returned latency is discarded), but the
        traffic must flow so lower-level byte/access statistics see it —
        software-coherence flushes otherwise under-report.
        """
        self._writebacks.inc()
        if self.next_level is None:
            return
        addr = (block.tag * self._num_sets + index) * self._line
        self.next_level.access(
            MemRequest(addr=addr, size=self._line, is_write=True)
        )

    # -- the MemoryLevel interface ----------------------------------------

    def access(self, request: MemRequest) -> AccessResult:
        """Service a request; recurse into the next level on a miss."""
        self._tick += 1
        index, tag = self._index_tag(request.addr)
        blocks = self._sets[index]
        way = self._find(index, tag)
        if way is not None:
            self._hits.inc()
            block = blocks[way]
            if block.prefetched:
                block.prefetched = False
                if self.prefetcher is not None:
                    self.prefetcher.record_useful()
            if request.is_write:
                block.dirty = True
            if request.explicit:
                block.explicit = True
            self.policy.on_access(blocks, way, self._tick)
            return AccessResult(latency=self.hit_latency, hit_level=self.name, was_hit=True)

        self._misses.inc()
        # Merged miss? Pay only the residual fill time.
        line_addr = request.line_addr(self._line)
        merged = self._mshr.lookup(line_addr, request.issue_time)
        if merged is not None:
            return AccessResult(
                latency=self.hit_latency + merged, hit_level=self.name, was_hit=False
            )

        if self.next_level is None:
            raise SimulationError(f"{self.name}: miss with no next level")
        below = self.next_level.access(
            request.with_time(request.issue_time + self.hit_latency)
        )
        latency = self.hit_latency + below.latency
        self._mshr.allocate(line_addr, request.issue_time, latency)
        self._fill(index, tag, request)
        if self.prefetcher is not None:
            self._issue_prefetches(line_addr, request)
        return AccessResult(latency=latency, hit_level=below.hit_level, was_hit=False)

    def _issue_prefetches(self, miss_line_addr: int, request: MemRequest) -> None:
        """Install the prefetcher's chosen lines off the critical path.

        Prefetch fills fetch through the next level (traffic is counted
        there) but add no latency to the demand request; they insert as
        implicit blocks, so they never displace protected explicit lines.
        """
        for line_addr in self.prefetcher.lines_to_prefetch(
            miss_line_addr, self._line
        ):
            index, tag = self._index_tag(line_addr)
            if self._find(index, tag) is not None:
                continue
            if self.next_level is not None:
                self.next_level.access(
                    MemRequest(
                        addr=line_addr,
                        size=self._line,
                        pu=request.pu,
                        issue_time=request.issue_time,
                    )
                )
            blocks = self._sets[index]
            victim = self.policy.victim(blocks, False)
            if victim is None:
                self._bypasses.inc()
                continue
            block = blocks[victim]
            if block.valid:
                self._evictions.inc()
                if block.dirty and self.config.write_back:
                    self._writebacks.inc()
            block.fill(tag, self._tick, explicit=False, prefetched=True)

    def _fill(self, index: int, tag: int, request: MemRequest) -> None:
        """Install the fetched line, honouring the replacement policy."""
        if not self.config.write_allocate and request.is_write:
            return
        blocks = self._sets[index]
        victim = self.policy.victim(blocks, request.explicit)
        if victim is None:
            self._bypasses.inc()
            return
        block = blocks[victim]
        if block.valid:
            self._evictions.inc()
            if block.dirty and self.config.write_back and self.next_level is not None:
                self._writebacks.inc()
        block.fill(tag, self._tick, request.explicit)
        if request.is_write:
            block.dirty = True
        self.policy.on_access(blocks, victim, self._tick)

    # -- explicit locality management --------------------------------------

    def push_line(self, addr: int) -> None:
        """Explicitly place the line containing ``addr`` (the §II-B ``push``).

        The line is installed with its locality bit set, without charging a
        demand-miss latency (push is a hint executed off the critical path).
        """
        self._tick += 1
        index, tag = self._index_tag(addr)
        way = self._find(index, tag)
        blocks = self._sets[index]
        if way is not None:
            blocks[way].explicit = True
            self.policy.on_access(blocks, way, self._tick)
            return
        victim = self.policy.victim(blocks, True)
        if victim is None:
            self._bypasses.inc()
            return
        block = blocks[victim]
        if block.valid:
            self._evictions.inc()
            if block.dirty and self.config.write_back:
                self._write_back(index, block)
        block.fill(tag, self._tick, explicit=True)

    def contains(self, addr: int) -> bool:
        """Whether the line holding ``addr`` is resident."""
        index, tag = self._index_tag(addr)
        return self._find(index, tag) is not None

    def is_explicit(self, addr: int) -> bool:
        """Whether the resident line holding ``addr`` carries the locality bit."""
        index, tag = self._index_tag(addr)
        way = self._find(index, tag)
        return way is not None and self._sets[index][way].explicit

    def invalidate_line(self, addr: int) -> bool:
        """Invalidate one line (coherence); returns True if it was present."""
        index, tag = self._index_tag(addr)
        way = self._find(index, tag)
        if way is None:
            return False
        self._sets[index][way].invalidate()
        self._invalidations.inc()
        return True

    def flush(self) -> int:
        """Write back and invalidate everything (software coherence).

        Returns the number of dirty lines written back.
        """
        dirty = 0
        for index, blocks in enumerate(self._sets):
            for block in blocks:
                if block.valid:
                    if block.dirty:
                        dirty += 1
                        self._write_back(index, block)
                    block.invalidate()
        self._flushes.inc()
        return dirty

    # -- statistics ---------------------------------------------------------

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    @property
    def writebacks(self) -> int:
        return self._writebacks.value

    @property
    def bypasses(self) -> int:
        return self._bypasses.value

    @property
    def invalidations(self) -> int:
        return self._invalidations.value

    @property
    def flushes(self) -> int:
        return self._flushes.value

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def stats(self) -> Dict[str, int]:
        data = self.metrics.as_dict()
        data.update(self._mshr.stats())
        if self.prefetcher is not None:
            data.update(self.prefetcher.stats())
        return data

    def reset_stats(self) -> None:
        self.metrics.reset()
        self._mshr.reset()
        if self.prefetcher is not None:
            self.prefetcher.reset()
