"""Set-associative caches with MSHRs and locality-aware replacement."""

from repro.mem.cache.block import CacheBlock
from repro.mem.cache.replacement import (
    HybridLocalityPolicy,
    LRUPolicy,
    ReplacementPolicy,
)
from repro.mem.cache.mshr import MSHRFile
from repro.mem.cache.prefetch import NextLinePrefetcher
from repro.mem.cache.cache import Cache
from repro.mem.cache.hierarchy import build_cpu_hierarchy, build_gpu_hierarchy

__all__ = [
    "CacheBlock",
    "ReplacementPolicy",
    "LRUPolicy",
    "HybridLocalityPolicy",
    "MSHRFile",
    "NextLinePrefetcher",
    "Cache",
    "build_cpu_hierarchy",
    "build_gpu_hierarchy",
]
