"""Sequential (next-N-line) prefetching.

The six kernels are streaming workloads — exactly the access pattern a
next-line prefetcher converts from per-line demand misses into hits. The
prefetcher watches demand misses and installs the following ``degree``
lines off the critical path; prefetched blocks are tagged so accuracy
(useful vs useless prefetches) is measurable, and fills go through the
cache's replacement policy as *implicit* insertions, so they can never
displace §II-B5-protected explicit blocks.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigError
from repro.obs.metrics import MetricRegistry

__all__ = ["NextLinePrefetcher"]


class NextLinePrefetcher:
    """Prefetches the ``degree`` lines following each demand miss."""

    def __init__(self, degree: int = 1) -> None:
        if degree < 1:
            raise ConfigError("prefetch degree must be >= 1")
        self.degree = degree
        self.metrics = MetricRegistry("prefetcher")
        self._issued = self.metrics.counter(
            "prefetches_issued", unit="lines", description="prefetch fills issued"
        )
        self._useful = self.metrics.counter(
            "prefetches_useful",
            unit="lines",
            description="prefetched blocks later hit by demand accesses",
        )

    def lines_to_prefetch(self, miss_line_addr: int, line_bytes: int) -> "list[int]":
        """Line addresses to install after a demand miss."""
        self._issued.inc(self.degree)
        return [
            miss_line_addr + i * line_bytes for i in range(1, self.degree + 1)
        ]

    def record_useful(self) -> None:
        """A demand access hit a prefetched block."""
        self._useful.inc()

    def reset(self) -> None:
        """Zero the issued/useful counters (cache stats reset)."""
        self.metrics.reset()

    @property
    def issued(self) -> int:
        return self._issued.value

    @property
    def useful(self) -> int:
        return self._useful.value

    @property
    def accuracy(self) -> float:
        return self.useful / self.issued if self.issued else 0.0

    def stats(self) -> Dict[str, float]:
        data = self.metrics.as_dict()
        data["prefetch_accuracy"] = self.accuracy
        return data
