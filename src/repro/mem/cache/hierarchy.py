"""Builders for the per-PU private cache hierarchies of Table II."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.config.system import CpuConfig, GpuConfig
from repro.mem.cache.cache import Cache
from repro.mem.cache.prefetch import NextLinePrefetcher
from repro.mem.cache.replacement import ReplacementPolicy
from repro.mem.level import MemoryLevel

__all__ = ["build_cpu_hierarchy", "build_gpu_hierarchy"]


def build_cpu_hierarchy(
    config: CpuConfig,
    below: MemoryLevel,
    l1_policy: Optional[ReplacementPolicy] = None,
    l1_prefetcher: Optional[NextLinePrefetcher] = None,
) -> Tuple[Cache, Cache]:
    """Build the CPU's private L1D -> L2 chain on top of ``below``.

    Returns ``(l1d, l2)``; the instruction cache is modeled separately by
    the core front-end and does not participate in the data hierarchy.
    """
    l2 = Cache(config.l2, config.frequency, next_level=below)
    l1d = Cache(
        config.l1d,
        config.frequency,
        next_level=l2,
        policy=l1_policy,
        prefetcher=l1_prefetcher,
    )
    return l1d, l2


def build_gpu_hierarchy(
    config: GpuConfig,
    below: MemoryLevel,
    l1_policy: Optional[ReplacementPolicy] = None,
    l1_prefetcher: Optional[NextLinePrefetcher] = None,
) -> Cache:
    """Build the GPU's private L1D on top of ``below``.

    The baseline GPU has no L2 (Table II); its software-managed cache is a
    scratchpad handled by the GPU core model, not part of the demand-fetch
    hierarchy.
    """
    return Cache(
        config.l1d,
        config.frequency,
        next_level=below,
        policy=l1_policy,
        prefetcher=l1_prefetcher,
    )
