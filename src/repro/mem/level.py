"""The common interface every memory level implements."""

from __future__ import annotations

import abc
from typing import Dict

from repro.errors import SimulationError
from repro.mem.request import AccessResult, MemRequest

__all__ = ["MemoryLevel", "FixedLatencyMemory"]


class MemoryLevel(abc.ABC):
    """Anything a request can be sent into: cache, link, DRAM, directory.

    Levels account time in **seconds** so components clocked differently
    (CPU caches at 3.5 GHz, DRAM at 667 MHz) compose without unit bugs.
    """

    name: str = "memory-level"

    @abc.abstractmethod
    def access(self, request: MemRequest) -> AccessResult:
        """Service ``request``, returning total latency from this level down."""

    def access_latency(
        self,
        addr: int,
        size: int,
        is_write: bool,
        pu,
        explicit: bool = False,
        shared_space: bool = False,
        issue_time: float = 0.0,
    ) -> float:
        """Service an access described by scalars, returning only latency.

        The compiled core loops call this instead of :meth:`access` so that
        levels with a cheap common case (an L1 hit) can skip constructing
        :class:`MemRequest`/:class:`AccessResult` objects entirely. The
        default simply wraps :meth:`access`, so subclasses only override it
        when they have a genuine fast path — behaviour must stay identical.
        """
        return self.access(
            MemRequest(
                addr=addr,
                size=size,
                is_write=is_write,
                pu=pu,
                explicit=explicit,
                shared_space=shared_space,
                issue_time=issue_time,
            )
        ).latency

    def reset_stats(self) -> None:
        """Clear accumulated counters (default: nothing to clear)."""

    def stats(self) -> Dict[str, int]:
        """Accumulated counters for reports (default: empty)."""
        return {}


class FixedLatencyMemory(MemoryLevel):
    """A backing store with a constant access latency.

    Used as the bottom of small test hierarchies and as the 'ideal memory'
    in analytic cross-checks.
    """

    def __init__(self, latency: float, name: str = "fixed-memory") -> None:
        if latency < 0:
            raise SimulationError("latency must be non-negative")
        self.latency = latency
        self.name = name
        self._accesses = 0
        self._reads = 0
        self._writes = 0

    def access(self, request: MemRequest) -> AccessResult:
        self._accesses += 1
        if request.is_write:
            self._writes += 1
        else:
            self._reads += 1
        return AccessResult(latency=self.latency, hit_level=self.name, was_hit=True)

    def reset_stats(self) -> None:
        self._accesses = self._reads = self._writes = 0

    def stats(self) -> Dict[str, int]:
        return {
            "accesses": self._accesses,
            "reads": self._reads,
            "writes": self._writes,
        }
