"""Coherence protocols as pluggable per-access traffic models.

The machine model (:mod:`repro.sim.system`) consults one
:class:`CoherenceProtocol` on every shared-window access and applies the
returned :class:`CoherenceAction`: invalidating peer caches and charging
protocol messages as interconnect traversals on the critical path. Three
variants cover the design axis:

- ``none`` — no per-access protocol (:func:`protocol_for` returns ``None``
  and the machine wires the cores straight to their caches; this is the
  default and is byte-identical to the pre-protocol model);
- ``snoop`` (:class:`~repro.mem.coherence.snoop.SnoopBus`) — broadcast
  probes: every cold access announces itself to the peer, so snooping pays
  per-access broadcast traffic but resolves conflicts in a single bus
  transaction;
- ``directory`` (:class:`~repro.mem.coherence.directory.Directory`) —
  indirection through a per-line sharer directory: cold accesses pay a
  lookup and conflicting writes pay explicit invalidate/ack message pairs.

Both stateful variants drive the same pure MESI transition functions
(:mod:`repro.mem.coherence.protocol`) over the same per-``(line, PU)``
bookkeeping, so they disagree only in *message* cost — which is exactly
the quantity the design-space sweep compares. All protocol counters are
declared on a :mod:`repro.obs` :class:`~repro.obs.metrics.MetricRegistry`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from repro.errors import ConfigError, SimulationError
from repro.mem.coherence.protocol import MESIState, next_state, remote_state_on_snoop
from repro.obs.metrics import MetricRegistry
from repro.taxonomy import CoherenceKind, ProcessingUnit

__all__ = [
    "CoherenceAction",
    "CoherenceProtocol",
    "NullProtocol",
    "PROTOCOL_KINDS",
    "protocol_for",
]

#: The protocol variants of the coherence axis, in sweep order.
PROTOCOL_KINDS: Tuple[str, ...] = ("none", "snoop", "directory")


@dataclass(frozen=True)
class CoherenceAction:
    """What the system must do for one shared-space access.

    ``invalidate_peer``: remove the peer PU's private copies of the line.
    ``extra_latency_messages``: protocol messages on the critical path
    (each costs one interconnect traversal).
    """

    invalidate_peer: bool
    extra_latency_messages: int


class CoherenceProtocol:
    """Per-line MESI bookkeeping shared by the stateful protocol variants.

    Subclasses implement :meth:`access` — the per-access message-cost
    model — on top of :meth:`_apply`, which performs the (variant-agnostic)
    MESI transition for both PUs. The protocol is *not* a
    :class:`~repro.mem.level.MemoryLevel`: the system model consults it on
    each shared-space access and applies the returned action.
    """

    #: The axis value this protocol implements ("snoop" or "directory").
    kind: str = "none"

    def __init__(self, line_bytes: int = 64) -> None:
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise SimulationError("line size must be a positive power of two")
        self.line_bytes = line_bytes
        self._state: Dict[Tuple[int, ProcessingUnit], MESIState] = {}
        self.metrics = MetricRegistry(f"coherence.{self.kind}")

    # -- MESI bookkeeping ---------------------------------------------------

    def _line(self, addr: int) -> int:
        return addr & ~(self.line_bytes - 1)

    def state_of(self, addr: int, pu: ProcessingUnit) -> MESIState:
        return self._state.get((self._line(addr), pu), MESIState.INVALID)

    def _apply(
        self,
        line: int,
        pu: ProcessingUnit,
        peer: ProcessingUnit,
        is_write: bool,
        local: MESIState,
        remote: MESIState,
        others: bool,
    ) -> Tuple[MESIState, bool]:
        """Transition both PUs' states for one access.

        Returns ``(new_local_state, invalidate_peer)``.
        """
        new_local, invalidate = next_state(local, is_write, others)
        self._state[(line, pu)] = new_local
        if others:
            new_remote = remote_state_on_snoop(remote, is_write)
            if new_remote is MESIState.INVALID:
                self._state.pop((line, peer), None)
            else:
                self._state[(line, peer)] = new_remote
        return new_local, invalidate

    def access(self, addr: int, pu: ProcessingUnit, is_write: bool) -> CoherenceAction:
        """Record an access and return the required action."""
        raise NotImplementedError

    def sharers(self, addr: int) -> Tuple[ProcessingUnit, ...]:
        line = self._line(addr)
        return tuple(
            pu
            for pu in ProcessingUnit
            if self._state.get((line, pu), MESIState.INVALID) is not MESIState.INVALID
        )

    def check_invariants(self) -> None:
        """Raise if the single-writer invariant is violated anywhere."""
        lines: Dict[int, list] = {}
        for (line, _pu), state in self._state.items():
            lines.setdefault(line, []).append(state)
        for line, states in lines.items():
            writers = sum(
                1 for s in states if s in (MESIState.MODIFIED, MESIState.EXCLUSIVE)
            )
            if writers > 1 or (writers == 1 and len(states) > 1):
                raise SimulationError(
                    f"coherence invariant violated on line {line:#x}: {states}"
                )

    # -- statistics ---------------------------------------------------------

    @property
    def tracked_lines(self) -> int:
        return len({line for (line, _pu) in self._state})

    def stats(self) -> Dict[str, int]:
        data = self.metrics.as_dict()
        data["tracked_lines"] = self.tracked_lines
        return data

    def reset_stats(self) -> None:
        """Zero every declared counter (line-state bookkeeping is kept)."""
        self.metrics.reset()


class NullProtocol(CoherenceProtocol):
    """The ``none`` end of the axis: no traffic, no state, no cost.

    The machine builder never consults it (``coherence="none"`` simply
    wires no front), but sweeps and tests use it as a uniform stand-in.
    """

    kind = "none"

    _NO_ACTION = CoherenceAction(invalidate_peer=False, extra_latency_messages=0)

    def access(self, addr: int, pu: ProcessingUnit, is_write: bool) -> CoherenceAction:
        return self._NO_ACTION


def resolve_protocol_kind(
    coherence: "Union[str, CoherenceKind, None]",
) -> str:
    """Normalize an axis value to one of :data:`PROTOCOL_KINDS`.

    Accepts ``None`` (→ ``"none"``), a protocol-kind string, or a
    :class:`~repro.taxonomy.CoherenceKind` (hardware kinds map to their
    protocol; software kinds map to ``"none"`` — they pay at
    synchronization points, not per access).
    """
    if coherence is None:
        return "none"
    if isinstance(coherence, CoherenceKind):
        return coherence.protocol
    kind = str(coherence)
    if kind not in PROTOCOL_KINDS:
        raise ConfigError(
            f"unknown coherence protocol {kind!r}; "
            f"expected one of {', '.join(PROTOCOL_KINDS)}"
        )
    return kind


def protocol_for(
    coherence: "Union[str, CoherenceKind, None]", line_bytes: int = 64
) -> Optional[CoherenceProtocol]:
    """Build the protocol instance for an axis value, or ``None`` for
    ``"none"`` (the machine then runs with no coherent front at all)."""
    from repro.mem.coherence.directory import Directory
    from repro.mem.coherence.snoop import SnoopBus

    kind = resolve_protocol_kind(coherence)
    if kind == "none":
        return None
    if kind == "snoop":
        return SnoopBus(line_bytes)
    return Directory(line_bytes)
