"""Coherence substrates: MESI protocol state machine, a directory over the
shared cache, and a software-coherence (runtime flush) alternative."""

from repro.mem.coherence.protocol import (
    MESIState,
    ProtocolError,
    next_state,
    remote_state_on_snoop,
)
from repro.mem.coherence.directory import CoherenceAction, Directory, SoftwareCoherence

__all__ = [
    "MESIState",
    "ProtocolError",
    "next_state",
    "remote_state_on_snoop",
    "CoherenceAction",
    "Directory",
    "SoftwareCoherence",
]
