"""Coherence substrates: MESI protocol state machine, the pluggable
protocol variants of the coherence axis (``none | snoop | directory``),
and a software-coherence (runtime flush) alternative."""

from repro.mem.coherence.protocol import (
    MESIState,
    ProtocolError,
    next_state,
    remote_state_on_snoop,
    reset_block_state,
    set_block_state,
)
from repro.mem.coherence.api import (
    PROTOCOL_KINDS,
    CoherenceAction,
    CoherenceProtocol,
    NullProtocol,
    protocol_for,
    resolve_protocol_kind,
)
from repro.mem.coherence.directory import Directory, SoftwareCoherence
from repro.mem.coherence.snoop import SnoopBus

__all__ = [
    "MESIState",
    "ProtocolError",
    "next_state",
    "remote_state_on_snoop",
    "set_block_state",
    "reset_block_state",
    "PROTOCOL_KINDS",
    "CoherenceAction",
    "CoherenceProtocol",
    "NullProtocol",
    "protocol_for",
    "resolve_protocol_kind",
    "Directory",
    "SoftwareCoherence",
    "SnoopBus",
]
