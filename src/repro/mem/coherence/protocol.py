"""MESI cache-coherence protocol as a pure state machine.

The directory (:mod:`repro.mem.coherence.directory`) drives these
transitions per line and per PU. Keeping the protocol pure makes it easy to
property-test the standard MESI invariants (single writer, M implies sole
sharer, S never dirty).
"""

from __future__ import annotations

import enum
from typing import Tuple

from repro.errors import SimulationError

__all__ = [
    "MESIState",
    "ProtocolError",
    "next_state",
    "remote_state_on_snoop",
    "set_block_state",
    "reset_block_state",
]


class ProtocolError(SimulationError):
    """An impossible coherence transition was requested."""


class MESIState(enum.Enum):
    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"

    def __str__(self) -> str:
        return self.value


def next_state(
    state: MESIState, is_write: bool, others_have_copy: bool
) -> Tuple[MESIState, bool]:
    """Transition for a *local* access.

    Returns ``(new_state, invalidate_others)``: the requester's new state
    and whether remote copies must be invalidated.

    >>> next_state(MESIState.INVALID, False, False)
    (<MESIState.EXCLUSIVE: 'E'>, False)
    >>> next_state(MESIState.SHARED, True, True)
    (<MESIState.MODIFIED: 'M'>, True)
    """
    if state is MESIState.INVALID:
        if is_write:
            return MESIState.MODIFIED, others_have_copy
        return (MESIState.SHARED if others_have_copy else MESIState.EXCLUSIVE), False
    if state is MESIState.SHARED:
        if is_write:
            return MESIState.MODIFIED, others_have_copy
        return MESIState.SHARED, False
    if state is MESIState.EXCLUSIVE:
        if is_write:
            # Silent E->M upgrade; nobody else can hold a copy in E.
            if others_have_copy:
                raise ProtocolError("line in E while another PU holds a copy")
            return MESIState.MODIFIED, False
        return MESIState.EXCLUSIVE, False
    if state is MESIState.MODIFIED:
        if others_have_copy:
            raise ProtocolError("line in M while another PU holds a copy")
        return MESIState.MODIFIED, False
    raise ProtocolError(f"unknown state {state!r}")


def set_block_state(block, state: MESIState) -> None:
    """Record a protocol-assigned MESI state on a cache block.

    This module is the only place allowed to assign
    :attr:`~repro.mem.cache.block.CacheBlock.state` (enforced by the repo
    lint, rule L004): every transition must come from the protocol model,
    never from ad-hoc cache code.
    """
    block.state = state


def reset_block_state(block) -> None:
    """Return a block's MESI state to INVALID (fill/invalidate paths)."""
    block.state = MESIState.INVALID


def remote_state_on_snoop(state: MESIState, remote_is_write: bool) -> MESIState:
    """Transition for a line when *another* PU accesses it.

    >>> remote_state_on_snoop(MESIState.MODIFIED, False)
    <MESIState.SHARED: 'S'>
    >>> remote_state_on_snoop(MESIState.SHARED, True)
    <MESIState.INVALID: 'I'>
    """
    if remote_is_write:
        return MESIState.INVALID
    if state in (MESIState.MODIFIED, MESIState.EXCLUSIVE):
        return MESIState.SHARED
    return state
