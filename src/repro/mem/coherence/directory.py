"""A two-PU directory over the shared address window, plus software coherence.

The paper's shared-space options keep coherent data either with hardware
coherence (directory) or "purely by software coherence support" (a runtime
that flushes/invalidates at synchronization points). Both appear here:

- :class:`Directory` tracks MESI state per line per PU, tells the system
  when to invalidate the peer's private copies, and counts protocol
  traffic;
- :class:`SoftwareCoherence` models the runtime alternative: no per-access
  cost, but every synchronization point (kernel boundary) pays a flush of
  the dirty shared lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from repro.errors import SimulationError
from repro.mem.coherence.protocol import MESIState, next_state, remote_state_on_snoop
from repro.taxonomy import ProcessingUnit

__all__ = ["Directory", "SoftwareCoherence", "CoherenceAction"]


@dataclass(frozen=True)
class CoherenceAction:
    """What the system must do for one shared-space access.

    ``invalidate_peer``: remove the peer PU's private copies of the line.
    ``extra_latency_messages``: protocol messages on the critical path
    (each costs one interconnect traversal).
    """

    invalidate_peer: bool
    extra_latency_messages: int


class Directory:
    """Per-line MESI bookkeeping for the two PUs.

    The directory is *not* a MemoryLevel: the system model consults it on
    each shared-space access and applies the returned action (invalidating
    peer caches, charging message latency).
    """

    def __init__(self, line_bytes: int = 64) -> None:
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise SimulationError("line size must be a positive power of two")
        self.line_bytes = line_bytes
        self._state: Dict[Tuple[int, ProcessingUnit], MESIState] = {}
        self.invalidations_sent = 0
        self.downgrades = 0
        self.upgrades = 0

    def _line(self, addr: int) -> int:
        return addr & ~(self.line_bytes - 1)

    def state_of(self, addr: int, pu: ProcessingUnit) -> MESIState:
        return self._state.get((self._line(addr), pu), MESIState.INVALID)

    def access(self, addr: int, pu: ProcessingUnit, is_write: bool) -> CoherenceAction:
        """Record an access and return the required action."""
        line = self._line(addr)
        peer = pu.other
        local = self._state.get((line, pu), MESIState.INVALID)
        remote = self._state.get((line, peer), MESIState.INVALID)
        others = remote is not MESIState.INVALID

        messages = 0
        if local is MESIState.INVALID:
            messages += 1  # directory lookup / fetch permission
        new_local, invalidate = next_state(local, is_write, others)
        if invalidate:
            self.invalidations_sent += 1
            messages += 2  # invalidate + ack
        if others and not is_write and remote in (MESIState.MODIFIED, MESIState.EXCLUSIVE):
            self.downgrades += 1
            messages += 1  # writeback / share request
        if local in (MESIState.SHARED,) and new_local is MESIState.MODIFIED:
            self.upgrades += 1

        new_remote = remote_state_on_snoop(remote, is_write) if others else remote
        self._state[(line, pu)] = new_local
        if others:
            if new_remote is MESIState.INVALID:
                self._state.pop((line, peer), None)
            else:
                self._state[(line, peer)] = new_remote
        return CoherenceAction(
            invalidate_peer=invalidate,
            extra_latency_messages=messages,
        )

    def sharers(self, addr: int) -> Tuple[ProcessingUnit, ...]:
        line = self._line(addr)
        return tuple(
            pu
            for pu in ProcessingUnit
            if self._state.get((line, pu), MESIState.INVALID) is not MESIState.INVALID
        )

    def check_invariants(self) -> None:
        """Raise if the single-writer invariant is violated anywhere."""
        lines: Dict[int, list] = {}
        for (line, pu), state in self._state.items():
            lines.setdefault(line, []).append(state)
        for line, states in lines.items():
            writers = sum(1 for s in states if s in (MESIState.MODIFIED, MESIState.EXCLUSIVE))
            if writers > 1 or (writers == 1 and len(states) > 1):
                raise SimulationError(
                    f"coherence invariant violated on line {line:#x}: {states}"
                )

    def stats(self) -> Dict[str, int]:
        return {
            "invalidations_sent": self.invalidations_sent,
            "downgrades": self.downgrades,
            "upgrades": self.upgrades,
            "tracked_lines": len({line for (line, _pu) in self._state}),
        }


class SoftwareCoherence:
    """Runtime-managed coherence: flush dirty shared lines at sync points.

    ``record_write`` notes dirty shared lines during execution;
    ``sync`` returns the number of lines that must be written back and
    clears the dirty set (the caller charges per-line cost).
    """

    def __init__(self, line_bytes: int = 64) -> None:
        self.line_bytes = line_bytes
        self._dirty: Dict[ProcessingUnit, set] = {pu: set() for pu in ProcessingUnit}
        self.syncs = 0
        self.lines_flushed = 0

    def record_write(self, addr: int, pu: ProcessingUnit) -> None:
        self._dirty[pu].add(addr & ~(self.line_bytes - 1))

    def dirty_lines(self, pu: ProcessingUnit) -> int:
        return len(self._dirty[pu])

    def sync(self, pu: ProcessingUnit) -> int:
        """Synchronize ``pu``'s shared writes; returns lines flushed."""
        flushed = len(self._dirty[pu])
        self._dirty[pu].clear()
        self.syncs += 1
        self.lines_flushed += flushed
        return flushed

    def stats(self) -> Dict[str, int]:
        return {"syncs": self.syncs, "lines_flushed": self.lines_flushed}
