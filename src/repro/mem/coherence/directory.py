"""A two-PU directory over the shared address window, plus software coherence.

The paper's shared-space options keep coherent data either with hardware
coherence (directory or snooping — see
:mod:`repro.mem.coherence.snoop`) or "purely by software coherence
support" (a runtime that flushes/invalidates at synchronization points).
Both appear here:

- :class:`Directory` tracks MESI state per line per PU, tells the system
  when to invalidate the peer's private copies, and counts protocol
  traffic;
- :class:`SoftwareCoherence` models the runtime alternative: no per-access
  cost, but every synchronization point (kernel boundary) pays a flush of
  the dirty shared lines.
"""

from __future__ import annotations

from typing import Dict

from repro.mem.coherence.api import CoherenceAction, CoherenceProtocol
from repro.mem.coherence.protocol import MESIState
from repro.obs.metrics import MetricRegistry
from repro.taxonomy import ProcessingUnit

__all__ = ["Directory", "SoftwareCoherence", "CoherenceAction"]


class Directory(CoherenceProtocol):
    """Per-line MESI bookkeeping for the two PUs behind a sharer directory.

    The directory is *not* a MemoryLevel: the system model consults it on
    each shared-space access and applies the returned action (invalidating
    peer caches, charging message latency).
    """

    kind = "directory"

    def __init__(self, line_bytes: int = 64) -> None:
        super().__init__(line_bytes)
        self._invalidations_sent = self.metrics.counter(
            "invalidations_sent",
            unit="lines",
            description="peer copies invalidated on behalf of a writer",
        )
        self._downgrades = self.metrics.counter(
            "downgrades", unit="lines", description="remote M/E copies demoted to S"
        )
        self._upgrades = self.metrics.counter(
            "upgrades", unit="lines", description="local S copies promoted to M"
        )

    # -- counter views ------------------------------------------------------

    @property
    def invalidations_sent(self) -> int:
        return self._invalidations_sent.value

    @property
    def downgrades(self) -> int:
        return self._downgrades.value

    @property
    def upgrades(self) -> int:
        return self._upgrades.value

    def access(self, addr: int, pu: ProcessingUnit, is_write: bool) -> CoherenceAction:
        """Record an access and return the required action."""
        line = self._line(addr)
        peer = pu.other
        local = self._state.get((line, pu), MESIState.INVALID)
        remote = self._state.get((line, peer), MESIState.INVALID)
        others = remote is not MESIState.INVALID

        messages = 0
        if local is MESIState.INVALID:
            messages += 1  # directory lookup / fetch permission
        new_local, invalidate = self._apply(
            line, pu, peer, is_write, local, remote, others
        )
        if invalidate:
            self._invalidations_sent.inc()
            messages += 2  # invalidate + ack
        if others and not is_write and remote in (MESIState.MODIFIED, MESIState.EXCLUSIVE):
            self._downgrades.inc()
            messages += 1  # writeback / share request
        if local is MESIState.SHARED and new_local is MESIState.MODIFIED:
            self._upgrades.inc()
        return CoherenceAction(
            invalidate_peer=invalidate,
            extra_latency_messages=messages,
        )


class SoftwareCoherence:
    """Runtime-managed coherence: flush dirty shared lines at sync points.

    ``record_write`` notes dirty shared lines during execution;
    ``sync`` returns the number of lines that must be written back and
    clears the dirty set (the caller charges per-line cost).
    """

    def __init__(self, line_bytes: int = 64) -> None:
        self.line_bytes = line_bytes
        self._dirty: Dict[ProcessingUnit, set] = {pu: set() for pu in ProcessingUnit}
        self.metrics = MetricRegistry("coherence.software")
        self._syncs = self.metrics.counter(
            "syncs", unit="events", description="synchronization points serviced"
        )
        self._lines_flushed = self.metrics.counter(
            "lines_flushed", unit="lines", description="dirty shared lines written back"
        )

    @property
    def syncs(self) -> int:
        return self._syncs.value

    @property
    def lines_flushed(self) -> int:
        return self._lines_flushed.value

    def record_write(self, addr: int, pu: ProcessingUnit) -> None:
        self._dirty[pu].add(addr & ~(self.line_bytes - 1))

    def dirty_lines(self, pu: ProcessingUnit) -> int:
        return len(self._dirty[pu])

    def sync(self, pu: ProcessingUnit) -> int:
        """Synchronize ``pu``'s shared writes; returns lines flushed."""
        flushed = len(self._dirty[pu])
        self._dirty[pu].clear()
        self._syncs.inc()
        if flushed:
            self._lines_flushed.inc(flushed)
        return flushed

    def stats(self) -> Dict[str, int]:
        return self.metrics.as_dict()

    def reset_stats(self) -> None:
        self.metrics.reset()
