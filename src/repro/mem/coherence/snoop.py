"""Broadcast (bus-snooping) coherence over the shared address window.

Where the :class:`~repro.mem.coherence.directory.Directory` pays
indirection — a lookup message on cold accesses and an explicit
invalidate/ack pair on conflicting writes — a snooping bus announces every
cold access and every upgrade to the peer directly. The trade the sweep
exposes:

- snoop pays a broadcast probe on **every** cold access (plus a data
  response whenever the peer holds the line), so read-shared working sets
  cost more than under a directory;
- conflicts resolve in the broadcast itself (bus order is the
  acknowledgement), so invalidating writes and S→M upgrades cost *fewer*
  messages than the directory's three-hop exchange.
"""

from __future__ import annotations

from repro.mem.coherence.api import CoherenceAction, CoherenceProtocol
from repro.mem.coherence.protocol import MESIState
from repro.taxonomy import ProcessingUnit

__all__ = ["SnoopBus"]


class SnoopBus(CoherenceProtocol):
    """MESI kept coherent by broadcast probes on a shared bus."""

    kind = "snoop"

    def __init__(self, line_bytes: int = 64) -> None:
        super().__init__(line_bytes)
        self._broadcasts = self.metrics.counter(
            "broadcasts", unit="messages", description="bus probes announced to the peer"
        )
        self._snoop_hits = self.metrics.counter(
            "snoop_hits", unit="messages", description="probes answered from a peer copy"
        )
        self._invalidations_sent = self.metrics.counter(
            "invalidations_sent",
            unit="lines",
            description="peer copies invalidated by a broadcast",
        )
        self._upgrades = self.metrics.counter(
            "upgrades", unit="lines", description="S->M upgrades announced on the bus"
        )

    # -- counter views (mirroring Directory's attribute surface) -----------

    @property
    def broadcasts(self) -> int:
        return self._broadcasts.value

    @property
    def snoop_hits(self) -> int:
        return self._snoop_hits.value

    @property
    def invalidations_sent(self) -> int:
        return self._invalidations_sent.value

    @property
    def upgrades(self) -> int:
        return self._upgrades.value

    def access(self, addr: int, pu: ProcessingUnit, is_write: bool) -> CoherenceAction:
        """Record an access and return the required action."""
        line = self._line(addr)
        peer = pu.other
        local = self._state.get((line, pu), MESIState.INVALID)
        remote = self._state.get((line, peer), MESIState.INVALID)
        others = remote is not MESIState.INVALID

        messages = 0
        if local is MESIState.INVALID:
            # Cold access: probe the bus; a holding peer supplies the line.
            self._broadcasts.inc()
            messages += 1
            if others:
                self._snoop_hits.inc()
                messages += 1
        elif is_write and local is MESIState.SHARED:
            # Upgrade broadcast; bus order acknowledges it implicitly.
            self._broadcasts.inc()
            messages += 1

        new_local, invalidate = self._apply(
            line, pu, peer, is_write, local, remote, others
        )
        if invalidate:
            # The kill rode the broadcast — no separate invalidate/ack pair.
            self._invalidations_sent.inc()
        if local is MESIState.SHARED and new_local is MESIState.MODIFIED:
            self._upgrades.inc()
        return CoherenceAction(
            invalidate_peer=invalidate, extra_latency_messages=messages
        )
