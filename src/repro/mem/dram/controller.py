"""Memory controllers and the multi-controller DRAM system.

The trace-driven model services requests in order, so FR-FCFS's
row-hit-first behaviour appears through the open-page row-buffer model
(:mod:`repro.mem.dram.bank`); the "ready" part of FR-FCFS is approximated
by a short queueing window that lets a row-hit request bypass the data-bus
backlog of earlier row-miss requests.
"""

from __future__ import annotations

from typing import Dict, List

from repro.config.system import DramConfig
from repro.errors import ConfigError
from repro.mem.dram.bank import Bank
from repro.mem.dram.timing import DramTiming
from repro.mem.level import MemoryLevel
from repro.mem.request import AccessResult, MemRequest
from repro.obs.metrics import MetricRegistry
from repro.units import Bandwidth

__all__ = ["MemoryController", "DramSystem"]


class MemoryController:
    """One channel: a set of banks plus a shared data bus.

    ``service`` returns the total controller latency for a line fetch:
    queueing delay (data-bus contention) + bank array latency + burst time.
    """

    def __init__(self, config: DramConfig, line_bytes: int = 64) -> None:
        self.config = config
        self.timing = DramTiming.from_config(config)
        self.banks: List[Bank] = [Bank(self.timing) for _ in range(config.banks_per_controller)]
        per_channel = config.bandwidth.bytes_per_second / config.num_controllers
        self.channel_bandwidth = Bandwidth(per_channel)
        self.line_bytes = line_bytes
        self._bus_free_at = 0.0
        self.metrics = MetricRegistry("dram.controller")
        self._requests = self.metrics.counter(
            "requests", unit="requests", description="line fetches serviced"
        )
        self._queue_delay = self.metrics.histogram(
            "queue_delay", unit="s", description="data-bus backlog per request"
        )

    def _locate(self, addr: int) -> "tuple[int, int]":
        """(bank, row) for an address: line-interleaved across banks."""
        line = addr // self.line_bytes
        bank = line % len(self.banks)
        row = addr // self.config.row_bytes
        return bank, row

    def service(self, addr: int, now: float) -> float:
        """Latency in seconds to return the line at ``addr`` requested at
        ``now``."""
        self._requests.inc()
        bank_index, row = self._locate(addr)
        bank = self.banks[bank_index]
        array = bank.access_latency(row)
        burst = self.channel_bandwidth.seconds_for(self.line_bytes)
        # Row hits may bypass a short backlog (the FR part of FR-FCFS).
        backlog = max(0.0, self._bus_free_at - now)
        if bank.timing.row_hit == array and backlog > 0:
            backlog = max(0.0, backlog - self.timing.row_miss)
        self._queue_delay.observe(backlog)
        start = now + backlog + array
        self._bus_free_at = start + burst
        return backlog + array + burst

    @property
    def requests(self) -> int:
        return self._requests.value

    @property
    def queue_delay_total(self) -> float:
        return self._queue_delay.total

    def stats(self) -> Dict[str, float]:
        hits = sum(b.row_hits for b in self.banks)
        misses = sum(b.row_misses for b in self.banks)
        closed = sum(b.row_closed_accesses for b in self.banks)
        return {
            "requests": self.requests,
            "row_hits": hits,
            "row_misses": misses,
            "row_closed": closed,
            "queue_delay_total_s": self.queue_delay_total,
        }


class DramSystem(MemoryLevel):
    """All controllers; the bottom of every hierarchy.

    Addresses interleave across controllers at line granularity, matching
    the fine-grained channel interleaving of desktop memory systems.
    """

    name = "dram"

    def __init__(self, config: DramConfig, line_bytes: int = 64) -> None:
        if config.num_controllers < 1:
            raise ConfigError("need at least one controller")
        self.config = config
        self.line_bytes = line_bytes
        self.controllers: List[MemoryController] = [
            MemoryController(config, line_bytes) for _ in range(config.num_controllers)
        ]

    def controller_for(self, addr: int) -> MemoryController:
        line = addr // self.line_bytes
        return self.controllers[line % len(self.controllers)]

    def access(self, request: MemRequest) -> AccessResult:
        latency = self.controller_for(request.addr).service(request.addr, request.issue_time)
        return AccessResult(latency=latency, hit_level=self.name, was_hit=True)

    def average_latency_seconds(self) -> float:
        """Unloaded average access latency (used by analytic models)."""
        timing = DramTiming.from_config(self.config)
        burst = self.controllers[0].channel_bandwidth.seconds_for(self.line_bytes)
        # Streaming workloads mostly hit the open row.
        return 0.7 * timing.row_hit + 0.3 * timing.row_miss + burst

    def stats(self) -> Dict[str, float]:
        merged: Dict[str, float] = {}
        for controller in self.controllers:
            for key, value in controller.stats().items():
                merged[key] = merged.get(key, 0) + value
        return merged
