"""A DRAM bank with an open-row buffer."""

from __future__ import annotations

from repro.mem.dram.timing import DramTiming

__all__ = ["Bank"]


class Bank:
    """One bank: tracks the open row and classifies each access.

    ``access_latency`` returns the array latency for a column access and
    updates the open row (open-page policy, which is what makes FR-FCFS
    row-hit-first scheduling profitable).
    """

    def __init__(self, timing: DramTiming) -> None:
        self.timing = timing
        self.open_row: "int | None" = None
        self.row_hits = 0
        self.row_misses = 0
        self.row_closed_accesses = 0

    def access_latency(self, row: int) -> float:
        """Array latency in seconds for an access to ``row``."""
        if self.open_row is None:
            self.row_closed_accesses += 1
            self.open_row = row
            return self.timing.row_closed
        if self.open_row == row:
            self.row_hits += 1
            return self.timing.row_hit
        self.row_misses += 1
        self.open_row = row
        return self.timing.row_miss

    @property
    def accesses(self) -> int:
        return self.row_hits + self.row_misses + self.row_closed_accesses

    def precharge(self) -> None:
        """Close the open row (e.g. refresh)."""
        self.open_row = None
