"""DDR3 timing parameters in seconds."""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.system import DramConfig

__all__ = ["DramTiming"]


@dataclass(frozen=True)
class DramTiming:
    """Derived DDR3 latencies (seconds) from a :class:`DramConfig`.

    - ``row_hit``: CAS only (the row is already open) — what FR-FCFS
      prioritizes;
    - ``row_miss``: precharge + activate + CAS (row conflict);
    - ``row_closed``: activate + CAS (bank idle).
    """

    row_hit: float
    row_miss: float
    row_closed: float

    @classmethod
    def from_config(cls, config: DramConfig) -> "DramTiming":
        period = config.frequency.period
        cas = config.t_cl * period
        activate = config.t_rcd * period
        precharge = config.t_rp * period
        return cls(
            row_hit=cas,
            row_miss=precharge + activate + cas,
            row_closed=activate + cas,
        )
