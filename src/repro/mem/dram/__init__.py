"""DDR3 DRAM model: banks with row buffers behind FR-FCFS controllers."""

from repro.mem.dram.timing import DramTiming
from repro.mem.dram.bank import Bank
from repro.mem.dram.controller import DramSystem, MemoryController

__all__ = ["DramTiming", "Bank", "MemoryController", "DramSystem"]
