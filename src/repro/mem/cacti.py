"""CACTI-like cache latency/area/energy model.

The paper models cache latencies with CACTI 6.5 (§IV-A). We reproduce the
*outputs* it used (Table II: 32 KB -> 2 cycles, 256 KB -> 8 cycles, 2 MB
L3 tile -> 20 cycles, all at 3.5 GHz) with a small analytic model:

    latency_ns(capacity) = a + b*sqrt(KB) + c*log2(KB)

fitted exactly through the three Table II calibration points (three basis
functions, three points). Capacities between and beyond the calibration
points get smooth, monotone-in-practice estimates, which is all the design
sweeps need. Dynamic energy and area use standard per-bit scaling rules.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.units import GHZ, KB, MB, Frequency

__all__ = ["CactiModel", "DEFAULT_CACTI", "table2_latency_cycles"]

#: (capacity bytes, latency ns at 3.5 GHz) — the Table II calibration points.
#: The L3's 20 cycles are per 2 MB tile (8 MB across 4 tiles).
TABLE2_CALIBRATION: Tuple[Tuple[int, float], ...] = (
    (32 * KB, 2 / 3.5),
    (256 * KB, 8 / 3.5),
    (2 * MB, 20 / 3.5),
)


@dataclass(frozen=True)
class CactiModel:
    """Analytic cache timing/area/energy model.

    ``coefficients`` are (a, b, c) of the latency polynomial above. Use
    :meth:`fit` to build a model through measured points;
    :data:`DEFAULT_CACTI` is fitted through the paper's Table II values.
    """

    coefficients: Tuple[float, float, float]

    @classmethod
    def fit(cls, points: Sequence[Tuple[int, float]]) -> "CactiModel":
        """Least-squares fit through (capacity_bytes, latency_ns) points.

        With exactly three points the fit is exact.
        """
        if len(points) < 3:
            raise ConfigError("need at least three calibration points")
        rows = []
        targets = []
        for capacity, latency_ns in points:
            if capacity < KB:
                raise ConfigError(f"capacity {capacity} below 1 KB")
            if latency_ns <= 0:
                raise ConfigError("latency must be positive")
            kb = capacity / KB
            rows.append([1.0, math.sqrt(kb), math.log2(kb)])
            targets.append(latency_ns)
        solution, *_ = np.linalg.lstsq(np.array(rows), np.array(targets), rcond=None)
        return cls(coefficients=tuple(float(x) for x in solution))

    def latency_ns(self, capacity_bytes: int) -> float:
        """Access latency in nanoseconds for a bank of ``capacity_bytes``."""
        if capacity_bytes < KB:
            raise ConfigError(f"capacity {capacity_bytes} below 1 KB")
        a, b, c = self.coefficients
        kb = capacity_bytes / KB
        latency = a + b * math.sqrt(kb) + c * math.log2(kb)
        return max(latency, 0.05)

    def latency_cycles(self, capacity_bytes: int, frequency: Frequency) -> int:
        """Access latency in whole cycles of ``frequency`` (minimum 1)."""
        seconds = self.latency_ns(capacity_bytes) * 1e-9
        return max(frequency.seconds_to_cycles(seconds), 1)

    def dynamic_energy_nj(self, capacity_bytes: int, line_bytes: int = 64) -> float:
        """Rough per-access dynamic energy (nJ): grows with sqrt(capacity)
        for the array plus a per-bit line transfer term."""
        kb = capacity_bytes / KB
        return 0.01 * math.sqrt(kb) + 0.002 * line_bytes

    def area_mm2(self, capacity_bytes: int) -> float:
        """Rough area (mm^2) at a 32nm-class node: ~1 mm^2 per MB plus
        sublinear periphery overhead."""
        mb = capacity_bytes / MB
        return 1.05 * mb + 0.08 * math.sqrt(max(mb, 1e-3))


DEFAULT_CACTI = CactiModel.fit(TABLE2_CALIBRATION)


def table2_latency_cycles(capacity_bytes: int, tiles: int = 1) -> int:
    """Latency in 3.5 GHz cycles for a (possibly tiled) cache.

    Tiled caches are accessed one tile at a time, so latency follows the
    per-tile capacity — this reproduces Table II's 20-cycle figure for the
    8 MB / 4-tile L3.
    """
    if tiles < 1:
        raise ConfigError("tiles must be >= 1")
    per_tile = capacity_bytes // tiles
    return DEFAULT_CACTI.latency_cycles(per_tile, Frequency(3.5 * GHZ))
