"""The ring-bus network joining cores, L3 tiles, and memory controllers.

A bidirectional ring: a message takes the shorter direction, paying
``hop_latency`` cycles per hop plus serialization time for its payload on
the link. The network also tracks aggregate traffic so sweeps can reason
about utilization.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import ConfigError
from repro.config.system import InterconnectConfig
from repro.mem.level import MemoryLevel
from repro.mem.request import AccessResult, MemRequest
from repro.obs.metrics import MetricRegistry
from repro.units import ceil_div

__all__ = ["RingNetwork", "RingPath"]


class RingNetwork:
    """A bidirectional ring with named stops.

    >>> ring = RingNetwork(InterconnectConfig(), ["cpu", "gpu", "l3", "mc"])
    >>> ring.hops("cpu", "l3")
    2
    >>> ring.hops("cpu", "mc")
    1
    """

    def __init__(self, config: InterconnectConfig, stops: Sequence[str]) -> None:
        if len(stops) < 2:
            raise ConfigError("a ring needs at least two stops")
        if len(set(stops)) != len(stops):
            raise ConfigError("ring stops must be unique")
        self.config = config
        self.stops: List[str] = list(stops)
        self._index: Dict[str, int] = {name: i for i, name in enumerate(stops)}
        self.metrics = MetricRegistry("ring")
        self._messages = self.metrics.counter(
            "messages", unit="messages", description="ring traversals"
        )
        self._bytes_moved = self.metrics.counter(
            "bytes_moved", unit="bytes", description="payload bytes serialized"
        )

    def hops(self, src: str, dst: str) -> int:
        """Hops along the shorter direction between two stops."""
        try:
            a, b = self._index[src], self._index[dst]
        except KeyError as exc:
            raise ConfigError(f"unknown ring stop {exc.args[0]!r}") from exc
        distance = abs(a - b)
        return min(distance, len(self.stops) - distance)

    def transit_seconds(self, src: str, dst: str, payload_bytes: int) -> float:
        """One-way message latency: per-hop cost plus serialization."""
        if payload_bytes < 0:
            raise ConfigError("payload must be non-negative")
        self._messages.inc()
        self._bytes_moved.inc(payload_bytes)
        hop_cycles = self.hops(src, dst) * self.config.hop_latency
        ser_cycles = ceil_div(max(payload_bytes, 1), self.config.link_bytes_per_cycle)
        return self.config.frequency.cycles_to_seconds(hop_cycles + ser_cycles)

    @property
    def messages(self) -> int:
        return self._messages.value

    @property
    def bytes_moved(self) -> int:
        return self._bytes_moved.value

    def stats(self) -> Dict[str, int]:
        return self.metrics.as_dict()


class RingPath(MemoryLevel):
    """A fixed source->destination ring traversal wrapping a lower level.

    Sits between a private L2 and the shared L3 (or between the L3 and a
    memory controller): each access pays the ring transit both ways around
    the downstream access.
    """

    def __init__(
        self,
        ring: RingNetwork,
        src: str,
        dst: str,
        below: MemoryLevel,
        payload_bytes: int = 64,
    ) -> None:
        self.ring = ring
        self.src = src
        self.dst = dst
        self.below = below
        self.payload_bytes = payload_bytes
        self.name = f"ring[{src}->{dst}]"

    def access(self, request: MemRequest) -> AccessResult:
        request_leg = self.ring.transit_seconds(self.src, self.dst, 16)
        below = self.below.access(request.with_time(request.issue_time + request_leg))
        reply_leg = self.ring.transit_seconds(self.dst, self.src, self.payload_bytes)
        return AccessResult(
            latency=request_leg + below.latency + reply_leg,
            hit_level=below.hit_level,
            was_hit=below.was_hit,
        )

    def stats(self) -> Dict[str, int]:
        return self.ring.stats()
