"""On-chip interconnect models (the Table II ring-bus network)."""

from repro.mem.interconnect.ring import RingNetwork, RingPath

__all__ = ["RingNetwork", "RingPath"]
