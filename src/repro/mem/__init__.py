"""Memory-system substrates: caches, coherence, interconnect, DRAM.

This package implements the hardware side of the paper's Table II machine:

- :mod:`repro.mem.cache` — set-associative caches with MSHRs and the
  hybrid locality-aware replacement policy of §II-B5;
- :mod:`repro.mem.coherence` — a MESI directory over the shared L3 plus a
  software-coherence (runtime flush) alternative;
- :mod:`repro.mem.interconnect` — the ring-bus network;
- :mod:`repro.mem.dram` — DDR3-1333 with FR-FCFS controllers;
- :mod:`repro.mem.cacti` — a CACTI-like latency/energy model calibrated to
  the paper's Table II cache latencies.

All levels speak the :class:`repro.mem.request.MemRequest` /
:class:`repro.mem.level.MemoryLevel` interface and account time in seconds,
so components from different clock domains compose.
"""

from repro.mem.request import AccessResult, MemRequest
from repro.mem.level import MemoryLevel, FixedLatencyMemory

__all__ = [
    "MemRequest",
    "AccessResult",
    "MemoryLevel",
    "FixedLatencyMemory",
]
