"""Memory requests and access results."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.taxonomy import ProcessingUnit

__all__ = ["MemRequest", "AccessResult"]


@dataclass(frozen=True, slots=True)
class MemRequest:
    """One memory access descending the hierarchy.

    ``explicit`` marks accesses to explicitly managed (``push``-ed) data for
    the hybrid locality replacement policy; ``shared_space`` marks accesses
    to the shared address window (they participate in coherence).
    """

    addr: int
    size: int = 4
    is_write: bool = False
    pu: ProcessingUnit = ProcessingUnit.CPU
    explicit: bool = False
    shared_space: bool = False
    issue_time: float = 0.0

    def __post_init__(self) -> None:
        if self.addr < 0:
            raise SimulationError(f"negative address {self.addr:#x}")
        if self.size <= 0:
            raise SimulationError(f"request size must be positive, got {self.size}")
        if self.issue_time < 0:
            raise SimulationError("issue time must be non-negative")

    def line_addr(self, line_bytes: int) -> int:
        """The address of the cache line containing this request."""
        return self.addr & ~(line_bytes - 1)

    def with_time(self, issue_time: float) -> "MemRequest":
        # Direct construction: dataclasses.replace() is generic and slow,
        # and this runs once per cache-level traversal.
        return MemRequest(
            self.addr,
            self.size,
            self.is_write,
            self.pu,
            self.explicit,
            self.shared_space,
            issue_time,
        )


@dataclass(frozen=True, slots=True)
class AccessResult:
    """Outcome of sending a request into a memory level.

    ``latency`` is total seconds from issue to data return; ``hit_level``
    names the level that supplied the data (``"dram"`` for misses all the
    way down).
    """

    latency: float
    hit_level: str
    was_hit: bool

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise SimulationError("latency must be non-negative")
