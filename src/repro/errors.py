"""Exception hierarchy for the repro package.

All exceptions raised by this library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "TraceError",
    "SimulationError",
    "AddressSpaceError",
    "AccessViolationError",
    "OwnershipError",
    "AllocationError",
    "TranslationError",
    "CommunicationError",
    "LocalityError",
    "DesignSpaceError",
    "ProgramError",
    "CheckError",
    "FaultSpecError",
    "CheckpointError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class TraceError(ReproError):
    """A trace is malformed or inconsistent with its declared statistics."""


class SimulationError(ReproError):
    """The simulator reached an invalid state."""


class AddressSpaceError(ReproError):
    """Base class for address-space related failures."""


class AccessViolationError(AddressSpaceError):
    """A processing unit accessed an address it may not reach.

    Raised e.g. when a GPU dereferences host-private memory under a disjoint
    or ADSM address space.
    """


class OwnershipError(AddressSpaceError):
    """Ownership protocol violation in the partially shared address space.

    Raised when a PU touches a shared object it does not own, or when
    acquire/release are misused (double acquire, release by non-owner).
    """


class AllocationError(AddressSpaceError):
    """An allocation request could not be satisfied."""


class TranslationError(AddressSpaceError):
    """A virtual address has no mapping in the relevant page table."""


class CommunicationError(ReproError):
    """A data transfer was requested over an unavailable mechanism."""


class LocalityError(ReproError):
    """A locality-management operation is infeasible for the configuration."""


class DesignSpaceError(ReproError):
    """A design point is infeasible or the space query is malformed."""


class ProgramError(ReproError):
    """A mini-DSL program is malformed or violates model rules."""


class CheckError(ReproError):
    """The static memory-model checker found violations that gate a run.

    Raised by :class:`~repro.core.explorer.Explorer` in ``check="error"``
    mode when a trace breaks the obligations of the design point it is
    about to be simulated under.
    """


class FaultSpecError(ConfigError):
    """A fault-injection spec string or parameter set is malformed.

    A :class:`ConfigError` subclass so the CLI maps bad ``--faults``
    grammar onto the configuration exit code.
    """


class CheckpointError(ReproError):
    """A sweep checkpoint file cannot be read or written."""
