"""Exception hierarchy for the repro package.

All exceptions raised by this library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "TraceError",
    "SimulationError",
    "AddressSpaceError",
    "AccessViolationError",
    "OwnershipError",
    "AllocationError",
    "TranslationError",
    "CommunicationError",
    "LocalityError",
    "DesignSpaceError",
    "ProgramError",
    "CheckError",
    "FaultSpecError",
    "CheckpointError",
    "StoreError",
    "StoreCorruptionError",
    "ServeError",
    "QueueFullError",
    "DeadlineExceededError",
    "ChaosError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class TraceError(ReproError):
    """A trace is malformed or inconsistent with its declared statistics."""


class SimulationError(ReproError):
    """The simulator reached an invalid state."""


class AddressSpaceError(ReproError):
    """Base class for address-space related failures."""


class AccessViolationError(AddressSpaceError):
    """A processing unit accessed an address it may not reach.

    Raised e.g. when a GPU dereferences host-private memory under a disjoint
    or ADSM address space.
    """


class OwnershipError(AddressSpaceError):
    """Ownership protocol violation in the partially shared address space.

    Raised when a PU touches a shared object it does not own, or when
    acquire/release are misused (double acquire, release by non-owner).
    """


class AllocationError(AddressSpaceError):
    """An allocation request could not be satisfied."""


class TranslationError(AddressSpaceError):
    """A virtual address has no mapping in the relevant page table."""


class CommunicationError(ReproError):
    """A data transfer was requested over an unavailable mechanism."""


class LocalityError(ReproError):
    """A locality-management operation is infeasible for the configuration."""


class DesignSpaceError(ReproError):
    """A design point is infeasible or the space query is malformed."""


class ProgramError(ReproError):
    """A mini-DSL program is malformed or violates model rules."""


class CheckError(ReproError):
    """The static memory-model checker found violations that gate a run.

    Raised by :class:`~repro.core.explorer.Explorer` in ``check="error"``
    mode when a trace breaks the obligations of the design point it is
    about to be simulated under.
    """


class FaultSpecError(ConfigError):
    """A fault-injection spec string or parameter set is malformed.

    A :class:`ConfigError` subclass so the CLI maps bad ``--faults``
    grammar onto the configuration exit code.
    """


class CheckpointError(ReproError):
    """A sweep checkpoint file cannot be read or written."""


class StoreError(ReproError):
    """The durable result store cannot be opened, read, or written.

    Raised for structural problems (unwritable root, journal that cannot
    be appended, a root that is not a store). Corrupt *entries* never
    raise on the read path — they are quarantined and recomputed (see
    :class:`~repro.store.store.ResultStore`); :class:`StoreCorruptionError`
    is reserved for explicit integrity commands (``store verify``).
    """


class StoreCorruptionError(StoreError):
    """An explicit integrity check found corrupt store entries.

    Raised by :meth:`~repro.store.store.ResultStore.verify` in strict
    mode so ``repro-explore store verify`` can map corruption onto its
    own exit code (5) distinct from configuration or simulation errors.
    """


class ServeError(ReproError):
    """The exploration service failed structurally (bind, boot, shutdown)."""


class QueueFullError(ServeError):
    """The service job queue is at capacity and shed this request.

    Explicit backpressure: the daemon bounds queue depth and answers
    over-capacity submissions with this typed error (HTTP 503) instead of
    growing without bound.
    """


class DeadlineExceededError(ServeError):
    """A request's deadline expired before its job produced a result.

    The job itself keeps running to completion (its result still lands in
    the store for the next asker); only this request's wait is abandoned.
    """


class ChaosError(ReproError):
    """A chaos scenario ended in an unexpected state.

    Every scenario must terminate with either byte-identical-to-clean
    results or an explicit typed error; anything else — a hang proxy, a
    silent mismatch, an untyped crash — raises this.
    """
