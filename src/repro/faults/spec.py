"""Fault-injection specs: what goes wrong, how often, on which channel.

A :class:`FaultSpec` describes the failure behaviour of one communication
mechanism; a :class:`FaultPlan` maps mechanisms (or the wildcard ``*``) to
specs and carries the seed that makes every injected fault deterministic.
Plans are frozen, hashable, and picklable, so a :class:`~repro.exec.job.SimJob`
can carry one into worker processes, and two runs with the same plan (and
the same seed) inject the exact same fault sequence.

The CLI grammar (``--faults SPEC``) is ``;``-separated clauses::

    SPEC    := [ "seed=" INT ";" ] CLAUSE { ";" CLAUSE }
    CLAUSE  := TARGET ":" FAULT { "," FAULT }
    TARGET  := "pcie" | "aperture" | "memctrl" | "interconnect"
             | "dma" | "ideal" | "*"
    FAULT   := "fail=" RATE          per-transfer failure probability
             | "attempts=" N         modeled channel-level attempts (default 3)
             | "degrade=" RATE       probability a degraded window starts
             | "factor=" F           slowdown during a degraded window
             | "window=" N           transfers per degraded window
             | "drop=" RATE          dropped async-completion probability

Examples: ``pcie:fail=0.2``, ``seed=7;pcie:fail=0.1,drop=0.05;*:degrade=0.02``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields, replace
from typing import Dict, Optional, Tuple

from repro.errors import FaultSpecError
from repro.taxonomy import CommMechanism

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "MECHANISM_TOKENS",
    "WILDCARD_TARGET",
    "derive_seed",
]

#: Spec-grammar token per mechanism (and the reverse map for matching).
MECHANISM_TOKENS: Dict[str, CommMechanism] = {
    "pcie": CommMechanism.PCIE,
    "aperture": CommMechanism.PCI_APERTURE,
    "memctrl": CommMechanism.MEMORY_CONTROLLER,
    "interconnect": CommMechanism.INTERCONNECT,
    "dma": CommMechanism.DMA_ASYNC,
    "ideal": CommMechanism.IDEAL,
}
_TOKEN_BY_MECHANISM = {mech: token for token, mech in MECHANISM_TOKENS.items()}

WILDCARD_TARGET = "*"

_RATE_FIELDS = ("fail_rate", "degrade_rate", "drop_rate")
_SPEC_KEYS = {
    "fail": "fail_rate",
    "attempts": "attempts",
    "degrade": "degrade_rate",
    "factor": "degrade_factor",
    "window": "degrade_window",
    "drop": "drop_rate",
}


def derive_seed(seed: int, *parts: str) -> int:
    """A stable 64-bit RNG seed from a plan seed plus context strings.

    Python's builtin ``hash`` is salted per process, so channel seeds go
    through SHA-256 instead — the same (plan seed, mechanism, job, attempt)
    tuple yields the same fault sequence in every worker process.
    """
    digest = hashlib.sha256(
        ":".join((str(seed), *parts)).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class FaultSpec:
    """Failure behaviour of one communication channel.

    - ``fail_rate``: per-transfer-attempt probability that the transfer
      fails after running (its exposed time is wasted). The channel
      re-attempts up to ``attempts`` times, then raises
      :class:`~repro.errors.CommunicationError` to the harness.
    - ``degrade_rate``: per-transfer probability that a bandwidth
      degradation episode starts, multiplying transfer time by
      ``degrade_factor`` for the next ``degrade_window`` transfers.
    - ``drop_rate``: per-transfer probability that an asynchronous copy's
      completion is dropped — the copy silently loses its overlap and its
      full time lands on the critical path.
    """

    fail_rate: float = 0.0
    attempts: int = 3
    degrade_rate: float = 0.0
    degrade_factor: float = 2.0
    degrade_window: int = 4
    drop_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultSpecError(f"{name} must be in [0, 1], got {rate}")
        if self.attempts < 1:
            raise FaultSpecError(f"attempts must be >= 1, got {self.attempts}")
        if self.degrade_factor < 1.0:
            raise FaultSpecError(
                f"degrade_factor must be >= 1, got {self.degrade_factor}"
            )
        if self.degrade_window < 1:
            raise FaultSpecError(
                f"degrade_window must be >= 1, got {self.degrade_window}"
            )

    @property
    def active(self) -> bool:
        """Whether this spec can inject anything at all."""
        return any(getattr(self, name) > 0.0 for name in _RATE_FIELDS)

    def describe(self) -> str:
        """Canonical clause text (non-default fields only)."""
        parts = []
        defaults = FaultSpec()
        for key, attr in _SPEC_KEYS.items():
            value = getattr(self, attr)
            if value != getattr(defaults, attr):
                parts.append(f"{key}={value:g}" if isinstance(value, float) else f"{key}={value}")
        return ",".join(parts) or "fail=0"


@dataclass(frozen=True)
class FaultPlan:
    """A seeded mapping from communication mechanisms to fault specs.

    ``specs`` preserves clause order; the first exact mechanism match wins,
    then the first wildcard. The plan is pure data — wrapping a channel
    happens in :meth:`wrap`, which derives a per-(job, attempt) seed so
    harness-level retries of a failed job see a fresh (but still
    deterministic) fault sequence.
    """

    seed: int = 0
    specs: Tuple[Tuple[str, FaultSpec], ...] = ()

    def __post_init__(self) -> None:
        for target, spec in self.specs:
            if target != WILDCARD_TARGET and target not in MECHANISM_TOKENS:
                raise FaultSpecError(
                    f"unknown fault target {target!r}; use one of "
                    f"{sorted(MECHANISM_TOKENS)} or {WILDCARD_TARGET!r}"
                )
            if not isinstance(spec, FaultSpec):
                raise FaultSpecError(
                    f"fault target {target!r} needs a FaultSpec, got {type(spec).__name__}"
                )

    def spec_for(self, mechanism: CommMechanism) -> Optional[FaultSpec]:
        """The spec governing ``mechanism`` (exact target beats wildcard)."""
        token = _TOKEN_BY_MECHANISM[mechanism]
        wildcard: Optional[FaultSpec] = None
        for target, spec in self.specs:
            if target == token:
                return spec
            if target == WILDCARD_TARGET and wildcard is None:
                wildcard = spec
        return wildcard

    @property
    def active(self) -> bool:
        return any(spec.active for _, spec in self.specs)

    def wrap(self, channel, context: str = "", attempt: int = 0):
        """Wrap ``channel`` in a :class:`~repro.faults.channel.FaultyChannel`.

        Returns the channel untouched when no spec targets its mechanism.
        ``context`` identifies the job (e.g. ``"fft:CPU+GPU"``) and
        ``attempt`` the harness-level retry, so every logical transfer
        sequence is independently seeded yet fully reproducible.
        """
        from repro.faults.channel import FaultyChannel

        spec = self.spec_for(channel.mechanism)
        if spec is None:
            return channel
        seed = derive_seed(self.seed, str(channel.mechanism), context, str(attempt))
        return FaultyChannel(channel, spec, seed=seed)

    def describe(self) -> str:
        """Canonical round-trippable spec text (used in checkpoint signatures)."""
        clauses = [f"seed={self.seed}"]
        clauses.extend(f"{target}:{spec.describe()}" for target, spec in self.specs)
        return ";".join(clauses)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``--faults`` grammar into a plan."""
        if not text or not text.strip():
            raise FaultSpecError("empty fault spec")
        seed = 0
        specs = []
        for clause in text.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                try:
                    seed = int(clause[len("seed="):])
                except ValueError as exc:
                    raise FaultSpecError(f"bad seed in fault spec: {clause!r}") from exc
                continue
            if ":" not in clause:
                raise FaultSpecError(
                    f"fault clause {clause!r} needs the form TARGET:FAULT[,FAULT...]"
                )
            target, _, body = clause.partition(":")
            target = target.strip()
            kwargs = {}
            for item in body.split(","):
                item = item.strip()
                if not item:
                    continue
                key, sep, value = item.partition("=")
                key = key.strip()
                if not sep or key not in _SPEC_KEYS:
                    raise FaultSpecError(
                        f"unknown fault parameter {item!r}; use one of "
                        f"{sorted(_SPEC_KEYS)}"
                    )
                attr = _SPEC_KEYS[key]
                field_type = {f.name: f.type for f in fields(FaultSpec)}[attr]
                try:
                    kwargs[attr] = int(value) if field_type == "int" else float(value)
                except ValueError as exc:
                    raise FaultSpecError(
                        f"bad value for {key!r} in fault spec: {value!r}"
                    ) from exc
            if not kwargs:
                raise FaultSpecError(f"fault clause {clause!r} declares no faults")
            specs.append((target, FaultSpec(**kwargs)))
        if not specs:
            raise FaultSpecError(f"fault spec {text!r} declares no fault clauses")
        return cls(seed=seed, specs=tuple(specs))

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)
