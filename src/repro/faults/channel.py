"""The fault-injecting channel decorator.

:class:`FaultyChannel` wraps any :class:`~repro.comm.base.CommChannel` and
perturbs its timing according to a :class:`~repro.faults.spec.FaultSpec`,
drawing from a private seeded RNG so the same (seed, transfer sequence)
always produces the same faults:

- **transfer failures** — with probability ``fail_rate`` an attempt runs
  for its full exposed time and then fails; the channel re-attempts (a
  modeled retry whose wasted time lands on the critical path) up to
  ``attempts`` times, then raises
  :class:`~repro.errors.CommunicationError` so the harness-level retry
  machinery takes over;
- **bandwidth degradation** — with probability ``degrade_rate`` an episode
  starts that multiplies transfer time by ``degrade_factor`` for
  ``degrade_window`` consecutive transfers (the already-hidden portion
  stays hidden; the extra time is exposed);
- **dropped completions** — with probability ``drop_rate`` an asynchronous
  copy's completion is lost and its whole duration lands on the critical
  path (the overlap budget it claimed is wasted).

Every injection is published as a ``faults.*`` counter on the channel's
metric registry, so fault sweeps can report exactly what was injected.
"""

from __future__ import annotations

import random

from repro.comm.base import CommChannel, TransferResult
from repro.errors import CommunicationError
from repro.faults.spec import FaultSpec
from repro.trace.phase import CommPhase

__all__ = ["FaultyChannel"]


class FaultyChannel(CommChannel):
    """A decorator injecting seeded, deterministic faults into a channel."""

    def __init__(self, inner: CommChannel, spec: FaultSpec, seed: int = 0) -> None:
        # The wrapper reports the wrapped mechanism so simulators, cache
        # keys, and fault plans see through the decoration.
        self.mechanism = inner.mechanism
        super().__init__(inner.params)
        self.inner = inner
        self.spec = spec
        self.seed = seed
        self._rng = random.Random(seed)
        self._degrade_left = 0
        self._injected = self.metrics.counter(
            "faults.injected_failures",
            unit="failures",
            description="transfer attempts that were failed by injection",
        )
        self._modeled_retries = self.metrics.counter(
            "faults.modeled_retries",
            unit="retries",
            description="channel-level re-attempts after an injected failure",
        )
        self._retry_seconds = self.metrics.counter(
            "faults.retry_seconds",
            unit="s",
            description="critical-path time wasted by failed attempts",
        )
        self._degraded = self.metrics.counter(
            "faults.degraded_transfers",
            unit="transfers",
            description="transfers serviced inside a degraded-bandwidth window",
        )
        self._dropped = self.metrics.counter(
            "faults.dropped_completions",
            unit="transfers",
            description="async copies whose completion (and overlap) was lost",
        )
        self._aborted = self.metrics.counter(
            "faults.aborted_transfers",
            unit="transfers",
            description="transfers that failed every modeled attempt",
        )

    def _timing(self, phase: CommPhase, overlap_window: float) -> TransferResult:
        spec = self.spec
        rng = self._rng
        # Bandwidth degradation episodes: once triggered, the next
        # `degrade_window` transfers (this one included) run slowed.
        if (
            self._degrade_left == 0
            and spec.degrade_rate > 0.0
            and rng.random() < spec.degrade_rate
        ):
            self._degrade_left = spec.degrade_window
        slowdown = 1.0
        if self._degrade_left > 0:
            slowdown = spec.degrade_factor
            self._degrade_left -= 1
            self._degraded.inc()

        wasted = 0.0
        for attempt in range(1, spec.attempts + 1):
            base = self.inner._timing(phase, overlap_window)
            total, exposed = base.total, base.exposed
            if slowdown != 1.0:
                # The copy takes longer but the overlap window is unchanged,
                # so the hidden portion is capped at what already fit.
                hidden = total - exposed
                total *= slowdown
                exposed = total - hidden
            if (
                spec.drop_rate > 0.0
                and total > exposed
                and rng.random() < spec.drop_rate
            ):
                exposed = total
                self._dropped.inc()
            if spec.fail_rate > 0.0 and rng.random() < spec.fail_rate:
                self._injected.inc()
                self._retry_seconds.inc(exposed)
                wasted += exposed
                if attempt == spec.attempts:
                    self._aborted.inc()
                    raise CommunicationError(
                        f"injected fault: transfer {phase.label!r} over "
                        f"{self.mechanism} failed after {spec.attempts} "
                        "modeled attempt(s)"
                    )
                self._modeled_retries.inc()
                continue
            return TransferResult(total=wasted + total, exposed=wasted + exposed)
        raise AssertionError("unreachable: the attempt loop returns or raises")

    def stats(self):
        """Inner subclass-specific counters merged under this wrapper's.

        The inner channel's base counters are never incremented (transfers
        route through this wrapper), so the wrapper's own registry wins on
        name collisions.
        """
        merged = dict(self.inner.stats())
        merged.update(self.metrics.as_dict())
        return merged

    def reset_stats(self) -> None:
        super().reset_stats()
        self.inner.reset_stats()
        self._rng = random.Random(self.seed)
        self._degrade_left = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultyChannel {self.mechanism} seed={self.seed} "
            f"spec=({self.spec.describe()})>"
        )
