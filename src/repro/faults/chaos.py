"""Seeded, deterministic chaos scenarios for the exploration service.

Each :class:`ChaosScenario` stages one failure mode — a SIGKILLed sweep,
a worker process dying mid-job, torn or corrupted store bytes, injected
communication faults, queue overload, deadline pressure — and asserts
the system's contract: the run must end with **byte-identical-to-clean
results or an explicit typed error**; never a hang, never silent
corruption. A scenario that observes anything else raises
:class:`~repro.errors.ChaosError`, which the CLI maps to the integrity
exit code (5).

Determinism: every random choice (which entry to corrupt, which byte to
flip, which worker to kill) comes from a :class:`random.Random` seeded
with :func:`~repro.faults.spec.derive_seed` of the run seed and the
scenario id, so a CI failure reproduces locally with the same ``--seed``.
Timing choices (when a SIGKILL lands) are driven by *observed state*
(journal bytes on disk, a queued job's state), not sleeps, so outcomes —
though not instruction-exact schedules — are stable across machines.

Scenario catalogue (ids are load-bearing: lint rule L006 requires each
to appear in ``docs/chaos-scenarios.md`` and ``tests/faults/test_chaos.py``):

- ``sweep-sigkill`` — kill a ``rank --store`` subprocess mid-sweep;
  rerun must be byte-identical to a storeless run, with store hits.
- ``shard-sigkill`` — kill a sharded ``rank --checkpoint`` subprocess
  mid-sweep; the sharded rerun (and a flat resume of the same file)
  must be byte-identical to a clean flat run.
- ``worker-kill`` — SIGKILL a pool worker mid-batch; the supervised
  runner must deliver results equal to the serial clean run.
- ``store-torn-write`` — a crash mid-append leaves a torn record;
  reopening must recover the exact committed prefix.
- ``store-corrupt-entry`` — flip one committed payload byte; reads must
  quarantine and recompute, never serve the corrupt bytes.
- ``serve-comm-faults`` — inject comm faults against a live server; the
  response must be a typed error, and the next clean response
  byte-identical to the pre-fault baseline.
- ``serve-overload`` — flood a bounded queue; overflow must shed with a
  typed 503 while accepted jobs finish and readiness recovers.
- ``serve-deadline`` — an idle tiny-deadline request must time out
  typed (504); a queued detailed request under pressure must degrade to
  the fast model and say so.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ChaosError
from repro.faults.spec import derive_seed
from repro.obs.log import get_logger

__all__ = ["ChaosScenario", "ChaosOutcome", "ChaosContext", "scenarios", "run_scenarios"]

_log = get_logger("faults.chaos")

#: Hard wall-clock bound on any single scenario: "never a hang" is part
#: of the contract, so a scenario that outlives this is itself a failure.
SCENARIO_TIMEOUT = 120.0


@dataclass(frozen=True)
class ChaosScenario:
    """One registered failure-mode scenario."""

    id: str
    description: str
    run: Callable[["ChaosContext"], str] = field(repr=False, compare=False)


@dataclass(frozen=True)
class ChaosOutcome:
    """The verdict for one scenario run."""

    scenario: str
    seed: int
    ok: bool
    detail: str

    def line(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        return f"[{status}] {self.scenario} (seed {self.seed}): {self.detail}"


@dataclass
class ChaosContext:
    """Per-scenario execution context: seeded RNG and a scratch directory."""

    scenario_id: str
    seed: int
    workdir: Path
    rng: random.Random

    def fail(self, message: str) -> "ChaosError":
        return ChaosError(f"{self.scenario_id}: {message}")

    # -- subprocess CLI helper --------------------------------------------

    def cli_env(self) -> Dict[str, str]:
        """Environment for ``python -m repro.cli`` subprocesses."""
        import repro

        src = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src if not existing else f"{src}{os.pathsep}{existing}"
        return env

    def run_cli(
        self, *args: str, timeout: float = SCENARIO_TIMEOUT
    ) -> Tuple[int, bytes]:
        """Run the CLI to completion; returns (exit code, stdout bytes)."""
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", *args],
            env=self.cli_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            timeout=timeout,
        )
        return proc.returncode, proc.stdout

    def spawn_cli(self, *args: str) -> "subprocess.Popen[bytes]":
        return subprocess.Popen(
            [sys.executable, "-m", "repro.cli", *args],
            env=self.cli_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )


_REGISTRY: "Dict[str, ChaosScenario]" = {}


def _scenario(scenario_id: str, description: str):
    def register(func: Callable[[ChaosContext], str]) -> Callable[[ChaosContext], str]:
        _REGISTRY[scenario_id] = ChaosScenario(
            id=scenario_id, description=description, run=func
        )
        return func

    return register


def scenarios() -> List[ChaosScenario]:
    """Every registered scenario, in registration order."""
    return list(_REGISTRY.values())


def run_scenarios(
    ids: Optional[List[str]] = None, seed: int = 0
) -> List[ChaosOutcome]:
    """Run the selected (default: all) scenarios; never raises per-scenario.

    Each scenario gets its own scratch directory and a RNG derived from
    ``(seed, scenario id)``. Failures are captured as non-``ok`` outcomes
    so one broken scenario cannot mask the rest; the CLI turns any
    non-``ok`` outcome into the integrity exit code.
    """
    selected = ids or [s.id for s in scenarios()]
    outcomes: List[ChaosOutcome] = []
    for scenario_id in selected:
        scenario = _REGISTRY.get(scenario_id)
        if scenario is None:
            known = ", ".join(sorted(_REGISTRY))
            raise ChaosError(f"unknown chaos scenario {scenario_id!r}; known: {known}")
        with tempfile.TemporaryDirectory(prefix=f"chaos-{scenario_id}-") as tmp:
            context = ChaosContext(
                scenario_id=scenario_id,
                seed=seed,
                workdir=Path(tmp),
                rng=random.Random(derive_seed(seed, "chaos", scenario_id)),
            )
            started = time.monotonic()
            try:
                detail = scenario.run(context)
                ok = True
            except ChaosError as exc:
                detail = str(exc)
                ok = False
            except Exception as exc:  # noqa: BLE001 - verdict boundary
                detail = f"unexpected {type(exc).__name__}: {exc}"
                ok = False
            elapsed = time.monotonic() - started
            if ok and elapsed > SCENARIO_TIMEOUT:
                ok = False
                detail = f"scenario exceeded its {SCENARIO_TIMEOUT:g}s bound"
            outcomes.append(
                ChaosOutcome(scenario=scenario_id, seed=seed, ok=ok, detail=detail)
            )
            _log.debug("%s", outcomes[-1].line())
    return outcomes


# -- store scenarios --------------------------------------------------------


def _seed_store(context: ChaosContext, root: Path, entries: int = 8) -> Dict[str, bytes]:
    """Populate a store with deterministic payloads; returns key->payload."""
    from repro.store import ResultStore

    payloads = {
        f"result/{context.rng.getrandbits(128):032x}": bytes(
            context.rng.getrandbits(8) for _ in range(context.rng.randrange(64, 256))
        )
        for _ in range(entries)
    }
    with ResultStore(root) as store:
        for key, payload in payloads.items():
            store.put_bytes(key, payload)
    return payloads


@_scenario(
    "store-torn-write",
    "a crash mid-append leaves a torn record; reopening recovers the "
    "exact committed prefix",
)
def _store_torn_write(context: ChaosContext) -> str:
    from repro.store import ResultStore

    root = context.workdir / "store"
    payloads = _seed_store(context, root)
    segment = next((root / "segments").glob("seg-*.jsonl"))
    # A crash between segment-append and journal-commit: committed bytes
    # followed by a torn, unjournaled record — and a torn journal line too.
    torn = b'{"k": "result/torn", "s": "deadbeef", "p": "QUJD'
    with open(segment, "ab") as handle:
        handle.write(torn[: context.rng.randrange(1, len(torn))])
    with open(root / "journal.jsonl", "ab") as handle:
        handle.write(b'{"segment": "seg-000001.jsonl", "le')
    with ResultStore(root) as store:
        if len(store) != len(payloads):
            raise context.fail(
                f"expected {len(payloads)} entries after recovery, got {len(store)}"
            )
        for key, payload in payloads.items():
            read = store.get_bytes(key)
            if read != payload:
                raise context.fail(f"entry {key} not byte-identical after recovery")
        report = store.verify()
        if not report.ok:
            raise context.fail(f"recovered store fails verify: {report.summary()}")
    return f"recovered {len(payloads)} committed entries, torn tail dropped"


@_scenario(
    "store-corrupt-entry",
    "one committed payload byte flipped on disk; reads quarantine and "
    "recompute, never serve corrupt bytes",
)
def _store_corrupt_entry(context: ChaosContext) -> str:
    from repro.store import ResultStore

    root = context.workdir / "store"
    payloads = _seed_store(context, root)
    victim = context.rng.choice(sorted(payloads))
    segment = next((root / "segments").glob("seg-*.jsonl"))
    raw = segment.read_bytes()
    lines = raw.split(b"\n")
    for i, line in enumerate(lines):
        if victim.encode() in line:
            record = json.loads(line)
            # Flip one character inside the base64 payload field.
            payload_text = record["p"]
            at = context.rng.randrange(len(payload_text) - 1)
            flipped = (
                payload_text[:at]
                + ("A" if payload_text[at] != "A" else "B")
                + payload_text[at + 1 :]
            )
            corrupt = line.replace(
                payload_text.encode("ascii"), flipped.encode("ascii")
            )
            # Same length: offsets of later records stay valid, exactly
            # like in-place bit rot.
            if len(corrupt) != len(line):
                raise context.fail("corruption stage changed the record length")
            lines[i] = corrupt
            break
    else:
        raise context.fail(f"victim record {victim} not found in segment")
    segment.write_bytes(b"\n".join(lines))
    with ResultStore(root) as store:
        report = store.verify()
        if report.ok or victim not in report.corrupt:
            raise context.fail("verify did not flag the corrupted entry")
        read = store.get_bytes(victim)
        if read is not None:
            raise context.fail("corrupt entry was served instead of quarantined")
        if store.corruptions < 1:
            raise context.fail("corruption was not counted")
        # The caller's contract: a miss means recompute-and-put repairs it.
        store.put_bytes(victim, payloads[victim])
        repaired = store.get_bytes(victim)
        if repaired != payloads[victim]:
            raise context.fail("repaired entry is not byte-identical")
        report = store.verify()
        if not report.ok:
            raise context.fail(f"store still corrupt after repair: {report.summary()}")
        intact = [k for k in payloads if k != victim]
        for key in intact:
            if store.get_bytes(key) != payloads[key]:
                raise context.fail(f"unrelated entry {key} damaged")
    return "corrupt entry quarantined, recomputed byte-identical, store verifies"


# -- process-kill scenarios -------------------------------------------------


@_scenario(
    "sweep-sigkill",
    "SIGKILL a rank --store sweep mid-run; the rerun is byte-identical "
    "to a clean run with a nonzero store hit rate",
)
def _sweep_sigkill(context: ChaosContext) -> str:
    from repro.store import ResultStore

    store_dir = context.workdir / "store"
    rank_args = ("rank", "--sample", "0", "--top", "5")
    code, clean = context.run_cli(*rank_args)
    if code != 0:
        raise context.fail(f"clean rank exited {code}")
    proc = context.spawn_cli(*rank_args, "--store", str(store_dir))
    journal = store_dir / "journal.jsonl"
    deadline = time.monotonic() + SCENARIO_TIMEOUT / 2
    killed = False
    try:
        # Kill as soon as at least one entry is durably committed — the
        # interesting window where the store is mid-sweep.
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break
            if journal.exists() and journal.stat().st_size > 0:
                proc.send_signal(signal.SIGKILL)
                killed = True
                break
            time.sleep(0.002)
        proc.wait(timeout=SCENARIO_TIMEOUT / 2)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
    code, rerun = context.run_cli(*rank_args, "--store", str(store_dir))
    if code != 0:
        raise context.fail(f"rerun against the killed store exited {code}")
    if rerun != clean:
        raise context.fail("rerun output is not byte-identical to the clean run")
    with ResultStore(store_dir) as store:
        entries = len(store)
        report = store.verify()
    if entries == 0:
        raise context.fail("store is empty after the killed sweep + rerun")
    if not report.ok:
        raise context.fail(f"store fails verify after the kill: {report.summary()}")
    # A warm pass must be served from the store (nonzero hit rate).
    code, stats_out = context.run_cli(*rank_args, "--store", str(store_dir), "--stats")
    if code != 0:
        raise context.fail(f"warm stats rerun exited {code}")
    store_line = next(
        (
            line
            for line in stats_out.decode("utf-8", "replace").splitlines()
            if line.startswith("[store]")
        ),
        "",
    )
    hits = 0
    for token in store_line.split():
        if token.startswith("hits="):
            hits = int(token[len("hits=") :])
    if hits == 0:
        raise context.fail(f"warm rerun reported no store hits ({store_line!r})")
    return (
        f"{'killed mid-sweep' if killed else 'sweep finished before the kill'}; "
        f"rerun byte-identical, {entries} entries verified, warm hits={hits}"
    )


@_scenario(
    "shard-sigkill",
    "SIGKILL a sharded rank --checkpoint sweep mid-run; the sharded rerun "
    "resumes the checkpoint and is byte-identical to the clean flat run",
)
def _shard_sigkill(context: ChaosContext) -> str:
    checkpoint = context.workdir / "sweep.jsonl"
    rank_args = ("rank", "--sample", "0", "--top", "5")
    shard_args = (*rank_args, "--shards", "4", "--jobs", "2")
    code, clean = context.run_cli(*rank_args)
    if code != 0:
        raise context.fail(f"clean flat rank exited {code}")
    proc = context.spawn_cli(*shard_args, "--checkpoint", str(checkpoint))
    deadline = time.monotonic() + SCENARIO_TIMEOUT / 2
    killed = False
    try:
        # Kill as soon as the checkpoint holds bytes — mid-sweep, with
        # some shard waves committed and others still in flight.
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break
            if checkpoint.exists() and checkpoint.stat().st_size > 0:
                proc.send_signal(signal.SIGKILL)
                killed = True
                break
            time.sleep(0.002)
        proc.wait(timeout=SCENARIO_TIMEOUT / 2)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
    code, rerun = context.run_cli(*shard_args, "--checkpoint", str(checkpoint))
    if code != 0:
        raise context.fail(f"sharded rerun against the checkpoint exited {code}")
    if rerun != clean:
        raise context.fail(
            "sharded rerun output is not byte-identical to the clean flat run"
        )
    # Checkpoint interop: a *flat* resume of the sharded file must agree.
    code, flat_resume = context.run_cli(*rank_args, "--checkpoint", str(checkpoint))
    if code != 0:
        raise context.fail(f"flat resume of the sharded checkpoint exited {code}")
    if flat_resume != clean:
        raise context.fail(
            "flat resume of the sharded checkpoint is not byte-identical"
        )
    entries = max(0, len(checkpoint.read_bytes().splitlines()) - 1)
    return (
        f"{'killed mid-sweep' if killed else 'sweep finished before the kill'}; "
        f"sharded rerun and flat resume byte-identical "
        f"({entries} checkpointed evaluation(s))"
    )


def _kill_worker_once(payload: "Tuple[object, str, bool]") -> object:
    """Worker-side: optionally SIGKILL this worker once, then simulate.

    The sentinel file makes the kill happen exactly once across pool
    rebuilds and retries, so the scenario is deterministic: first
    dispatch of the chosen job murders its worker, every later dispatch
    computes normally.
    """
    from repro.exec.job import run_sim_job

    job, sentinel, should_kill = payload
    if should_kill and not os.path.exists(sentinel):
        with open(sentinel, "x"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return run_sim_job(job)


@_scenario(
    "worker-kill",
    "SIGKILL a pool worker mid-batch; the supervised runner rebuilds the "
    "pool and delivers results equal to the serial clean run",
)
def _worker_kill(context: ChaosContext) -> str:
    from repro.config.presets import CASE_STUDIES
    from repro.core.explorer import Explorer
    from repro.exec.job import run_sim_job
    from repro.exec.retry import RetryPolicy
    from repro.exec.runner import ParallelRunner
    from repro.exec.stats import RunStats
    from repro.kernels.registry import all_kernels

    explorer = Explorer()
    kernels = list(all_kernels())[:3]
    cases = list(CASE_STUDIES.values())
    jobs = [
        explorer._job(explorer.trace_cache.get(kernel), case=case)
        for kernel in kernels
        for case in cases
    ]
    clean = [run_sim_job(job) for job in jobs]
    sentinel = str(context.workdir / "killed-once")
    victim = context.rng.randrange(len(jobs))
    stats = RunStats()
    runner = ParallelRunner(jobs=2, stats=stats, retry=RetryPolicy(retries=2))
    payloads = [(job, sentinel, index == victim) for index, job in enumerate(jobs)]
    chaotic = runner.map(_kill_worker_once, payloads, stage="chaos-worker-kill")
    if not os.path.exists(sentinel):
        raise context.fail("the victim worker never died (sentinel missing)")
    if len(chaotic) != len(clean):
        raise context.fail("result count differs from the clean run")
    for index, (a, b) in enumerate(zip(clean, chaotic)):
        if a != b:
            raise context.fail(
                f"result {index} ({jobs[index].describe()}) differs after the kill"
            )
    restarts = stats.metrics.as_dict().get("worker_restarts", 0)
    if restarts < 1:
        raise context.fail("the runner never recorded a worker restart")
    return (
        f"worker killed on job {victim}; pool rebuilt ({restarts:g} restart(s)), "
        f"all {len(jobs)} results equal the clean run"
    )


# -- live-server scenarios --------------------------------------------------


def _http(
    method: str, url: str, body: Optional[dict] = None, timeout: float = 60.0
) -> Tuple[int, bytes]:
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _typed_error(body: bytes, *expected: str) -> str:
    """The typed error name carried in a JSON error body, validated."""
    payload = json.loads(body)
    name = payload.get("error", "")
    if expected and name not in expected:
        raise ChaosError(
            f"expected a typed error in {sorted(expected)}, got {name!r}"
        )
    return name


def _first_point_label() -> str:
    from repro.core.space import DesignSpace

    return DesignSpace().feasible_points()[0].label


@_scenario(
    "serve-comm-faults",
    "inject comm faults against a live server: the response is a typed "
    "error and the next clean response is byte-identical to the baseline",
)
def _serve_comm_faults(context: ChaosContext) -> str:
    from repro.serve import run_server

    server = run_server(port=0, store_path=str(context.workdir / "store"))
    server.start()
    try:
        base = server.address
        label = _first_point_label()
        status, baseline = _http("POST", base + "/v1/evaluate", {"point": label})
        if status != 200:
            raise context.fail(f"clean baseline request failed with {status}")
        fault_seed = context.rng.randrange(1, 1 << 16)
        status, body = _http(
            "POST",
            base + "/v1/evaluate",
            {
                "point": label,
                "faults": f"seed={fault_seed};*:fail=1.0,attempts=1000",
            },
        )
        if status == 200:
            raise context.fail(
                "total comm failure produced a 200; faults were not injected"
            )
        name = _typed_error(body, "SimulationError", "CommunicationError")
        status, after = _http("POST", base + "/v1/evaluate", {"point": label})
        if status != 200 or after != baseline:
            raise context.fail(
                "clean response after the fault is not byte-identical to the "
                "baseline"
            )
        status, _ = _http("GET", base + "/readyz")
        if status != 200:
            raise context.fail("service unready after a fault-injected request")
    finally:
        server.stop()
    return f"faulted request failed typed ({name}); clean path unaffected"


@_scenario(
    "serve-overload",
    "flood a bounded queue: overflow sheds with a typed 503 while "
    "accepted jobs finish and readiness recovers",
)
def _serve_overload(context: ChaosContext) -> str:
    from repro.serve import run_server

    server = run_server(port=0, queue_depth=2, deadline=90.0)
    server.start()
    try:
        base = server.address
        label = _first_point_label()
        kernels = ["reduction", "matrix mul", "convolution", "dct"]
        # One slow occupier (detailed, several seconds) plus enough
        # distinct detailed submissions to pass the pending bound of 2.
        accepted: List[str] = []
        shed = 0
        shed_name = ""
        for index, kernel in enumerate(kernels):
            status, body = _http(
                "POST",
                base + "/v1/jobs",
                {"point": label, "fidelity": "detailed", "kernels": [kernel]},
            )
            if status == 202:
                accepted.append(json.loads(body)["job"])
            elif status == 503:
                shed += 1
                shed_name = _typed_error(body, "QueueFullError")
            else:
                raise context.fail(f"submission {index} got unexpected status {status}")
        if shed == 0:
            raise context.fail("queue never shed load past its bound")
        if not accepted:
            raise context.fail("no submission was accepted")
        # Coalescing: resubmitting an accepted request returns the same job.
        status, body = _http(
            "POST",
            base + "/v1/jobs",
            {"point": label, "fidelity": "detailed", "kernels": [kernels[0]]},
        )
        coalesced = status == 202 and json.loads(body)["job"] == accepted[0]
        # Every accepted job must finish (never a hang), then readiness
        # must recover.
        deadline = time.monotonic() + SCENARIO_TIMEOUT / 2
        states: Dict[str, str] = {}
        while time.monotonic() < deadline:
            states = {}
            for job_id in accepted:
                _, body = _http("GET", f"{base}/v1/jobs/{job_id}")
                states[job_id] = json.loads(body).get("state", "?")
            if all(state in ("done", "error") for state in states.values()):
                break
            time.sleep(0.1)
        unfinished = [j for j, s in states.items() if s not in ("done", "error")]
        if unfinished:
            raise context.fail(f"jobs never finished: {unfinished}")
        status, _ = _http("GET", base + "/readyz")
        if status != 200:
            raise context.fail("service did not recover readiness after the flood")
    finally:
        server.stop()
    return (
        f"{len(accepted)} accepted, {shed} shed typed ({shed_name}), "
        f"coalescing {'confirmed' if coalesced else 'not observed'}, "
        "all jobs finished, ready again"
    )


@_scenario(
    "serve-deadline",
    "deadline pressure: an idle tiny-deadline detailed request times out "
    "typed (504); a queued one degrades to the fast model and says so",
)
def _serve_deadline(context: ChaosContext) -> str:
    import threading

    from repro.serve import run_server

    server = run_server(port=0, deadline=60.0)
    server.start()
    try:
        base = server.address
        label = _first_point_label()
        # Idle queue, deadline far below detailed cost: the wait must be
        # abandoned with a typed 504 (the job itself completes later).
        status, body = _http(
            "POST",
            base + "/v1/evaluate",
            {"point": label, "fidelity": "detailed", "deadline": 0.05},
        )
        if status != 504:
            raise context.fail(f"tiny-deadline request got {status}, wanted 504")
        _typed_error(body, "DeadlineExceededError")
        # Occupy the dispatcher with a slow detailed job, then queue a
        # detailed request whose deadline will be half-burned by the
        # wait: it must degrade to the fast model and be flagged.
        occupier: Dict[str, object] = {}

        def occupy() -> None:
            occupier["response"] = _http(
                "POST",
                base + "/v1/evaluate",
                {"point": label, "fidelity": "detailed", "kernels": ["k-mean"]},
            )

        thread = threading.Thread(target=occupy)
        thread.start()
        time.sleep(0.2)  # let the occupier reach the dispatcher
        status, body = _http(
            "POST",
            base + "/v1/evaluate",
            {
                "point": label,
                "fidelity": "detailed",
                "kernels": ["reduction"],
                "deadline": 1.0,
            },
        )
        thread.join(timeout=SCENARIO_TIMEOUT / 2)
        if thread.is_alive():
            raise context.fail("the occupier request never returned")
        if status == 200:
            payload = json.loads(body)
            if not payload.get("degraded") or payload.get("fidelity") != "fast":
                raise context.fail(
                    "pressured request succeeded without degrading "
                    f"(fidelity={payload.get('fidelity')!r}, "
                    f"degraded={payload.get('degraded')!r})"
                )
            outcome = "degraded to fast (flagged)"
        elif status == 504:
            # Also a valid contract outcome: typed, not hung.
            _typed_error(body, "DeadlineExceededError")
            outcome = "timed out typed"
        else:
            raise context.fail(f"pressured request got unexpected status {status}")
    finally:
        server.stop()
    return f"idle tiny deadline -> typed 504; pressured request {outcome}"
