"""Deterministic fault injection for communication channels.

The paper's second design axis — the hardware communication mechanism —
is modeled as perfectly reliable everywhere else in this package. Real
CPU–accelerator paths are not: transfers fail and retry, links degrade,
and asynchronous completions get lost. ``repro.faults`` makes those
behaviours a first-class, *seeded* part of the model so Figure 5/7-style
experiments can be re-run under fault sweeps and design points compared
by how gracefully they degrade:

- :mod:`repro.faults.spec` — :class:`FaultSpec` / :class:`FaultPlan`
  (pure data, hashable, picklable) and the ``--faults`` grammar;
- :mod:`repro.faults.channel` — :class:`FaultyChannel`, the decorator
  that injects failures, degradation windows, and dropped completions
  into any :class:`~repro.comm.base.CommChannel`.

The ranking side lives in :mod:`repro.core.resilience`
(:func:`~repro.core.resilience.fault_sensitivity`).
"""

from repro.faults.channel import FaultyChannel
from repro.faults.spec import (
    MECHANISM_TOKENS,
    WILDCARD_TARGET,
    FaultPlan,
    FaultSpec,
    derive_seed,
)

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "FaultyChannel",
    "MECHANISM_TOKENS",
    "WILDCARD_TARGET",
    "derive_seed",
]
