"""The design-space axes of the paper, as enumerations.

Section II of the paper organizes heterogeneous memory-system design along
orthogonal axes; every subsystem in this library keys off these enums:

- :class:`AddressSpaceKind` — Section II-A (Figure 1);
- :class:`CommMechanism` — the hardware connection options of Table I;
- :class:`LocalityScheme` — Section II-B;
- :class:`CoherenceKind` and :class:`ConsistencyModel` — the remaining
  columns of Table I.

Keeping them in one leaf module lets ``repro.addrspace``, ``repro.comm``,
``repro.locality`` and ``repro.core`` share the vocabulary without import
cycles.
"""

from __future__ import annotations

import enum

__all__ = [
    "ProcessingUnit",
    "AddressSpaceKind",
    "CommMechanism",
    "LocalityPolicy",
    "LocalityScheme",
    "CoherenceKind",
    "ConsistencyModel",
]


class ProcessingUnit(enum.Enum):
    """A processing unit (PU): the paper's term for either side.

    The paper uses CPUs for general-purpose processors and GPUs for
    accelerators but notes the discussion applies to any accelerator.
    """

    CPU = "cpu"
    GPU = "gpu"

    @property
    def other(self) -> "ProcessingUnit":
        """The peer PU."""
        return ProcessingUnit.GPU if self is ProcessingUnit.CPU else ProcessingUnit.CPU

    def __str__(self) -> str:
        return self.value


class AddressSpaceKind(enum.Enum):
    """Memory address space design options (Figure 1).

    - ``UNIFIED``: one address space; any task runs on any PU without
      explicit transfers (may still be non-coherent, e.g. CUDA 4.0 UVA).
    - ``DISJOINT``: private spaces; explicit communication always required.
    - ``PARTIALLY_SHARED``: a shared window plus private spaces; ownership
      control optional (LRB).
    - ``ADSM``: asymmetric — the CPU sees everything, the GPU only its own
      space (GMAC).
    """

    UNIFIED = "unified"
    DISJOINT = "disjoint"
    PARTIALLY_SHARED = "partially-shared"
    ADSM = "adsm"

    @property
    def short(self) -> str:
        """The abbreviation used in the paper's figures (UNI/DIS/PAS/ADSM)."""
        return {
            AddressSpaceKind.UNIFIED: "UNI",
            AddressSpaceKind.DISJOINT: "DIS",
            AddressSpaceKind.PARTIALLY_SHARED: "PAS",
            AddressSpaceKind.ADSM: "ADSM",
        }[self]

    @property
    def has_shared_window(self) -> bool:
        """Whether some addresses are reachable by both PUs."""
        return self is not AddressSpaceKind.DISJOINT

    def __str__(self) -> str:
        return self.value


class CommMechanism(enum.Enum):
    """Hardware communication mechanisms between PUs (Table I connections)."""

    PCIE = "pci-e"
    PCI_APERTURE = "pci-aperture"
    MEMORY_CONTROLLER = "memory-controller"
    INTERCONNECT = "interconnection"
    DMA_ASYNC = "dma-async"
    IDEAL = "ideal"

    @property
    def off_chip(self) -> bool:
        """Whether transfers leave the chip (PCI-E family)."""
        return self in (CommMechanism.PCIE, CommMechanism.PCI_APERTURE, CommMechanism.DMA_ASYNC)

    def __str__(self) -> str:
        return self.value


class LocalityPolicy(enum.Enum):
    """How locality is managed at one storage level."""

    IMPLICIT = "implicit"
    EXPLICIT = "explicit"

    @property
    def short(self) -> str:
        return "impl" if self is LocalityPolicy.IMPLICIT else "expl"

    def __str__(self) -> str:
        return self.value


class LocalityScheme(enum.Enum):
    """Locality-management schemes for the shared memory space (§II-B).

    Names encode (CPU-private policy[, GPU-private policy], shared policy).
    A single private policy means both PUs manage their private caches the
    same way. ``HYBRID_SHARED`` is §II-B5: the shared level itself supports
    both implicit and explicit management with a protecting replacement
    policy.
    """

    IMPLICIT_PRIVATE_IMPLICIT_SHARED = "impl-pri-impl-shared"
    IMPLICIT_PRIVATE_EXPLICIT_SHARED = "impl-pri-expl-shared"
    EXPLICIT_PRIVATE_IMPLICIT_SHARED = "expl-pri-impl-shared"
    EXPLICIT_PRIVATE_EXPLICIT_SHARED = "expl-pri-expl-shared"
    MIXED_PRIVATE_EXPLICIT_SHARED = "impl-pri-expl-pri-expl-shared"
    MIXED_PRIVATE_IMPLICIT_SHARED = "impl-pri-expl-pri-impl-shared"
    HYBRID_SHARED = "hybrid-second-level"
    PRIVATE_ONLY = "private-only"

    @property
    def shared_policy(self) -> "LocalityPolicy | None":
        """Policy of the shared level; None for disjoint (no shared space)
        and for the hybrid scheme (both policies coexist)."""
        mapping = {
            LocalityScheme.IMPLICIT_PRIVATE_IMPLICIT_SHARED: LocalityPolicy.IMPLICIT,
            LocalityScheme.IMPLICIT_PRIVATE_EXPLICIT_SHARED: LocalityPolicy.EXPLICIT,
            LocalityScheme.EXPLICIT_PRIVATE_IMPLICIT_SHARED: LocalityPolicy.IMPLICIT,
            LocalityScheme.EXPLICIT_PRIVATE_EXPLICIT_SHARED: LocalityPolicy.EXPLICIT,
            LocalityScheme.MIXED_PRIVATE_EXPLICIT_SHARED: LocalityPolicy.EXPLICIT,
            LocalityScheme.MIXED_PRIVATE_IMPLICIT_SHARED: LocalityPolicy.IMPLICIT,
        }
        return mapping.get(self)

    @property
    def mixed_private(self) -> bool:
        """Whether the two PUs use different private-cache policies."""
        return self in (
            LocalityScheme.MIXED_PRIVATE_EXPLICIT_SHARED,
            LocalityScheme.MIXED_PRIVATE_IMPLICIT_SHARED,
            LocalityScheme.HYBRID_SHARED,
        )

    def __str__(self) -> str:
        return self.value


class CoherenceKind(enum.Enum):
    """How coherent data is kept coherent across PUs."""

    NONE = "none"
    HARDWARE_DIRECTORY = "hw-directory"
    HARDWARE_SNOOP = "hw-snoop"
    SOFTWARE_RUNTIME = "sw-runtime"
    HYBRID = "hw-sw-hybrid"
    OWNERSHIP = "ownership"

    @property
    def hardware(self) -> bool:
        """Whether a hardware protocol keeps the shared window coherent."""
        return self in (CoherenceKind.HARDWARE_DIRECTORY, CoherenceKind.HARDWARE_SNOOP)

    @property
    def protocol(self) -> str:
        """The :mod:`repro.mem.coherence` protocol variant this kind maps to
        (``"none"``, ``"snoop"`` or ``"directory"``). Software-managed kinds
        map to ``"none"``: they pay at synchronization points, not per access.
        """
        if self is CoherenceKind.HARDWARE_DIRECTORY:
            return "directory"
        if self is CoherenceKind.HARDWARE_SNOOP:
            return "snoop"
        return "none"

    def __str__(self) -> str:
        return self.value


class ConsistencyModel(enum.Enum):
    """Memory consistency models appearing in Table I."""

    STRONG = "strong"
    WEAK = "weak"
    RELEASE = "release"
    CENTRALIZED_RELEASE = "centralized-release"

    def __str__(self) -> str:
        return self.value
