"""Registry of existing heterogeneous computing memory systems (Table I)."""

from repro.systems.descriptors import SystemDescriptor
from repro.systems.registry import (
    all_systems,
    system,
    systems_by_address_space,
    table1_rows,
)

__all__ = [
    "SystemDescriptor",
    "all_systems",
    "system",
    "systems_by_address_space",
    "table1_rows",
]
