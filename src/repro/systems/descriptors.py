"""Descriptor type for Table I entries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.taxonomy import (
    AddressSpaceKind,
    CoherenceKind,
    CommMechanism,
    ConsistencyModel,
)

__all__ = ["SystemDescriptor"]


@dataclass(frozen=True)
class SystemDescriptor:
    """One row of the paper's Table I.

    Free-text columns (``shared_data_use``, ``synchronization``,
    ``locality``) are kept verbatim from the paper; the enum columns drive
    queries. ``heterogeneous`` is False only for Rigel, which the paper
    includes "just to compare".
    """

    name: str
    address_space: AddressSpaceKind
    connection: CommMechanism
    coherence: Optional[CoherenceKind]
    coherence_note: str
    shared_data_use: str
    consistency: Optional[ConsistencyModel]
    synchronization: str
    locality: str
    heterogeneous: bool = True
    reference: str = ""
    #: Verbatim Table I connection text when it names something more
    #: specific than the mechanism enum (e.g. "cache/FSB", "BUS").
    connection_note: str = ""

    def as_row(self) -> Tuple[str, ...]:
        """(scheme, address space, connection, coherence, shared-data use,
        consistency, synchronization, locality) — Table I column order."""
        return (
            self.name,
            self.address_space.value,
            self.connection_note or str(self.connection),
            self.coherence_note or (str(self.coherence) if self.coherence else "-"),
            self.shared_data_use or "-",
            str(self.consistency) if self.consistency else "-",
            self.synchronization or "-",
            self.locality or "-",
        )
