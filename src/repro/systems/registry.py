"""The thirteen Table I systems.

The paper's observation from this table: "none of the heterogeneous
computing systems has employed a unified, fully-coherent, strong-consistent
memory system yet. Most proposed/existing systems have disjoint memory
systems ... Currently, only CUDA 4.0 provides the unified memory address
space, but it does not provide any locality management for the shared
space."
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import DesignSpaceError
from repro.systems.descriptors import SystemDescriptor
from repro.taxonomy import (
    AddressSpaceKind,
    CoherenceKind,
    CommMechanism,
    ConsistencyModel,
)

__all__ = ["all_systems", "system", "systems_by_address_space", "table1_rows"]

_SYSTEMS: Dict[str, SystemDescriptor] = {
    d.name: d
    for d in (
        SystemDescriptor(
            name="CPU+CUDA*",
            address_space=AddressSpaceKind.DISJOINT,
            connection=CommMechanism.PCIE,
            coherence=None,
            coherence_note="-",
            shared_data_use="NA",
            consistency=ConsistencyModel.WEAK,
            synchronization="-",
            locality="impl-pri-expl-pri",
            reference="[29]",
        ),
        SystemDescriptor(
            name="EXOCHI",
            address_space=AddressSpaceKind.UNIFIED,
            connection=CommMechanism.MEMORY_CONTROLLER,
            coherence=CoherenceKind.HARDWARE_DIRECTORY,
            coherence_note="can be coherent",
            shared_data_use="CHI runtime API",
            consistency=ConsistencyModel.WEAK,
            synchronization="unknown",
            locality="impl-pri",
            reference="[34]",
        ),
        SystemDescriptor(
            name="CPU+LRB",
            address_space=AddressSpaceKind.PARTIALLY_SHARED,
            connection=CommMechanism.PCIE,
            coherence=CoherenceKind.OWNERSHIP,
            coherence_note="coherent only in LRB/CPU",
            shared_data_use="type qualifier, ownership",
            consistency=ConsistencyModel.WEAK,
            synchronization="APIs",
            locality="impl-pri",
            reference="[31]",
        ),
        SystemDescriptor(
            name="COMIC",
            address_space=AddressSpaceKind.UNIFIED,
            connection=CommMechanism.INTERCONNECT,
            coherence=CoherenceKind.HARDWARE_DIRECTORY,
            coherence_note="directory",
            shared_data_use="COMIC API functions",
            consistency=ConsistencyModel.CENTRALIZED_RELEASE,
            synchronization="barrier function",
            locality="expl-pri-impl-pri-impl-shared",
            reference="[21]",
        ),
        SystemDescriptor(
            name="Rigel",
            address_space=AddressSpaceKind.UNIFIED,
            connection=CommMechanism.INTERCONNECT,
            coherence=CoherenceKind.HYBRID,
            coherence_note="HW/SW",
            shared_data_use="global memory operation",
            consistency=ConsistencyModel.WEAK,
            synchronization="implicit barrier/Rigel LPI",
            locality="expl",
            heterogeneous=False,
            reference="[19]",
        ),
        SystemDescriptor(
            name="GMAC",
            address_space=AddressSpaceKind.ADSM,
            connection=CommMechanism.PCIE,
            coherence=CoherenceKind.SOFTWARE_RUNTIME,
            coherence_note="GMAC protocol",
            shared_data_use="global memory operation",
            consistency=ConsistencyModel.WEAK,
            synchronization="sync API",
            locality="expl-private-impl-shared",
            reference="[10]",
        ),
        SystemDescriptor(
            name="Sandy Bridge",
            address_space=AddressSpaceKind.DISJOINT,
            connection=CommMechanism.MEMORY_CONTROLLER,
            coherence=None,
            coherence_note="-",
            shared_data_use="-",
            consistency=ConsistencyModel.WEAK,
            synchronization="-",
            locality="impl-priv-exp-priv",
            reference="[17]",
        ),
        SystemDescriptor(
            name="Fusion",
            address_space=AddressSpaceKind.DISJOINT,
            connection=CommMechanism.MEMORY_CONTROLLER,
            coherence=None,
            coherence_note="-",
            shared_data_use="-",
            consistency=None,
            synchronization="-",
            locality="-",
            reference="[3]",
        ),
        SystemDescriptor(
            name="IBM Cell",
            address_space=AddressSpaceKind.DISJOINT,
            connection=CommMechanism.INTERCONNECT,
            coherence=None,
            coherence_note="-",
            shared_data_use="-",
            consistency=ConsistencyModel.WEAK,
            synchronization="-",
            locality="expl-pri-impl-priv-impl-shared",
            reference="[16]",
        ),
        SystemDescriptor(
            name="Xbox 360",
            address_space=AddressSpaceKind.DISJOINT,
            connection=CommMechanism.MEMORY_CONTROLLER,
            connection_note="cache/FSB",
            coherence=None,
            coherence_note="-",
            shared_data_use="Lock-set cache, copy",
            consistency=None,
            synchronization="-",
            locality="impl-priv-exp-shared",
            reference="[4]",
        ),
        SystemDescriptor(
            name="CUBA",
            address_space=AddressSpaceKind.DISJOINT,
            connection=CommMechanism.INTERCONNECT,
            connection_note="BUS",
            coherence=None,
            coherence_note="-",
            shared_data_use="direct access to local storage",
            consistency=ConsistencyModel.WEAK,
            synchronization="-",
            locality="exp-priv",
            reference="[9]",
        ),
        SystemDescriptor(
            name="CUDA 4.0",
            address_space=AddressSpaceKind.UNIFIED,
            connection=CommMechanism.PCIE,
            connection_note="-",
            coherence=None,
            coherence_note="-",
            shared_data_use="explicit copy",
            consistency=ConsistencyModel.WEAK,
            synchronization="-",
            locality="exp-priv",
        ),
        SystemDescriptor(
            name="OpenCL",
            address_space=AddressSpaceKind.UNIFIED,
            connection=CommMechanism.PCIE,
            connection_note="-",
            coherence=None,
            coherence_note="-",
            shared_data_use="explicit copy",
            consistency=ConsistencyModel.WEAK,
            synchronization="-",
            locality="exp-priv",
        ),
    )
}


def all_systems() -> Tuple[SystemDescriptor, ...]:
    """All Table I systems, in table order."""
    return tuple(_SYSTEMS.values())


def system(name: str) -> SystemDescriptor:
    """Look up a Table I system by name (case-insensitive)."""
    for key, value in _SYSTEMS.items():
        if key.lower() == name.lower():
            return value
    raise DesignSpaceError(f"unknown system {name!r}; known: {', '.join(_SYSTEMS)}")


def systems_by_address_space(kind: AddressSpaceKind) -> Tuple[SystemDescriptor, ...]:
    """Table I systems using a given address space."""
    return tuple(d for d in _SYSTEMS.values() if d.address_space is kind)


def table1_rows() -> List[Tuple[str, ...]]:
    """All rows in Table I column order."""
    return [d.as_row() for d in _SYSTEMS.values()]
