"""Trace (de)serialization to plain JSON-compatible dictionaries.

Traces are structural (phases + mixes) rather than per-instruction, so JSON
is compact enough; per-instruction streams are always regenerated lazily.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.errors import TraceError
from repro.taxonomy import ProcessingUnit
from repro.trace.mix import InstructionMix
from repro.trace.phase import (
    CommPhase,
    Direction,
    ParallelPhase,
    Phase,
    Segment,
    SequentialPhase,
)
from repro.trace.stream import KernelTrace

__all__ = ["trace_to_dict", "trace_from_dict", "save_trace", "load_trace"]

_FORMAT_VERSION = 1


def _segment_to_dict(segment: Segment) -> Dict[str, Any]:
    return {
        "pu": segment.pu.value,
        "mix": segment.mix.as_dict(),
        "base_addr": segment.base_addr,
        "footprint_bytes": segment.footprint_bytes,
        "elem_bytes": segment.elem_bytes,
        "label": segment.label,
    }


def _segment_from_dict(data: Dict[str, Any]) -> Segment:
    return Segment(
        pu=ProcessingUnit(data["pu"]),
        mix=InstructionMix.from_dict(data["mix"]),
        base_addr=data.get("base_addr", 0),
        footprint_bytes=data.get("footprint_bytes", 0),
        elem_bytes=data.get("elem_bytes", 4),
        label=data.get("label", ""),
    )


def _phase_to_dict(phase: Phase) -> Dict[str, Any]:
    if isinstance(phase, SequentialPhase):
        return {"kind": "sequential", "label": phase.label, "segment": _segment_to_dict(phase.segment)}
    if isinstance(phase, ParallelPhase):
        return {
            "kind": "parallel",
            "label": phase.label,
            "cpu": _segment_to_dict(phase.cpu),
            "gpu": _segment_to_dict(phase.gpu),
        }
    if isinstance(phase, CommPhase):
        return {
            "kind": "comm",
            "label": phase.label,
            "direction": phase.direction.value,
            "num_bytes": phase.num_bytes,
            "num_objects": phase.num_objects,
            "first_touch": phase.first_touch,
        }
    raise TraceError(f"cannot serialize phase type {type(phase).__name__}")


def _phase_from_dict(data: Dict[str, Any]) -> Phase:
    kind = data.get("kind")
    if kind == "sequential":
        return SequentialPhase(label=data.get("label", ""), segment=_segment_from_dict(data["segment"]))
    if kind == "parallel":
        return ParallelPhase(
            label=data.get("label", ""),
            cpu=_segment_from_dict(data["cpu"]),
            gpu=_segment_from_dict(data["gpu"]),
        )
    if kind == "comm":
        return CommPhase(
            label=data.get("label", ""),
            direction=Direction(data["direction"]),
            num_bytes=data["num_bytes"],
            num_objects=data.get("num_objects", 1),
            first_touch=data.get("first_touch", False),
        )
    raise TraceError(f"unknown phase kind {kind!r}")


def trace_to_dict(trace: KernelTrace) -> Dict[str, Any]:
    """Serialize a trace to a JSON-compatible dictionary."""
    return {
        "format": _FORMAT_VERSION,
        "name": trace.name,
        "phases": [_phase_to_dict(p) for p in trace.phases],
    }


def trace_from_dict(data: Dict[str, Any]) -> KernelTrace:
    """Reconstruct a trace from :func:`trace_to_dict` output."""
    version = data.get("format")
    if version != _FORMAT_VERSION:
        raise TraceError(f"unsupported trace format version {version!r}")
    return KernelTrace(
        name=data["name"],
        phases=tuple(_phase_from_dict(p) for p in data["phases"]),
    )


def save_trace(trace: KernelTrace, path: Union[str, Path]) -> None:
    """Write a trace to a JSON file."""
    Path(path).write_text(json.dumps(trace_to_dict(trace), indent=2))


def load_trace(path: Union[str, Path]) -> KernelTrace:
    """Read a trace previously written with :func:`save_trace`."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise TraceError(f"{path}: not valid JSON: {exc}") from exc
    return trace_from_dict(data)
