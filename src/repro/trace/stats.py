"""Trace statistics: the quantities reported in the paper's Table III."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.trace.stream import KernelTrace

__all__ = ["TraceStats", "compute_stats"]


@dataclass(frozen=True)
class TraceStats:
    """One row of Table III."""

    name: str
    compute_pattern: str
    cpu_instructions: int
    gpu_instructions: int
    serial_instructions: int
    num_communications: int
    initial_transfer_bytes: int

    def as_row(self) -> Tuple[str, str, int, int, int, int, int]:
        """Tuple in Table III column order."""
        return (
            self.name,
            self.compute_pattern,
            self.cpu_instructions,
            self.gpu_instructions,
            self.serial_instructions,
            self.num_communications,
            self.initial_transfer_bytes,
        )


def compute_stats(trace: KernelTrace, compute_pattern: str = "") -> TraceStats:
    """Derive the Table III quantities from a trace."""
    return TraceStats(
        name=trace.name,
        compute_pattern=compute_pattern,
        cpu_instructions=trace.cpu_instructions,
        gpu_instructions=trace.gpu_instructions,
        serial_instructions=trace.serial_instructions,
        num_communications=trace.num_communications,
        initial_transfer_bytes=trace.initial_transfer_bytes,
    )
