"""Phases and segments: the structural units of a kernel trace.

Table III's "compute pattern" column describes each kernel as a sequence of
parallel, merge (communication), and sequential phases. We model exactly
that: a :class:`KernelTrace` (see :mod:`repro.trace.stream`) is an ordered
list of phases, where a parallel phase holds one segment per PU (the paper
splits the computational work evenly, §IV-B).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.errors import TraceError
from repro.isa.opcodes import CODE_TO_OPCODE, OPCODE_TO_CODE, Opcode
from repro.taxonomy import ProcessingUnit
from repro.trace.instruction import Instruction
from repro.trace.mix import InstructionMix

__all__ = [
    "Direction",
    "Segment",
    "Phase",
    "SequentialPhase",
    "ParallelPhase",
    "CommPhase",
]


class Direction(enum.Enum):
    """Transfer direction between host (CPU) and device (GPU) memory."""

    H2D = "host-to-device"
    D2H = "device-to-host"

    @property
    def source(self) -> ProcessingUnit:
        return ProcessingUnit.CPU if self is Direction.H2D else ProcessingUnit.GPU

    @property
    def destination(self) -> ProcessingUnit:
        return self.source.other

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Segment:
    """A run of instructions on one PU with a known mix and footprint.

    ``base_addr``/``footprint_bytes`` describe the virtual-address region the
    segment's memory operations touch; the detailed simulator expands the
    mix into a deterministic instruction stream striding through that region
    (see :meth:`instructions`). ``elem_bytes`` is the access granularity.
    """

    pu: ProcessingUnit
    mix: InstructionMix
    base_addr: int = 0
    footprint_bytes: int = 0
    elem_bytes: int = 4
    label: str = ""

    def __post_init__(self) -> None:
        if self.footprint_bytes < 0:
            raise TraceError("footprint must be non-negative")
        if self.elem_bytes <= 0:
            raise TraceError("element size must be positive")
        if self.mix.memory_ops > 0 and self.footprint_bytes < self.elem_bytes:
            raise TraceError(
                f"segment {self.label!r} has memory ops but footprint "
                f"{self.footprint_bytes} < element size {self.elem_bytes}"
            )
        if self.base_addr < 0:
            raise TraceError("base address must be non-negative")

    def raw_ops(self) -> "Iterator[tuple[int, int, int, bool]]":
        """Expand the mix into compact ``(code, addr, size, taken)`` tuples.

        This is the single source of truth for the deterministic expansion:
        :meth:`instructions` decodes these records into
        :class:`~repro.trace.instruction.Instruction` objects and the
        compiled hot path (:mod:`repro.perf.compiled`) packs them into
        parallel numpy arrays without ever materializing objects.

        ``code`` indexes :data:`repro.isa.opcodes.CODE_TO_OPCODE`; ``addr``
        is ``-1`` for non-memory records.

        Memory operations stride sequentially through the footprint (the
        kernels studied are streaming workloads), wrapping on overflow;
        compute and branch instructions are interleaved evenly between
        memory operations so the detailed core models see a realistic
        dependency-free schedule. SIMD memory operations access
        ``elem_bytes`` per lane-compressed record.
        """
        mix = self.mix
        simd = self.pu is ProcessingUnit.GPU
        total_mem = mix.memory_ops
        total_other = mix.compute_ops + mix.branches
        # Emission plan: spread `other` instructions between memory ops.
        per_slot = total_other // (total_mem + 1) if total_mem else total_other
        remainder = total_other - per_slot * total_mem if total_mem else 0

        int_alu_code = OPCODE_TO_CODE[Opcode.INT_ALU]
        fp_alu_code = OPCODE_TO_CODE[Opcode.FP_ALU]
        simd_alu_code = OPCODE_TO_CODE[Opcode.SIMD_ALU]
        branch_code = OPCODE_TO_CODE[Opcode.BRANCH]
        load_code = OPCODE_TO_CODE[
            Opcode.SIMD_LOAD if simd and mix.simd_loads > 0 else Opcode.LOAD
        ]
        store_code = OPCODE_TO_CODE[
            Opcode.SIMD_STORE if simd and mix.simd_stores > 0 else Opcode.STORE
        ]

        counters = {
            "int_alu": mix.int_alu,
            "fp_alu": mix.fp_alu,
            "simd_alu": mix.simd_alu,
            "branches": mix.branches,
        }
        branch_seq = [0]

        def emit_other(count: int) -> "Iterator[tuple[int, int, int, bool]]":
            emitted = 0
            while emitted < count:
                if counters["simd_alu"] > 0:
                    counters["simd_alu"] -= 1
                    yield (simd_alu_code, -1, 0, False)
                elif counters["fp_alu"] > 0:
                    counters["fp_alu"] -= 1
                    yield (fp_alu_code, -1, 0, False)
                elif counters["int_alu"] > 0:
                    counters["int_alu"] -= 1
                    yield (int_alu_code, -1, 0, False)
                elif counters["branches"] > 0:
                    counters["branches"] -= 1
                    # Loop-shaped control flow: backward branches taken,
                    # with an exit (not-taken) every 16th iteration — a
                    # pattern gshare can learn but not trivially.
                    branch_seq[0] += 1
                    yield (branch_code, -1, 0, branch_seq[0] % 16 != 0)
                else:
                    break
                emitted += 1

        # Memory-op schedule: loads first interleaved with stores 2:1 when
        # both present, addresses striding through the footprint.
        loads_left = mix.load_ops
        stores_left = mix.store_ops
        offset = 0
        span = max(self.footprint_bytes, self.elem_bytes)
        base_addr = self.base_addr
        elem_bytes = self.elem_bytes

        emitted_mem = 0
        while loads_left or stores_left:
            yield from emit_other(per_slot + (1 if emitted_mem < remainder else 0))
            do_load = loads_left and (not stores_left or loads_left >= 2 * stores_left or emitted_mem % 3 != 2)
            addr = base_addr + (offset % span)
            offset += elem_bytes
            if do_load:
                loads_left -= 1
                yield (load_code, addr, elem_bytes, False)
            else:
                stores_left -= 1
                yield (store_code, addr, elem_bytes, False)
            emitted_mem += 1
        # Trailing non-memory instructions.
        yield from emit_other(sum(counters.values()))

    def instructions(self) -> Iterator[Instruction]:
        """Expand the mix into a deterministic instruction stream.

        Decodes :meth:`raw_ops` into :class:`Instruction` objects; see
        there for the emission schedule.
        """
        opcodes = CODE_TO_OPCODE
        for code, addr, size, taken in self.raw_ops():
            if addr >= 0:
                yield Instruction(opcodes[code], addr=addr, size=size)
            else:
                yield Instruction(opcodes[code], taken=taken)

    def scaled(self, factor: float) -> "Segment":
        """A segment with its mix scaled (footprint kept)."""
        return Segment(
            pu=self.pu,
            mix=self.mix.scaled(factor),
            base_addr=self.base_addr,
            footprint_bytes=self.footprint_bytes,
            elem_bytes=self.elem_bytes,
            label=self.label,
        )


@dataclass(frozen=True)
class Phase:
    """Base class for trace phases; use one of the concrete subclasses."""

    label: str = ""


@dataclass(frozen=True)
class SequentialPhase(Phase):
    """Serial code: runs on the CPU while the GPU idles."""

    segment: Segment = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.segment is None:
            raise TraceError("sequential phase requires a segment")
        if self.segment.pu is not ProcessingUnit.CPU:
            raise TraceError("sequential phases run on the CPU")


@dataclass(frozen=True)
class ParallelPhase(Phase):
    """CPU and GPU halves executing concurrently (even work split)."""

    cpu: Segment = None  # type: ignore[assignment]
    gpu: Segment = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.cpu is None or self.gpu is None:
            raise TraceError("parallel phase requires both a CPU and a GPU segment")
        if self.cpu.pu is not ProcessingUnit.CPU:
            raise TraceError("cpu segment must target the CPU")
        if self.gpu.pu is not ProcessingUnit.GPU:
            raise TraceError("gpu segment must target the GPU")


@dataclass(frozen=True)
class CommPhase(Phase):
    """A data transfer between PUs.

    ``num_objects`` is the number of logical buffers moved (it determines
    how many acquire/transfer API calls a partially shared space issues);
    ``first_touch`` marks transfers whose target pages have never been
    mapped in the shared window (they page-fault under LRB).
    """

    direction: Direction = Direction.H2D
    num_bytes: int = 0
    num_objects: int = 1
    first_touch: bool = False

    def __post_init__(self) -> None:
        if self.num_bytes < 0:
            raise TraceError("transfer size must be non-negative")
        if self.num_objects < 1:
            raise TraceError("a communication moves at least one object")
