"""Instruction-mix statistics for a trace segment.

The fast (segment-level) simulator never looks at individual instructions;
it consumes these aggregate counts, which is exactly the information the
paper's Table III reports per kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.errors import TraceError

__all__ = ["InstructionMix"]


@dataclass(frozen=True)
class InstructionMix:
    """Counts of dynamic instructions by category.

    SIMD counts are in *instructions* (one SIMD instruction covers
    ``simd_width`` lanes), matching how GPU traces are lane-compressed.
    """

    int_alu: int = 0
    fp_alu: int = 0
    simd_alu: int = 0
    loads: int = 0
    stores: int = 0
    simd_loads: int = 0
    simd_stores: int = 0
    branches: int = 0
    specials: int = 0

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if not isinstance(value, int):
                raise TraceError(f"mix field {f.name} must be an int, got {type(value).__name__}")
            if value < 0:
                raise TraceError(f"mix field {f.name} must be non-negative, got {value}")

    @property
    def total(self) -> int:
        """Total dynamic instruction count."""
        return sum(getattr(self, f.name) for f in fields(self))

    @property
    def compute_ops(self) -> int:
        return self.int_alu + self.fp_alu + self.simd_alu

    @property
    def memory_ops(self) -> int:
        return self.loads + self.stores + self.simd_loads + self.simd_stores

    @property
    def load_ops(self) -> int:
        return self.loads + self.simd_loads

    @property
    def store_ops(self) -> int:
        return self.stores + self.simd_stores

    @property
    def simd_ops(self) -> int:
        return self.simd_alu + self.simd_loads + self.simd_stores

    def __add__(self, other: "InstructionMix") -> "InstructionMix":
        if not isinstance(other, InstructionMix):
            return NotImplemented
        return InstructionMix(
            **{f.name: getattr(self, f.name) + getattr(other, f.name) for f in fields(self)}
        )

    def scaled(self, factor: float) -> "InstructionMix":
        """A mix with every count scaled and rounded to the nearest int.

        Used when scaling workloads down for the detailed simulator.
        """
        if factor < 0:
            raise TraceError(f"scale factor must be non-negative, got {factor}")
        return InstructionMix(
            **{f.name: int(round(getattr(self, f.name) * factor)) for f in fields(self)}
        )

    def as_dict(self) -> dict:
        """Plain-dict view (for serialization)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "InstructionMix":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise TraceError(f"unknown mix fields: {sorted(unknown)}")
        return cls(**data)
