"""Kernel traces: the top-level unit the simulators consume."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

from repro.errors import TraceError
from repro.trace.phase import CommPhase, ParallelPhase, Phase, SequentialPhase

__all__ = ["KernelTrace"]


@dataclass(frozen=True)
class KernelTrace:
    """An ordered sequence of phases for one kernel execution.

    Invariants enforced by :meth:`validate` (called on construction):

    - at least one phase;
    - every phase is one of the three concrete phase types;
    - the trace contains at least one communication if it contains any
      parallel phase (data starts on the CPU, §IV-B, so the GPU's input
      must be transferred and its output returned).
    """

    name: str
    phases: Tuple[Phase, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "phases", tuple(self.phases))
        self.validate()

    def validate(self) -> None:
        """Check structural invariants; raise :class:`TraceError` if broken."""
        if not self.name:
            raise TraceError("kernel trace requires a name")
        if not self.phases:
            raise TraceError(f"{self.name}: trace has no phases")
        for phase in self.phases:
            if not isinstance(phase, (SequentialPhase, ParallelPhase, CommPhase)):
                raise TraceError(
                    f"{self.name}: unknown phase type {type(phase).__name__}"
                )
        if self.parallel_phases and not self.comm_phases:
            raise TraceError(
                f"{self.name}: parallel phases require at least one communication"
            )

    @property
    def sequential_phases(self) -> List[SequentialPhase]:
        return [p for p in self.phases if isinstance(p, SequentialPhase)]

    @property
    def parallel_phases(self) -> List[ParallelPhase]:
        return [p for p in self.phases if isinstance(p, ParallelPhase)]

    @property
    def comm_phases(self) -> List[CommPhase]:
        return [p for p in self.phases if isinstance(p, CommPhase)]

    @property
    def cpu_instructions(self) -> int:
        """Dynamic instructions executed by the CPU in parallel phases
        (the paper's Table III "CPU" column)."""
        return sum(p.cpu.mix.total for p in self.parallel_phases)

    @property
    def gpu_instructions(self) -> int:
        """Dynamic instructions executed by the GPU (Table III "GPU")."""
        return sum(p.gpu.mix.total for p in self.parallel_phases)

    @property
    def serial_instructions(self) -> int:
        """Dynamic instructions in sequential phases (Table III "serial")."""
        return sum(p.segment.mix.total for p in self.sequential_phases)

    @property
    def num_communications(self) -> int:
        """Number of communication phases (Table III "# of communications")."""
        return len(self.comm_phases)

    @property
    def initial_transfer_bytes(self) -> int:
        """Size of the first transfer (Table III "initial transfer data size")."""
        comms = self.comm_phases
        return comms[0].num_bytes if comms else 0

    @property
    def total_transfer_bytes(self) -> int:
        """Bytes moved across all communication phases."""
        return sum(p.num_bytes for p in self.comm_phases)

    def iter_phases(self) -> Iterator[Phase]:
        return iter(self.phases)

    def scaled(self, factor: float) -> "KernelTrace":
        """Scale compute phases by ``factor`` (communication kept intact).

        Used to shrink traces for the detailed cycle-approximate simulator;
        communication sizes are preserved because the paper's transfer
        sizes, not instruction counts, drive communication cost.
        """
        if factor <= 0:
            raise TraceError(f"scale factor must be positive, got {factor}")
        scaled_phases: List[Phase] = []
        for phase in self.phases:
            if isinstance(phase, SequentialPhase):
                scaled_phases.append(
                    SequentialPhase(label=phase.label, segment=phase.segment.scaled(factor))
                )
            elif isinstance(phase, ParallelPhase):
                scaled_phases.append(
                    ParallelPhase(
                        label=phase.label,
                        cpu=phase.cpu.scaled(factor),
                        gpu=phase.gpu.scaled(factor),
                    )
                )
            else:
                scaled_phases.append(phase)
        return KernelTrace(name=self.name, phases=tuple(scaled_phases))
