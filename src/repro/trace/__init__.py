"""Trace model for the trace-driven simulators.

A kernel's execution is a sequence of **phases** following the paper's
"compute pattern" column in Table III:

- :class:`~repro.trace.phase.SequentialPhase` — serial code on the CPU;
- :class:`~repro.trace.phase.ParallelPhase` — CPU and GPU halves running
  concurrently (the paper splits work evenly between PUs);
- :class:`~repro.trace.phase.CommPhase` — a data transfer between PUs.

Each compute phase carries an :class:`~repro.trace.mix.InstructionMix`
(segment-level view, consumed by the fast simulator) and can lazily expand
into concrete :class:`~repro.trace.instruction.Instruction` records
(consumed by the detailed simulator).
"""

from repro.trace.instruction import Instruction
from repro.trace.mix import InstructionMix
from repro.trace.phase import (
    CommPhase,
    Direction,
    ParallelPhase,
    Phase,
    Segment,
    SequentialPhase,
)
from repro.trace.stream import KernelTrace
from repro.trace.stats import TraceStats, compute_stats
from repro.trace.encode import trace_from_dict, trace_to_dict, load_trace, save_trace

__all__ = [
    "Instruction",
    "InstructionMix",
    "Segment",
    "Phase",
    "SequentialPhase",
    "ParallelPhase",
    "CommPhase",
    "Direction",
    "KernelTrace",
    "TraceStats",
    "compute_stats",
    "trace_to_dict",
    "trace_from_dict",
    "save_trace",
    "load_trace",
]
