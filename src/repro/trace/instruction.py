"""Concrete per-instruction trace records.

The detailed simulator consumes these one at a time; they are produced
lazily by :meth:`repro.trace.phase.Segment.instructions` so that full-size
traces (up to ~8.6M records for matrix multiply, Table III) never need to be
materialized in memory at once.

Construction is deliberately cheap: the dataclass uses ``__slots__`` and
does **not** validate per instance, because trace generation constructs
millions of records on the simulator's hot path. Validation lives in
:meth:`Instruction.validate` and the :meth:`Instruction.checked`
constructor (used by anything building instructions from untrusted input),
and can be re-enabled globally for every construction with
:func:`set_validation` or the ``REPRO_TRACE_VALIDATE=1`` environment
variable (a debug aid for chasing malformed generators).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.errors import TraceError
from repro.isa.opcodes import Opcode
from repro.isa.special import SpecialOp

__all__ = ["Instruction", "set_validation", "validation_enabled"]

#: When True, every Instruction construction validates (debug mode).
_VALIDATE_ON_INIT = os.environ.get("REPRO_TRACE_VALIDATE", "") not in ("", "0")


def set_validation(enabled: bool) -> bool:
    """Toggle per-construction validation; returns the previous setting."""
    global _VALIDATE_ON_INIT
    previous = _VALIDATE_ON_INIT
    _VALIDATE_ON_INIT = bool(enabled)
    return previous


def validation_enabled() -> bool:
    """Whether every construction currently validates."""
    return _VALIDATE_ON_INIT


@dataclass(frozen=True, slots=True)
class Instruction:
    """One dynamic instruction.

    ``addr``/``size`` are set for memory operations; ``taken`` for branches;
    ``special``/``payload_bytes`` for special instructions (``payload_bytes``
    is the transfer size of an ``api-pci``).
    """

    opcode: Opcode
    addr: Optional[int] = None
    size: int = 0
    taken: bool = False
    special: Optional[SpecialOp] = None
    payload_bytes: int = 0

    def __post_init__(self) -> None:
        if _VALIDATE_ON_INIT:
            self.validate()

    def validate(self) -> "Instruction":
        """Check structural invariants; raise :class:`TraceError` if broken.

        Returns ``self`` so decoders can validate in an expression.
        """
        if self.opcode.is_memory:
            if self.addr is None or self.size <= 0:
                raise TraceError(
                    f"memory op {self.opcode} requires addr and positive size"
                )
        elif self.addr is not None:
            raise TraceError(f"non-memory op {self.opcode} must not carry an address")
        if self.opcode is Opcode.SPECIAL:
            if self.special is None:
                raise TraceError("SPECIAL opcode requires a SpecialOp")
        elif self.special is not None:
            raise TraceError(f"{self.opcode} must not carry a SpecialOp")
        if self.payload_bytes < 0:
            raise TraceError("payload_bytes must be non-negative")
        return self

    @classmethod
    def checked(
        cls,
        opcode: Opcode,
        addr: Optional[int] = None,
        size: int = 0,
        taken: bool = False,
        special: Optional[SpecialOp] = None,
        payload_bytes: int = 0,
    ) -> "Instruction":
        """Construct and validate — the entry point for untrusted input."""
        return cls(opcode, addr, size, taken, special, payload_bytes).validate()

    @property
    def is_load(self) -> bool:
        return self.opcode.is_load

    @property
    def is_store(self) -> bool:
        return self.opcode.is_store

    @classmethod
    def compute(cls, simd: bool = False, fp: bool = False) -> "Instruction":
        """An ALU instruction of the requested flavour."""
        if simd:
            return cls(Opcode.SIMD_ALU)
        return cls(Opcode.FP_ALU if fp else Opcode.INT_ALU)

    @classmethod
    def load(cls, addr: int, size: int = 4, simd: bool = False) -> "Instruction":
        return cls(Opcode.SIMD_LOAD if simd else Opcode.LOAD, addr=addr, size=size)

    @classmethod
    def store(cls, addr: int, size: int = 4, simd: bool = False) -> "Instruction":
        return cls(Opcode.SIMD_STORE if simd else Opcode.STORE, addr=addr, size=size)

    @classmethod
    def branch(cls, taken: bool = True) -> "Instruction":
        return cls(Opcode.BRANCH, taken=taken)

    @classmethod
    def special_op(cls, op: SpecialOp, payload_bytes: int = 0) -> "Instruction":
        return cls(Opcode.SPECIAL, special=op, payload_bytes=payload_bytes)
