"""The service's bounded, coalescing job queue.

Two robustness properties live here, independent of HTTP:

- **Bounded depth with explicit backpressure** — a submission past
  ``max_depth`` pending jobs raises
  :class:`~repro.errors.QueueFullError` (the daemon answers 503) instead
  of growing the queue without bound under overload.
- **Request coalescing** — two submissions with the same canonical
  request key share one :class:`Job` (and therefore one computation);
  the duplicate submitter just gets the existing handle back.

Completed jobs stay addressable for polling (``GET /v1/jobs/<id>``) in a
bounded history; the oldest finished jobs age out first.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from concurrent.futures import Future
from typing import Deque, Dict, Optional, Tuple

from repro.errors import QueueFullError

__all__ = ["Job", "CoalescingQueue"]

#: Job lifecycle states exposed by ``GET /v1/jobs/<id>``.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
ERROR = "error"


class Job:
    """One queued evaluation: request, identity, and a result future."""

    __slots__ = ("id", "key", "request", "future", "_state", "enqueued_at", "waiters")

    def __init__(self, job_id: str, key: str, request: dict, enqueued_at: float) -> None:
        self.id = job_id
        self.key = key
        self.request = request
        self.future: "Future[dict]" = Future()
        self._state = PENDING
        self.enqueued_at = enqueued_at
        #: Submissions sharing this job (1 = no coalescing happened).
        self.waiters = 1

    @property
    def state(self) -> str:
        """Lifecycle state; only the owning queue transitions it."""
        return self._state

    def describe(self) -> dict:
        """The polling view: state plus result/error when finished."""
        info: dict = {"job": self.id, "state": self.state, "waiters": self.waiters}
        if self.state == DONE:
            info["result"] = self.future.result()
        elif self.state == ERROR:
            exc = self.future.exception()
            info["error"] = type(exc).__name__
            info["detail"] = str(exc)
        return info


class CoalescingQueue:
    """FIFO of :class:`Job`\\ s with coalescing, bounds, and history."""

    def __init__(self, max_depth: int = 32, history: int = 256) -> None:
        if max_depth < 1:
            raise QueueFullError(f"queue depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self.history = history
        self._cond = threading.Condition()
        self._pending: Deque[Job] = deque()
        #: key -> live (pending or running) job, the coalescing map.
        self._live: Dict[str, Job] = {}
        #: id -> job for every job still addressable, oldest first.
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._counter = 0
        self.submitted = 0
        self.coalesced = 0
        self.shed = 0

    def __len__(self) -> int:
        with self._cond:
            return len(self._pending)

    def submit(self, key: str, request: dict, now: float) -> Tuple[Job, bool]:
        """Enqueue (or coalesce onto) the job for ``key``.

        Returns ``(job, created)``; ``created`` is ``False`` when the
        submission coalesced onto an in-flight job. Raises
        :class:`QueueFullError` when the pending queue is at capacity —
        the caller sheds load with a typed response, never blocks.
        """
        with self._cond:
            live = self._live.get(key)
            if live is not None:
                live.waiters += 1
                self.coalesced += 1
                return live, False
            if len(self._pending) >= self.max_depth:
                self.shed += 1
                raise QueueFullError(
                    f"job queue is at capacity ({self.max_depth} pending); "
                    "retry later"
                )
            self._counter += 1
            job = Job(f"job-{self._counter:06d}", key, request, now)
            self._pending.append(job)
            self._live[key] = job
            self._jobs[job.id] = job
            self.submitted += 1
            self._trim_history()
            self._cond.notify()
            return job, True

    def next(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Dequeue the next pending job (marking it running), or ``None``."""
        with self._cond:
            if not self._pending:
                self._cond.wait(timeout)
            if not self._pending:
                return None
            job = self._pending.popleft()
            job._state = RUNNING
            return job

    def finish(self, job: Job, result: Optional[dict], error: Optional[BaseException]) -> None:
        """Resolve a job's future and retire it from the coalescing map."""
        with self._cond:
            self._live.pop(job.key, None)
            if error is not None:
                job._state = ERROR
                job.future.set_exception(error)
            else:
                job._state = DONE
                job.future.set_result(result or {})
            self._trim_history()

    def get(self, job_id: str) -> Optional[Job]:
        with self._cond:
            return self._jobs.get(job_id)

    def drain(self, error: BaseException) -> int:
        """Fail every pending job (service shutdown); returns the count."""
        with self._cond:
            drained = 0
            while self._pending:
                job = self._pending.popleft()
                self._live.pop(job.key, None)
                job._state = ERROR
                job.future.set_exception(error)
                drained += 1
            return drained

    def _trim_history(self) -> None:
        """Drop the oldest *finished* jobs beyond the history bound."""
        finished = [
            job_id
            for job_id, job in self._jobs.items()
            if job.state in (DONE, ERROR)
        ]
        excess = len(self._jobs) - self.history
        for job_id in finished:
            if excess <= 0:
                break
            del self._jobs[job_id]
            excess -= 1
