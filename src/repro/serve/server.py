"""The supervised exploration daemon (``repro-explore serve``).

:class:`ExplorationService` is the HTTP-free core — a dispatcher thread
draining the :class:`~repro.serve.queue.CoalescingQueue` through an
:class:`~repro.core.explorer.Explorer` — and :class:`ExplorationServer`
wraps it in a stdlib ``ThreadingHTTPServer``. Robustness behaviours:

- **Coalescing + backpressure** come from the queue: identical in-flight
  requests share one computation; past the depth bound, submissions get
  a typed :class:`~repro.errors.QueueFullError` (HTTP 503).
- **Deadlines** are per request: a waiter whose deadline passes gets
  :class:`~repro.errors.DeadlineExceededError` (HTTP 504) while the job
  itself runs to completion — its result still lands in the store for
  the next asker.
- **Degradation under deadline pressure** reuses the detailed→fast
  machinery: a ``detailed`` request that has already burned most of its
  deadline waiting in the queue is executed through the fast model
  instead, flagged ``degraded`` in the response.
- **Watchdog**: a crashed worker pool (the runner's supervision budget
  exhausted) fails the in-flight request with a typed error, then the
  service rebuilds its explorer — fresh pool — and keeps serving, up to
  a restart budget; past the budget it reports unready and sheds.
- **Warm start**: booting against a ``--store`` directory reopens the
  durable index, so previously computed evaluations are served from
  disk without simulating anything.

Health (``/healthz``), readiness (``/readyz``), and a ``/metrics``
scrape of the ``serve.``/``exec.``/``store.`` registries round out the
operational surface.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional

from repro.core.explorer import Explorer
from repro.core.space import DesignSpace
from repro.errors import (
    ConfigError,
    DeadlineExceededError,
    DesignSpaceError,
    QueueFullError,
    ReproError,
    ServeError,
    SimulationError,
    TraceError,
)
from repro.exec.job import SimJob
from repro.faults.spec import FaultPlan
from repro.kernels.base import Kernel
from repro.kernels.registry import all_kernels, kernel as kernel_by_name
from repro.obs.log import get_logger
from repro.obs.metrics import MetricRegistry
from repro.serve.queue import CoalescingQueue, Job
from repro.taxonomy import CommMechanism

__all__ = ["ExplorationService", "ExplorationServer", "run_server"]

_log = get_logger("serve")

#: Fraction of a request's deadline it may burn waiting in the queue
#: before a ``detailed`` evaluation degrades to the fast model.
DEGRADE_PRESSURE = 0.5

#: Fidelities a request may ask for.
FIDELITIES = ("fast", "detailed")


class ExplorationService:
    """Dispatcher + queue + watchdog around one (rebuildable) Explorer."""

    def __init__(
        self,
        explorer_factory: Callable[[], Explorer],
        queue_depth: int = 32,
        default_deadline: float = 30.0,
        watchdog_budget: int = 3,
        history: int = 256,
    ) -> None:
        if default_deadline <= 0:
            raise ConfigError(
                f"default deadline must be positive, got {default_deadline}"
            )
        if watchdog_budget < 0:
            raise ConfigError(
                f"watchdog budget must be >= 0, got {watchdog_budget}"
            )
        self._factory = explorer_factory
        self.explorer = explorer_factory()
        self.default_deadline = default_deadline
        self.watchdog_budget = watchdog_budget
        self.queue = CoalescingQueue(max_depth=queue_depth, history=history)
        self.metrics = MetricRegistry("serve")
        self._requests = self.metrics.counter(
            "requests", unit="requests", description="evaluation submissions"
        )
        self._completed = self.metrics.counter(
            "completed", unit="jobs", description="jobs finished successfully"
        )
        self._failed = self.metrics.counter(
            "failed", unit="jobs", description="jobs finished with a typed error"
        )
        self._deadline_timeouts = self.metrics.counter(
            "deadline_timeouts",
            unit="requests",
            description="waits abandoned past their deadline",
        )
        self._degraded = self.metrics.counter(
            "degraded",
            unit="jobs",
            description="detailed requests served by the fast model "
            "under deadline pressure",
        )
        self._watchdog_restarts = self.metrics.counter(
            "watchdog_restarts",
            unit="restarts",
            description="explorer rebuilds after a crashed worker pool",
        )
        self._queue_depth = self.metrics.gauge(
            "queue_depth", unit="jobs", description="pending jobs"
        )
        self._warm_entries = self.metrics.gauge(
            "warm_entries",
            unit="entries",
            description="store entries available at boot",
        )
        #: Valid design-point labels, resolved once at boot.
        self._points = {p.label: p for p in DesignSpace().feasible_points()}
        self._restarts_used = 0
        self._stop = threading.Event()
        self._ready = threading.Event()
        self._dispatcher = threading.Thread(
            target=self._run, name="serve-dispatcher", daemon=True
        )
        if self.explorer.store is not None:
            warm = len(self.explorer.store)
            self._warm_entries.set(warm)
            if warm:
                _log.info("warm start: %d stored evaluation(s) available", warm)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self._dispatcher.start()
        self._ready.set()

    def stop(self) -> None:
        self._stop.set()
        self._ready.clear()
        drained = self.queue.drain(ServeError("service shutting down"))
        if drained:
            _log.info("shutdown: failed %d pending job(s)", drained)
        self._dispatcher.join(timeout=10.0)

    @property
    def ready(self) -> bool:
        """Accepting work: dispatcher alive, restart budget not exhausted."""
        return (
            self._ready.is_set()
            and not self._stop.is_set()
            and self._dispatcher.is_alive()
        )

    @property
    def alive(self) -> bool:
        return not self._stop.is_set()

    # -- request intake ----------------------------------------------------

    def _canonical(self, request: dict) -> dict:
        """Validate and normalize a request body (ConfigError on bad input)."""
        if not isinstance(request, dict):
            raise ConfigError("request body must be a JSON object")
        if "rank" in request:
            return self._canonical_rank(request)
        point = request.get("point")
        if not isinstance(point, str) or point not in self._points:
            raise ConfigError(
                f"unknown design point {point!r}; labels look like "
                "'SHA+MAP/coarse/CC/strong'"
            )
        kernels = request.get("kernels") or [k.name for k in all_kernels()]
        if not isinstance(kernels, list) or not all(
            isinstance(name, str) for name in kernels
        ):
            raise ConfigError("kernels must be a list of kernel names")
        for name in kernels:
            kernel_by_name(name)  # raises ConfigError on unknown names
        fidelity = request.get("fidelity", "fast")
        if fidelity not in FIDELITIES:
            raise ConfigError(
                f"fidelity must be one of {FIDELITIES}, got {fidelity!r}"
            )
        deadline = request.get("deadline", self.default_deadline)
        if not isinstance(deadline, (int, float)) or deadline <= 0:
            raise ConfigError(f"deadline must be a positive number, got {deadline!r}")
        faults = request.get("faults")
        if faults is not None:
            if not isinstance(faults, str):
                raise ConfigError("faults must be a fault-spec string")
            FaultPlan.parse(faults)  # validate grammar up front
        return {
            "point": point,
            "kernels": list(kernels),
            "fidelity": fidelity,
            "deadline": float(deadline),
            "faults": faults,
        }

    def _canonical_rank(self, request: dict) -> dict:
        """Validate a rank-sweep request: ``{"rank": {...}}``.

        Rank jobs are the service's bulk workload — the full (or sampled)
        design space ranked in one job, sharded across the worker pool
        (:meth:`Explorer.rank_design_points` with ``shards``). They ride
        the same queue as point evaluations, so identical in-flight rank
        sweeps coalesce and backpressure applies unchanged.
        """
        spec = request.get("rank")
        if not isinstance(spec, dict):
            raise ConfigError("rank must be an object, e.g. {'rank': {}}")
        sample = spec.get("sample", 0)
        if not isinstance(sample, int) or sample < 0:
            raise ConfigError(f"rank.sample must be an integer >= 0, got {sample!r}")
        top = spec.get("top", 10)
        if not isinstance(top, int) or top < 1:
            raise ConfigError(f"rank.top must be an integer >= 1, got {top!r}")
        shards = spec.get("shards", "auto")
        if shards != "auto" and (not isinstance(shards, int) or shards < 1):
            raise ConfigError(
                f"rank.shards must be an integer >= 1 or 'auto', got {shards!r}"
            )
        if request.get("faults"):
            raise ConfigError("rank sweeps do not support fault injection")
        deadline = request.get("deadline", self.default_deadline)
        if not isinstance(deadline, (int, float)) or deadline <= 0:
            raise ConfigError(f"deadline must be a positive number, got {deadline!r}")
        return {
            "rank": {"sample": sample, "top": top, "shards": shards},
            "deadline": float(deadline),
            "faults": None,
        }

    def submit(self, request: dict) -> Job:
        """Queue (or coalesce) one evaluation; typed errors on bad input/full."""
        if not self.ready:
            raise QueueFullError("service is not accepting work (unready)")
        canonical = self._canonical(request)
        key = json.dumps(
            {k: v for k, v in canonical.items() if k != "deadline"}, sort_keys=True
        )
        job, created = self.queue.submit(key, canonical, time.monotonic())
        self._requests.inc()
        self._queue_depth.set(len(self.queue))
        if not created:
            _log.debug("coalesced request onto %s (%d waiters)", job.id, job.waiters)
        return job

    def evaluate(self, request: dict) -> dict:
        """Submit and wait (the synchronous ``POST /v1/evaluate`` path).

        Raises :class:`DeadlineExceededError` when the deadline passes
        first; the job keeps running and its result still reaches the
        store.
        """
        canonical = self._canonical(request)
        job = self.submit(canonical)
        try:
            return job.future.result(timeout=canonical["deadline"])
        except FutureTimeoutError:
            self._deadline_timeouts.inc()
            raise DeadlineExceededError(
                f"deadline of {canonical['deadline']:g}s passed before "
                f"{job.id} finished; poll /v1/jobs/{job.id} for the result"
            ) from None

    # -- dispatcher --------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.is_set():
            job = self.queue.next(timeout=0.1)
            self._queue_depth.set(len(self.queue))
            if job is None:
                continue
            try:
                result = self._execute(job)
            except ReproError as exc:
                self._failed.inc()
                self.queue.finish(job, None, exc)
                self._watchdog(job, exc)
            except Exception as exc:  # noqa: BLE001 - watchdog boundary
                self._failed.inc()
                self.queue.finish(job, None, ServeError(f"internal error: {exc}"))
                self._watchdog(job, exc)
            else:
                self._completed.inc()
                self.queue.finish(job, result, None)

    def _watchdog(self, job: Job, exc: BaseException) -> None:
        """Rebuild the explorer after a pool crash, within the budget.

        The runner already restarts broken pools internally; by the time
        a :class:`SimulationError` escapes it, the pool supervision
        budget is spent. One service-level rebuild gets a fresh explorer
        (fresh pool, same store); past ``watchdog_budget`` rebuilds the
        service declares itself unready instead of crash-looping.

        Fault-injected requests run on a one-off explorer; their typed
        failures are the *requested* outcome, so they never consume the
        budget of the shared pool's watchdog.
        """
        if job.request.get("faults"):
            return
        if not isinstance(exc, SimulationError):
            return
        if self._restarts_used >= self.watchdog_budget:
            _log.error(
                "watchdog budget exhausted (%d restarts); going unready",
                self._restarts_used,
            )
            self._ready.clear()
            self._stop.set()
            self.queue.drain(ServeError("service stopped: watchdog budget exhausted"))
            return
        self._restarts_used += 1
        self._watchdog_restarts.inc()
        _log.warning(
            "watchdog: rebuilding explorer after %s (%d/%d restarts)",
            type(exc).__name__,
            self._restarts_used,
            self.watchdog_budget,
        )
        self.explorer = self._factory()

    def _execute(self, job: Job) -> dict:
        request = job.request
        if request.get("rank"):
            return self._execute_rank(job)
        point = self._points[request["point"]]
        kernels = [kernel_by_name(name) for name in request["kernels"]]
        fidelity = request["fidelity"]
        degraded = False
        waited = time.monotonic() - job.enqueued_at
        if fidelity == "detailed" and waited > DEGRADE_PRESSURE * request["deadline"]:
            # Most of the deadline burned in the queue: serve the fast
            # model now rather than miss the deadline with the detailed
            # one. Same degradation contract as the per-job machinery.
            fidelity = "fast"
            degraded = True
            self._degraded.inc()
            _log.warning(
                "%s: degrading detailed -> fast (waited %.2fs of %.2fs deadline)",
                job.id,
                waited,
                request["deadline"],
            )
        explorer = self.explorer
        if request["faults"]:
            # Fault-injected evaluations get a one-off explorer: the
            # plan wraps every channel, results are uncacheable by
            # design, and the main explorer's store stays clean.
            explorer = Explorer(
                jobs=1,
                trace_cache=self.explorer.trace_cache,
                faults=FaultPlan.parse(request["faults"]),
            )
        if fidelity == "detailed":
            evaluation = self._evaluate_detailed(explorer, point, kernels)
        else:
            evaluation = explorer.evaluate_design_point(point, kernels)
        payload = {
            "point": evaluation.point.label,
            "fidelity": fidelity,
            "degraded": degraded,
            "mean_seconds": evaluation.mean_seconds,
            "mean_comm_fraction": evaluation.mean_comm_fraction,
            "comm_lines_total": evaluation.comm_lines_total,
            "locality_options": evaluation.locality_options,
        }
        if any(r.degraded for r in explorer.last_results):
            payload["degraded"] = True
        return payload

    def _execute_rank(self, job: Job) -> dict:
        """One rank sweep: sampled point space, sharded across the pool."""
        spec = job.request["rank"]
        points = list(DesignSpace().feasible_points())
        if spec["sample"] and spec["sample"] < len(points):
            step = max(len(points) // spec["sample"], 1)
            points = points[::step]
        shards = spec["shards"]
        if shards == "auto":
            shards = max(2 * self.explorer.jobs, 1)
        evaluations = self.explorer.rank_design_points(points, shards=shards)
        return {
            "rank": [
                {
                    "point": e.point.label,
                    "mean_seconds": e.mean_seconds,
                    "mean_comm_fraction": e.mean_comm_fraction,
                    "comm_lines_total": e.comm_lines_total,
                    "locality_options": e.locality_options,
                }
                for e in evaluations[: spec["top"]]
            ],
            "points_evaluated": len(points),
            "shards": shards,
        }

    def _evaluate_detailed(
        self, explorer: Explorer, point, kernels: List[Kernel]
    ) -> object:
        """A design-point evaluation through the detailed machine.

        Mirrors :meth:`Explorer.evaluate_design_point` but at detailed
        fidelity on scaled traces (the same scaling the case-study and
        coherence suites use). Detailed jobs carry ``detailed`` in their
        memo key, so fast and detailed evaluations of one point coexist
        in the store.
        """
        point.require_feasible()
        jobs = [
            explorer._job(
                explorer.trace_cache.get(k).scaled(explorer.detailed_scale),
                mechanism=point.comm,
                async_overlap=point.comm is CommMechanism.DMA_ASYNC,
                address_space=point.address_space,
                system_name=point.label,
                detailed=True,
            )
            for k in kernels
        ]
        results = explorer.runner.run_jobs(
            jobs, result_cache=explorer.result_cache, stage="serve-detailed"
        )
        explorer.last_results = results
        return explorer._evaluation(point, results)

    # -- observability -----------------------------------------------------

    def scrape(self) -> str:
        """The ``/metrics`` text: ``name value`` lines, sorted."""
        samples: Dict[str, float] = {}
        for name, value in self.metrics.as_dict().items():
            samples[f"serve.{name}"] = value
        samples["serve.queue.submitted"] = self.queue.submitted
        samples["serve.queue.coalesced"] = self.queue.coalesced
        samples["serve.queue.shed"] = self.queue.shed
        for name, value in self.explorer.run_stats.metrics.as_dict().items():
            samples[f"exec.{name}"] = value
        for cache_name, stats in self.explorer.cache_stats().items():
            for name, value in stats.items():
                samples[f"exec.cache.{cache_name}.{name}"] = value
        if self.explorer.store is not None:
            for name, value in self.explorer.store.metrics.as_dict().items():
                samples[f"store.{name}"] = value
        return "".join(
            f"{name} {value:g}\n" for name, value in sorted(samples.items())
        )


class _Handler(BaseHTTPRequestHandler):
    """JSON-over-HTTP surface for one :class:`ExplorationService`."""

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> ExplorationService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        _log.debug("http: " + format, *args)

    def _reply(self, status: int, payload: "dict | str") -> None:
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            content_type = "text/plain; charset=utf-8"
        else:
            body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, exc: BaseException) -> None:
        self._reply(status, {"error": type(exc).__name__, "detail": str(exc)})

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            if self.path == "/healthz":
                self._reply(200 if self.service.alive else 503, {"alive": self.service.alive})
            elif self.path == "/readyz":
                ready = self.service.ready
                self._reply(200 if ready else 503, {"ready": ready})
            elif self.path == "/metrics":
                self._reply(200, self.service.scrape())
            elif self.path.startswith("/v1/jobs/"):
                job = self.service.queue.get(self.path[len("/v1/jobs/") :])
                if job is None:
                    self._reply(404, {"error": "NotFound", "detail": self.path})
                else:
                    self._reply(200, job.describe())
            else:
                self._reply(404, {"error": "NotFound", "detail": self.path})
        except Exception as exc:  # noqa: BLE001 - HTTP boundary
            self._error(500, exc)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b"{}"
            try:
                request = json.loads(raw or b"{}")
            except ValueError as exc:
                self._error(400, ConfigError(f"request body is not JSON: {exc}"))
                return
            if self.path == "/v1/evaluate":
                self._reply(200, self.service.evaluate(request))
            elif self.path == "/v1/jobs":
                job = self.service.submit(request)
                self._reply(202, {"job": job.id, "state": job.state})
            else:
                self._reply(404, {"error": "NotFound", "detail": self.path})
        except QueueFullError as exc:
            self._error(503, exc)
        except DeadlineExceededError as exc:
            self._error(504, exc)
        except (ConfigError, DesignSpaceError, TraceError) as exc:
            self._error(400, exc)
        except ReproError as exc:
            self._error(500, exc)
        except Exception as exc:  # noqa: BLE001 - HTTP boundary
            self._error(500, exc)


class ExplorationServer:
    """A :class:`ThreadingHTTPServer` bound to one service instance."""

    def __init__(
        self, service: ExplorationService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.service = service
        try:
            self.httpd = ThreadingHTTPServer((host, port), _Handler)
        except OSError as exc:
            raise ServeError(f"cannot bind {host}:{port}: {exc}") from exc
        self.httpd.daemon_threads = True
        self.httpd.service = service  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> None:
        """Start service + HTTP loop in the background (tests, chaos)."""
        self.service.start()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="serve-http",
            daemon=True,
        )
        self._thread.start()
        _log.info("serving on %s", self.address)

    def serve_forever(self) -> None:
        """Foreground mode (the CLI): blocks until interrupted."""
        self.service.start()
        _log.info("serving on %s", self.address)
        try:
            self.httpd.serve_forever(poll_interval=0.1)
        finally:
            self.stop()

    def stop(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        self.service.stop()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None


def run_server(
    host: str = "127.0.0.1",
    port: int = 8763,
    jobs: int = 1,
    queue_depth: int = 32,
    deadline: float = 30.0,
    watchdog_budget: int = 3,
    store_path: Optional[str] = None,
    retries: int = 0,
    job_timeout: Optional[float] = None,
    warm_dir: Optional[str] = None,
) -> ExplorationServer:
    """Build a ready-to-start server from CLI-ish parameters.

    With ``warm_dir`` every explorer this service builds (boot and
    watchdog rebuilds alike) shares one compile-cache region: worker
    pools start pre-warmed from it, and the pool is pre-spawned at build
    time so the first detailed request lands on warm workers.
    """
    from repro.exec.retry import RetryPolicy
    from repro.store import ResultStore

    store = ResultStore(store_path) if store_path else None

    def factory() -> Explorer:
        explorer = Explorer(
            jobs=jobs,
            retry=RetryPolicy(retries=retries) if retries else None,
            job_timeout=job_timeout,
            store=store,
            warm_dir=warm_dir,
        )
        if warm_dir is not None and jobs > 1:
            explorer.runner.prestart()
        return explorer

    service = ExplorationService(
        explorer_factory=factory,
        queue_depth=queue_depth,
        default_deadline=deadline,
        watchdog_budget=watchdog_budget,
    )
    return ExplorationServer(service, host=host, port=port)
