"""repro.serve — the supervised exploration daemon.

Turns the CLI's one-shot experiments into a long-lived service: a
bounded, coalescing job queue over the exploration runtime, per-request
deadlines with detailed→fast degradation under pressure, a watchdog
that rebuilds crashed worker pools within a budget, warm starts from
the durable store, and health/readiness/metrics endpoints. See
:mod:`repro.serve.server` for the behaviour catalogue.
"""

from repro.serve.queue import CoalescingQueue, Job
from repro.serve.server import ExplorationServer, ExplorationService, run_server

__all__ = [
    "CoalescingQueue",
    "Job",
    "ExplorationServer",
    "ExplorationService",
    "run_server",
]
