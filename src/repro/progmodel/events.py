"""IR lowering hook: the per-buffer event stream of a lowered program.

The checker's analysis IR (:mod:`repro.check.ir`) wants to know *what
each statement does to which buffers* without pattern-matching AST node
types itself. :func:`statement_events` is that boundary: it walks a
:class:`~repro.progmodel.program.Program` once and emits one neutral
:class:`StmtEvent` per data-relevant statement (allocations, copies,
ownership moves, launches, declarations, pushes, syncs), keyed by the
statement's index so findings can point back at a source line. Comments
and plain frees produce nothing.

Keeping the hook here — inside ``repro.progmodel`` — means the AST can
grow new statement types without the checker breaking: the statement's
author extends the hook in the same change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.progmodel.ast import (
    AccessDecl,
    AcquireOwnership,
    Alloc,
    KernelLaunch,
    Memcpy,
    Push,
    ReleaseOwnership,
    Sync,
)
from repro.progmodel.program import Program
from repro.taxonomy import ProcessingUnit
from repro.trace.phase import Direction

__all__ = ["StmtEvent", "statement_events"]


@dataclass(frozen=True)
class StmtEvent:
    """What one statement does to the named buffers.

    ``kind`` is one of ``alloc``/``copy``/``launch``/``acquire``/
    ``release``/``declare``/``push``/``sync``; ``direction`` is set for
    copies, ``mode`` for declarations, ``size`` in bytes where the
    statement carries one.
    """

    index: int
    kind: str
    buffers: Tuple[str, ...]
    label: str = ""
    pu: ProcessingUnit = ProcessingUnit.CPU
    direction: Optional[Direction] = None
    size: int = 0
    mode: str = ""


def statement_events(program: Program) -> Tuple[StmtEvent, ...]:
    """The data-relevant statements of ``program`` as neutral events."""
    events: List[StmtEvent] = []
    for index, stmt in enumerate(program.statements):
        if isinstance(stmt, Alloc):
            events.append(
                StmtEvent(
                    index=index,
                    kind="alloc",
                    buffers=(stmt.name,),
                    label=stmt.render(),
                    pu=(
                        ProcessingUnit.GPU
                        if stmt.kind in ("gpu_malloc", "adsmAlloc")
                        else ProcessingUnit.CPU
                    ),
                    size=stmt.size,
                )
            )
        elif isinstance(stmt, Memcpy):
            events.append(
                StmtEvent(
                    index=index,
                    kind="copy",
                    buffers=(stmt.name,),
                    label=stmt.render(),
                    pu=stmt.direction.source,
                    direction=stmt.direction,
                    size=stmt.size,
                )
            )
        elif isinstance(stmt, KernelLaunch):
            events.append(
                StmtEvent(
                    index=index,
                    kind="launch",
                    buffers=tuple(stmt.args),
                    label=stmt.render(),
                    pu=stmt.pu,
                )
            )
        elif isinstance(stmt, AcquireOwnership):
            # The CPU "acquiring" takes the objects back from the GPU; the
            # space gaining access is the acquirer's.
            events.append(
                StmtEvent(
                    index=index,
                    kind="acquire",
                    buffers=tuple(stmt.names),
                    label=stmt.render(),
                    pu=stmt.by,
                )
            )
        elif isinstance(stmt, ReleaseOwnership):
            events.append(
                StmtEvent(
                    index=index,
                    kind="release",
                    buffers=tuple(stmt.names),
                    label=stmt.render(),
                    pu=stmt.by,
                )
            )
        elif isinstance(stmt, AccessDecl):
            events.append(
                StmtEvent(
                    index=index,
                    kind="declare",
                    buffers=(stmt.name,),
                    label=stmt.render(),
                    mode=stmt.mode.value,
                )
            )
        elif isinstance(stmt, Push):
            events.append(
                StmtEvent(
                    index=index,
                    kind="push",
                    buffers=(stmt.name,),
                    label=stmt.render(),
                )
            )
        elif isinstance(stmt, Sync):
            events.append(
                StmtEvent(index=index, kind="sync", buffers=(), label=stmt.render())
            )
    return tuple(events)
