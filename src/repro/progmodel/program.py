"""Programs: ordered statement lists with the Table V line metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

from repro.errors import ProgramError
from repro.progmodel.ast import Comment, Stmt
from repro.taxonomy import AddressSpaceKind

__all__ = ["Program"]


@dataclass(frozen=True)
class Program:
    """A lowered kernel program for one address space.

    ``computation_lines`` is the Comp column of Table V (size of the
    hand-written computation code, carried as metadata);
    :meth:`comm_lines` counts the communication-handling statements the
    lowering generated — the number the paper's Table V reports per
    address space.
    """

    kernel: str
    address_space: AddressSpaceKind
    statements: Tuple[Stmt, ...]
    computation_lines: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "statements", tuple(self.statements))
        if self.computation_lines < 0:
            raise ProgramError("computation line count must be non-negative")
        for stmt in self.statements:
            if not isinstance(stmt, Stmt):
                raise ProgramError(f"not a statement: {stmt!r}")

    def __iter__(self) -> Iterator[Stmt]:
        return iter(self.statements)

    def __len__(self) -> int:
        return len(self.statements)

    def comm_lines(self) -> int:
        """Source lines that exist only to handle data communication."""
        return sum(1 for stmt in self.statements if stmt.is_comm)

    def comm_statements(self) -> Tuple[Stmt, ...]:
        return tuple(stmt for stmt in self.statements if stmt.is_comm)

    def total_lines(self) -> int:
        """Computation plus communication lines (comments excluded)."""
        return self.computation_lines + self.comm_lines()

    def render(self) -> str:
        """The whole program as pseudo-C source."""
        header = [
            f"// {self.kernel} under the {self.address_space.short} address space",
            f"// ({self.computation_lines} computation lines not shown)",
        ]
        body = [stmt.render() for stmt in self.statements]
        return "\n".join(header + body)
