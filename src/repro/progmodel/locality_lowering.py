"""Locality-annotated lowering (the paper's Figure 4 code patterns).

Figure 4 shows the reduction example with explicit locality control
statements: ``push`` places data into the desired cache level (``CPU.P``,
``GPU.P``, or the second-level ``S``), and which pushes appear depends on
the locality-management scheme:

- *explicit-private* PUs push their input halves into their private
  storage (Figure 4(a)/(b));
- *explicit-shared* (or hybrid) schemes push the data both PUs exchange
  into the second-level cache (all three subfigures);
- *implicit-private* schemes have no private pushes (Figure 4(c)).

:func:`lower_with_locality` augments the ordinary address-space lowering
with exactly those pushes, after checking the (scheme, space) pair is
feasible per §II-B.
"""

from __future__ import annotations

from typing import List

from repro.errors import LocalityError
from repro.locality.schemes import Feasibility, describe, feasibility
from repro.progmodel.ast import KernelLaunch, Push, Stmt
from repro.progmodel.lowering import lower
from repro.progmodel.program import Program
from repro.progmodel.spec import KernelProgramSpec
from repro.taxonomy import AddressSpaceKind, LocalityPolicy, LocalityScheme

__all__ = ["lower_with_locality", "count_pushes"]


def _push_statements(spec: KernelProgramSpec, scheme: LocalityScheme) -> "tuple[List[Stmt], List[Stmt]]":
    """(pushes before the kernel calls, pushes after) for a scheme."""
    descriptor = describe(scheme)
    before: List[Stmt] = []
    after: List[Stmt] = []
    if descriptor.cpu_private is LocalityPolicy.EXPLICIT:
        for buffer in spec.inputs():
            before.append(Push(buffer.name, "CPU.P"))
    if descriptor.gpu_private is LocalityPolicy.EXPLICIT:
        for buffer in spec.inputs():
            before.append(Push(buffer.name, "GPU.P"))
    shared_explicit = (
        descriptor.shared is LocalityPolicy.EXPLICIT or descriptor.hybrid_shared
    )
    if shared_explicit:
        for buffer in spec.outputs():
            after.append(Push(buffer.name, "S"))
    return before, after


def lower_with_locality(
    spec: KernelProgramSpec,
    kind: AddressSpaceKind,
    scheme: LocalityScheme,
) -> Program:
    """Lower ``spec`` for ``kind`` with the scheme's ``push`` annotations.

    Raises :class:`LocalityError` for pairs §II-B rules out entirely
    (e.g. any shared scheme under a disjoint space); undesirable-but-
    possible pairs lower normally (the paper shows them to argue against
    them).
    """
    if feasibility(scheme, kind) is Feasibility.NO:
        raise LocalityError(
            f"scheme {scheme} is impossible under the {kind.short} space"
        )
    base = lower(spec, kind)
    before, after = _push_statements(spec, scheme)

    statements: List[Stmt] = []
    launches_seen = 0
    total_launches = sum(1 for s in base if isinstance(s, KernelLaunch))
    for stmt in base:
        if isinstance(stmt, KernelLaunch) and launches_seen == 0:
            statements.extend(before)
        statements.append(stmt)
        if isinstance(stmt, KernelLaunch):
            launches_seen += 1
            if launches_seen == total_launches:
                statements.extend(after)
    return Program(
        kernel=spec.name,
        address_space=kind,
        statements=tuple(statements),
        computation_lines=spec.computation_lines,
    )


def count_pushes(program: Program) -> int:
    """Number of ``push`` locality-control statements in a program."""
    return sum(1 for stmt in program if isinstance(stmt, Push))
