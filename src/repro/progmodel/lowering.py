"""Lowering kernel specs to programs, per address space.

Implements the four code patterns of the paper's Figures 2 and 3; the
communication-line counts of the lowered programs reproduce Table V:

======================  =======================================  =========
Address space           communication lines generated            formula
======================  =======================================  =========
unified                 none                                     0
partially shared        release+acquire per GPU call site        2*sites
ADSM                    adsmAlloc + accfree per shared buffer    2*buffers
disjoint                device alloc + Memcpy + device free      3*buffers
                        per shared buffer
======================  =======================================  =========

Passing a ``modes`` map (see :func:`~repro.progmodel.spec.access_modes`)
lowers with **access-mode declarations**: one ``declareAccess`` line per
shared buffer tells the coherent runtime which way the data flows, and the
runtime elides the boilerplate the declarations make inferable. With N
shared buffers the declared counts become:

======================  =======================================  =========
Address space           communication lines with declarations    formula
======================  =======================================  =========
unified                 declarations only                        N
partially shared        one release/acquire pair for the whole   2 + N
                        kernel (per-site pairs inferred)
ADSM                    declarations replace adsmAlloc/accfree   N
disjoint                declarations cannot elide physical       3*buffers
                        copies; they only add lines              + N
======================  =======================================  =========
"""

from __future__ import annotations

from typing import List, Mapping, Optional

from repro.errors import ProgramError
from repro.progmodel.ast import (
    AccessDecl,
    AccessMode,
    AcquireOwnership,
    Alloc,
    Comment,
    Free,
    KernelLaunch,
    Memcpy,
    ReleaseOwnership,
    Stmt,
)
from repro.progmodel.program import Program
from repro.progmodel.spec import BufferDirection, KernelProgramSpec
from repro.taxonomy import AddressSpaceKind, ProcessingUnit
from repro.trace.phase import Direction

__all__ = ["lower"]


def _kernel_name(spec: KernelProgramSpec) -> str:
    return spec.name.replace(" ", "_").replace("-", "_") + "_kernel"


def _launches(spec: KernelProgramSpec, pu: ProcessingUnit) -> List[Stmt]:
    return [
        KernelLaunch(kernel=_kernel_name(spec), args=spec.buffer_names, pu=pu)
        for _ in range(spec.gpu_call_sites)
    ]


def _lower_unified(spec: KernelProgramSpec) -> List[Stmt]:
    """Figure 2(a): plain mallocs, direct calls, nothing else."""
    stmts: List[Stmt] = [Alloc(b.name, b.size, "malloc") for b in spec.buffers]
    stmts.extend(_launches(spec, ProcessingUnit.GPU))
    stmts.extend(Free(b.name, "free") for b in spec.buffers)
    return stmts


def _lower_partially_shared(spec: KernelProgramSpec) -> List[Stmt]:
    """Figure 2(b): sharedmalloc replaces malloc (no extra line); each GPU
    call site is bracketed by a release (CPU gives up the objects) and an
    acquire (CPU takes the results back)."""
    names = spec.buffer_names
    stmts: List[Stmt] = [Alloc(b.name, b.size, "sharedmalloc") for b in spec.buffers]
    for _ in range(spec.gpu_call_sites):
        stmts.append(ReleaseOwnership(names, by=ProcessingUnit.CPU))
        stmts.append(
            KernelLaunch(kernel=_kernel_name(spec), args=names, pu=ProcessingUnit.GPU)
        )
        stmts.append(AcquireOwnership(names, by=ProcessingUnit.CPU))
    stmts.extend(Free(b.name, "free") for b in spec.buffers)
    return stmts


def _lower_adsm(spec: KernelProgramSpec) -> List[Stmt]:
    """Figure 3(b): regular mallocs stay; an adsmAlloc maps each shared
    buffer into the GPU, and an accfree releases it; no copies back."""
    stmts: List[Stmt] = [Alloc(b.name, b.size, "malloc") for b in spec.buffers]
    stmts.extend(Alloc(b.name + "_adsm", b.size, "adsmAlloc") for b in spec.buffers)
    stmts.extend(_launches(spec, ProcessingUnit.GPU))
    stmts.extend(Free(b.name + "_adsm", "accfree") for b in spec.buffers)
    stmts.extend(Free(b.name, "free") for b in spec.buffers)
    return stmts


def _lower_disjoint(spec: KernelProgramSpec) -> List[Stmt]:
    """Figure 3(a): duplicated device pointers — a device allocation, an
    explicit Memcpy (host-to-device for inputs, device-to-host for
    outputs, both for inout), and a device free per shared buffer."""
    stmts: List[Stmt] = [Alloc(b.name, b.size, "malloc") for b in spec.buffers]
    stmts.extend(Alloc(b.name, b.size, "gpu_malloc") for b in spec.buffers)
    for b in spec.inputs():
        stmts.append(Memcpy(b.name, Direction.H2D, b.size))
    stmts.extend(_launches(spec, ProcessingUnit.GPU))
    for b in spec.outputs():
        stmts.append(Memcpy(b.name, Direction.D2H, b.size))
    stmts.extend(Free(b.name, "gpu_free") for b in spec.buffers)
    stmts.extend(Free(b.name, "free") for b in spec.buffers)
    return stmts


_LOWERINGS = {
    AddressSpaceKind.UNIFIED: _lower_unified,
    AddressSpaceKind.PARTIALLY_SHARED: _lower_partially_shared,
    AddressSpaceKind.ADSM: _lower_adsm,
    AddressSpaceKind.DISJOINT: _lower_disjoint,
}


def _decls(spec: KernelProgramSpec, modes: Mapping[str, AccessMode]) -> List[Stmt]:
    """One declaration per shared buffer, in buffer order; every shared
    buffer must carry a mode (an elision based on a missing declaration is
    exactly the bug rule COH001 exists to catch)."""
    missing = [b.name for b in spec.buffers if b.name not in modes]
    if missing:
        raise ProgramError(
            f"{spec.name}: no access mode declared for {', '.join(missing)}"
        )
    unknown = [name for name in modes if name not in spec.buffer_names]
    if unknown:
        raise ProgramError(
            f"{spec.name}: access mode for unknown buffer {', '.join(unknown)}"
        )
    return [AccessDecl(b.name, modes[b.name]) for b in spec.buffers]


def _declared_unified(
    spec: KernelProgramSpec, modes: Mapping[str, AccessMode]
) -> List[Stmt]:
    """Unified + declarations: the declarations are the only comm lines."""
    stmts: List[Stmt] = [Alloc(b.name, b.size, "malloc") for b in spec.buffers]
    stmts.extend(_decls(spec, modes))
    stmts.extend(_launches(spec, ProcessingUnit.GPU))
    stmts.extend(Free(b.name, "free") for b in spec.buffers)
    return stmts


def _declared_partially_shared(
    spec: KernelProgramSpec, modes: Mapping[str, AccessMode]
) -> List[Stmt]:
    """PAS + declarations: the runtime infers the per-site ownership moves
    from the declared modes, so one release/acquire pair brackets the whole
    kernel instead of every call site."""
    names = spec.buffer_names
    stmts: List[Stmt] = [Alloc(b.name, b.size, "sharedmalloc") for b in spec.buffers]
    stmts.extend(_decls(spec, modes))
    stmts.append(ReleaseOwnership(names, by=ProcessingUnit.CPU))
    stmts.extend(_launches(spec, ProcessingUnit.GPU))
    stmts.append(AcquireOwnership(names, by=ProcessingUnit.CPU))
    stmts.extend(Free(b.name, "free") for b in spec.buffers)
    return stmts


def _declared_adsm(
    spec: KernelProgramSpec, modes: Mapping[str, AccessMode]
) -> List[Stmt]:
    """ADSM + declarations: the declaration carries the mapping information
    adsmAlloc/accfree existed to convey, so those per-buffer pairs go."""
    stmts: List[Stmt] = [Alloc(b.name, b.size, "malloc") for b in spec.buffers]
    stmts.extend(_decls(spec, modes))
    stmts.extend(_launches(spec, ProcessingUnit.GPU))
    stmts.extend(Free(b.name, "free") for b in spec.buffers)
    return stmts


def _declared_disjoint(
    spec: KernelProgramSpec, modes: Mapping[str, AccessMode]
) -> List[Stmt]:
    """Disjoint + declarations: physical copies between private memories
    cannot be elided by intent declarations — the lines only add up."""
    return _lower_disjoint(spec) + _decls(spec, modes)


_DECLARED_LOWERINGS = {
    AddressSpaceKind.UNIFIED: _declared_unified,
    AddressSpaceKind.PARTIALLY_SHARED: _declared_partially_shared,
    AddressSpaceKind.ADSM: _declared_adsm,
    AddressSpaceKind.DISJOINT: _declared_disjoint,
}


def lower(
    spec: KernelProgramSpec,
    kind: AddressSpaceKind,
    modes: Optional[Mapping[str, AccessMode]] = None,
) -> Program:
    """Lower ``spec`` to a program for the given address space.

    Without ``modes`` this produces the paper's Figure 2/3 patterns (the
    committed Table V counts). With a ``modes`` map the lowering emits
    access-mode declarations and elides what they make inferable — the
    "with declarations" column of the coherence study.
    """
    table = _LOWERINGS if modes is None else _DECLARED_LOWERINGS
    try:
        build = table[kind]
    except KeyError:
        raise ProgramError(f"no lowering for address space {kind}") from None
    statements = build(spec) if modes is None else build(spec, modes)
    return Program(
        kernel=spec.name,
        address_space=kind,
        statements=tuple(statements),
        computation_lines=spec.computation_lines,
    )
