"""Abstract kernel program specifications.

A :class:`KernelProgramSpec` captures what the lowering needs to know about
a kernel's communication structure: which buffers both PUs touch (and in
which direction the data flows), how many GPU call sites the source has,
and how many source lines the computation itself takes (Table V's "Comp"
column — a property of the hand-written reference code, taken from the
paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ProgramError

__all__ = [
    "BufferDirection",
    "BufferSpec",
    "KernelProgramSpec",
    "access_modes",
    "program_spec",
    "all_program_specs",
]


class BufferDirection(enum.Enum):
    """Which way a shared buffer's data flows across the PU boundary."""

    IN = "in"        # host -> device before the kernel
    OUT = "out"      # device -> host after the kernel
    INOUT = "inout"  # both

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class BufferSpec:
    """One buffer both PUs use."""

    name: str
    size: int
    direction: BufferDirection

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ProgramError(f"{self.name}: buffer size must be positive")


@dataclass(frozen=True)
class KernelProgramSpec:
    """Communication structure of one kernel's source program."""

    name: str
    buffers: Tuple[BufferSpec, ...]
    gpu_call_sites: int
    computation_lines: int
    private_buffers: Tuple[BufferSpec, ...] = ()
    #: Shared buffers that accumulate per-PU partial results combined by a
    #: later merge step (declared ``reduce`` under access-mode lowering).
    reduce_buffers: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.buffers:
            raise ProgramError(f"{self.name}: need at least one shared buffer")
        if self.gpu_call_sites < 1:
            raise ProgramError(f"{self.name}: need at least one GPU call site")
        if self.computation_lines < 1:
            raise ProgramError(f"{self.name}: computation lines must be positive")
        names = [b.name for b in self.buffers + self.private_buffers]
        if len(set(names)) != len(names):
            raise ProgramError(f"{self.name}: duplicate buffer names")
        shared = {b.name for b in self.buffers}
        for reduced in self.reduce_buffers:
            if reduced not in shared:
                raise ProgramError(
                    f"{self.name}: reduce buffer {reduced!r} is not a shared buffer"
                )

    @property
    def buffer_names(self) -> Tuple[str, ...]:
        return tuple(b.name for b in self.buffers)

    def inputs(self) -> Tuple[BufferSpec, ...]:
        return tuple(
            b
            for b in self.buffers
            if b.direction in (BufferDirection.IN, BufferDirection.INOUT)
        )

    def outputs(self) -> Tuple[BufferSpec, ...]:
        return tuple(
            b
            for b in self.buffers
            if b.direction in (BufferDirection.OUT, BufferDirection.INOUT)
        )


# Buffer sizes follow each kernel's Table III transfer sizes; computation
# line counts are Table V's "Comp" column; GPU call sites follow the phase
# structure of the trace generators (one per parallel phase).
_SPECS: Dict[str, KernelProgramSpec] = {
    spec.name: spec
    for spec in (
        KernelProgramSpec(
            name="reduction",
            buffers=(
                BufferSpec("a", 160256, BufferDirection.IN),
                BufferSpec("b", 160256, BufferDirection.IN),
                BufferSpec("c", 512, BufferDirection.OUT),
            ),
            gpu_call_sites=1,
            computation_lines=142,
            reduce_buffers=("c",),
        ),
        KernelProgramSpec(
            name="matrix mul",
            buffers=(
                BufferSpec("a", 262144, BufferDirection.IN),
                BufferSpec("b", 262144, BufferDirection.IN),
                BufferSpec("c", 131072, BufferDirection.OUT),
            ),
            gpu_call_sites=1,
            computation_lines=39,
        ),
        KernelProgramSpec(
            name="convolution",
            buffers=(
                BufferSpec("input", 32768, BufferDirection.IN),
                BufferSpec("filter", 32768, BufferDirection.IN),
                BufferSpec("output", 32768, BufferDirection.OUT),
            ),
            gpu_call_sites=2,
            computation_lines=75,
        ),
        KernelProgramSpec(
            name="dct",
            buffers=(
                BufferSpec("image", 262244, BufferDirection.IN),
                BufferSpec("coeffs", 131072, BufferDirection.OUT),
            ),
            gpu_call_sites=1,
            computation_lines=410,
        ),
        KernelProgramSpec(
            name="merge sort",
            buffers=(
                BufferSpec("data", 39936, BufferDirection.IN),
                BufferSpec("sorted", 39936, BufferDirection.OUT),
            ),
            gpu_call_sites=1,
            computation_lines=112,
        ),
        KernelProgramSpec(
            name="k-mean",
            buffers=(
                BufferSpec("points", 131072, BufferDirection.IN),
                BufferSpec("partials", 4096, BufferDirection.OUT),
            ),
            gpu_call_sites=3,
            computation_lines=332,
            reduce_buffers=("partials",),
        ),
    )
}


def access_modes(spec: KernelProgramSpec) -> "Dict[str, AccessMode]":
    """The access-mode declaration each shared buffer of ``spec`` gets.

    Derived from the data-flow direction: pure inputs are ``READ``, outputs
    (and inouts, conservatively) are ``WRITE``, and buffers listed in
    ``reduce_buffers`` are ``REDUCE``. This is the mode map
    :func:`~repro.progmodel.lowering.lower` consumes when lowering with
    declarations.
    """
    from repro.progmodel.ast import AccessMode

    modes: Dict[str, AccessMode] = {}
    for buffer in spec.buffers:
        if buffer.name in spec.reduce_buffers:
            modes[buffer.name] = AccessMode.REDUCE
        elif buffer.direction is BufferDirection.IN:
            modes[buffer.name] = AccessMode.READ
        else:
            modes[buffer.name] = AccessMode.WRITE
    return modes


def program_spec(name: str) -> KernelProgramSpec:
    """Spec for one of the six kernels (paper name)."""
    try:
        return _SPECS[name]
    except KeyError:
        raise ProgramError(
            f"no program spec for {name!r}; known: {', '.join(_SPECS)}"
        ) from None


def all_program_specs() -> Tuple[KernelProgramSpec, ...]:
    """All six kernels' specs, in Table III order."""
    return tuple(_SPECS.values())
