"""Statements of the mini programming-model DSL.

Each statement knows how to render itself as one pseudo-C source line and
whether it counts as a *communication-handling* line for the Table V
metric ("the number of additional source lines required to handle explicit
data communication and data handling operations").
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import ProgramError
from repro.taxonomy import ProcessingUnit
from repro.trace.phase import Direction

__all__ = [
    "Stmt",
    "Comment",
    "Alloc",
    "Free",
    "Memcpy",
    "AcquireOwnership",
    "ReleaseOwnership",
    "KernelLaunch",
    "Push",
    "Sync",
    "AccessMode",
    "AccessDecl",
]


class AccessMode(enum.Enum):
    """How a kernel accesses a shared buffer, as declared to the runtime.

    Declarations let a coherent runtime elide transfers and invalidations:
    a ``READ`` buffer never needs write-back, a ``WRITE`` buffer's remote
    copies are invalidated once (not per transfer round-trip), and a
    ``REDUCE`` buffer holds per-PU partials that only the merge step
    combines — no coherence traffic until then.
    """

    READ = "read"
    WRITE = "write"
    REDUCE = "reduce"

    def __str__(self) -> str:
        return self.value


class Stmt(abc.ABC):
    """One source line."""

    #: Whether this line exists only to handle data communication.
    is_comm: bool = False

    @abc.abstractmethod
    def render(self) -> str:
        """The pseudo-C source line."""

    def __str__(self) -> str:
        return self.render()


@dataclass(frozen=True)
class Comment(Stmt):
    """A comment line (never counted)."""

    text: str

    def render(self) -> str:
        return f"// {self.text}"


#: Allocation flavours and whether each is a communication-handling line.
#: ``malloc`` and ``sharedmalloc`` allocate the buffer the computation uses
#: (PAS swaps the allocator without adding a line, Figure 2(b));
#: ``adsmAlloc`` and ``gpu_malloc`` are *extra* lines that exist only so
#: the accelerator can reach the data (Figures 3(a) and 3(b)).
_ALLOC_KINDS = {
    "malloc": False,
    "sharedmalloc": False,
    "adsmAlloc": True,
    "gpu_malloc": True,
}


@dataclass(frozen=True)
class Alloc(Stmt):
    """Allocate ``name`` with one of the four allocator flavours."""

    name: str
    size: int
    kind: str = "malloc"
    pu: ProcessingUnit = ProcessingUnit.CPU

    def __post_init__(self) -> None:
        if self.kind not in _ALLOC_KINDS:
            raise ProgramError(f"unknown allocator {self.kind!r}")
        if self.size <= 0:
            raise ProgramError(f"{self.name}: allocation size must be positive")

    @property
    def is_comm(self) -> bool:  # type: ignore[override]
        return _ALLOC_KINDS[self.kind]

    def render(self) -> str:
        if self.kind == "gpu_malloc":
            return f"GPUmemallocate(&gpu_{self.name}, {self.size});"
        return f"int *{self.name} = {self.kind}({self.size});"


@dataclass(frozen=True)
class Free(Stmt):
    """Release a buffer; device/ADSM frees are communication lines."""

    name: str
    kind: str = "free"

    def __post_init__(self) -> None:
        if self.kind not in ("free", "gpu_free", "accfree"):
            raise ProgramError(f"unknown free flavour {self.kind!r}")

    @property
    def is_comm(self) -> bool:  # type: ignore[override]
        return self.kind != "free"

    def render(self) -> str:
        if self.kind == "gpu_free":
            return f"GPUfree(gpu_{self.name});"
        return f"{self.kind}({self.name});"


@dataclass(frozen=True)
class Memcpy(Stmt):
    """An explicit copy between host and device memory."""

    name: str
    direction: Direction
    size: int

    is_comm = True

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ProgramError(f"{self.name}: copy size must be positive")

    def render(self) -> str:
        tag = (
            "MemcpyHosttoDevice"
            if self.direction is Direction.H2D
            else "MemcpyDevicetoHost"
        )
        return f"Memcpy(gpu_{self.name}, {self.name}, {tag});"


@dataclass(frozen=True)
class AcquireOwnership(Stmt):
    """Acquire ownership of shared objects (LRB)."""

    names: Tuple[str, ...]
    by: ProcessingUnit = ProcessingUnit.CPU

    is_comm = True

    def __post_init__(self) -> None:
        if not self.names:
            raise ProgramError("acquire needs at least one object")

    def render(self) -> str:
        return f"acquireOwnership({', '.join(self.names)});"


@dataclass(frozen=True)
class ReleaseOwnership(Stmt):
    """Release ownership of shared objects (LRB)."""

    names: Tuple[str, ...]
    by: ProcessingUnit = ProcessingUnit.CPU

    is_comm = True

    def __post_init__(self) -> None:
        if not self.names:
            raise ProgramError("release needs at least one object")

    def render(self) -> str:
        return f"releaseOwnership({', '.join(self.names)});"


@dataclass(frozen=True)
class KernelLaunch(Stmt):
    """Invoke a compute kernel on a PU, touching the named buffers."""

    kernel: str
    args: Tuple[str, ...]
    pu: ProcessingUnit = ProcessingUnit.CPU

    def render(self) -> str:
        prefix = "addGPU" if self.pu is ProcessingUnit.GPU else ""
        return f"{prefix}{self.kernel}({', '.join(self.args)});"


@dataclass(frozen=True)
class Push(Stmt):
    """Explicit locality placement (§II-B's ``push``)."""

    name: str
    level: str  # e.g. "CPU.P", "GPU.P", "S"

    is_comm = False  # locality control, not data communication

    def render(self) -> str:
        return f"push({self.name}, {self.level});"


@dataclass(frozen=True)
class AccessDecl(Stmt):
    """Declare a buffer's access mode to the coherence runtime.

    One line per shared buffer; it counts as communication handling (the
    programmer writes it only so data movement works), but it *replaces*
    the per-site and per-buffer boilerplate of the undeclared lowerings —
    see :func:`~repro.progmodel.lowering.lower` with ``modes``.
    """

    name: str
    mode: AccessMode

    is_comm = True

    def render(self) -> str:
        return f"declareAccess({self.name}, {self.mode.value});"


@dataclass(frozen=True)
class Sync(Stmt):
    """Return synchronization (one of ADSM's four fundamental APIs)."""

    is_comm = True

    def render(self) -> str:
        return "returnSync();"
