"""Programming models: a mini-DSL lowered per address space.

The paper compares programmability by counting the source lines each
address space needs to handle data communication (Table V, §V-C). We make
that mechanical: each kernel has an abstract
:class:`~repro.progmodel.spec.KernelProgramSpec` (its shared buffers and
GPU call sites), and :func:`~repro.progmodel.lowering.lower` turns the spec
into a concrete :class:`~repro.progmodel.program.Program` for each address
space following the paper's Figure 2/3 code patterns:

- **unified**: plain ``malloc``; no communication statements at all;
- **partially shared**: ``sharedmalloc`` replaces ``malloc`` (no extra
  line) plus a release/acquire ownership pair around every GPU call site;
- **ADSM**: an ``adsmAlloc`` and an ``accfree`` per shared buffer;
- **disjoint**: a device alloc, one ``Memcpy``, and a device free per
  shared buffer.

Counting the communication statements of the lowered programs reproduces
Table V exactly (see ``tests/progmodel/test_table5.py``); the
:mod:`~repro.progmodel.interpreter` executes lowered programs against the
real :mod:`repro.addrspace` models, so ownership violations and illegal
accesses in the generated code are caught by the substrate.
"""

from repro.progmodel.ast import (
    AccessDecl,
    AccessMode,
    AcquireOwnership,
    Alloc,
    Comment,
    Free,
    KernelLaunch,
    Memcpy,
    Push,
    ReleaseOwnership,
    Stmt,
    Sync,
)
from repro.progmodel.events import StmtEvent, statement_events
from repro.progmodel.program import Program
from repro.progmodel.spec import (
    BufferDirection,
    BufferSpec,
    KernelProgramSpec,
    access_modes,
    program_spec,
    all_program_specs,
)
from repro.progmodel.lowering import lower
from repro.progmodel.locality_lowering import count_pushes, lower_with_locality
from repro.progmodel.interpreter import ExecutionLog, Interpreter

__all__ = [
    "Stmt",
    "Alloc",
    "Free",
    "Memcpy",
    "AcquireOwnership",
    "ReleaseOwnership",
    "KernelLaunch",
    "Push",
    "Sync",
    "Comment",
    "AccessMode",
    "AccessDecl",
    "Program",
    "BufferDirection",
    "BufferSpec",
    "KernelProgramSpec",
    "access_modes",
    "program_spec",
    "all_program_specs",
    "lower",
    "lower_with_locality",
    "count_pushes",
    "Interpreter",
    "ExecutionLog",
    "StmtEvent",
    "statement_events",
]
