"""Executes lowered programs against the real address-space models.

The lowering produces code *shaped* like the paper's figures; the
interpreter proves the shapes are actually legal under each address
space's rules: allocations go through
:meth:`repro.addrspace.AddressSpace.alloc`, ownership statements drive the
:class:`~repro.addrspace.ownership.OwnershipTable`, and every kernel launch
checks that the launching PU may really reach every argument buffer —
a missing Memcpy or release shows up as an
:class:`~repro.errors.AccessViolationError` / :class:`~repro.errors.OwnershipError`,
exactly the bugs these programming models differ on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import AccessViolationError, ProgramError
from repro.addrspace.base import AddressSpace, make_address_space
from repro.addrspace.disjoint import DisjointAddressSpace
from repro.addrspace.partially_shared import PartiallySharedAddressSpace
from repro.progmodel.ast import (
    AcquireOwnership,
    Alloc,
    Comment,
    Free,
    KernelLaunch,
    Memcpy,
    Push,
    ReleaseOwnership,
    Stmt,
    Sync,
)
from repro.progmodel.program import Program
from repro.taxonomy import AddressSpaceKind, ProcessingUnit
from repro.trace.phase import Direction

__all__ = ["ExecutionLog", "Interpreter"]


@dataclass
class ExecutionLog:
    """What happened while executing a program."""

    events: List[str] = field(default_factory=list)
    bytes_copied: int = 0
    copies: int = 0
    ownership_actions: int = 0
    kernel_launches: int = 0
    pushes: int = 0

    def record(self, message: str) -> None:
        self.events.append(message)


class Interpreter:
    """Runs one program against an address space."""

    def __init__(self, space: Optional[AddressSpace] = None) -> None:
        self._space = space

    def execute(self, program: Program) -> ExecutionLog:
        """Execute ``program``; returns the log.

        Raises the substrate's own errors (ownership violations, access
        violations, double allocations) if the program is illegal for its
        address space.
        """
        space = self._space or make_address_space(program.address_space)
        if space.kind is not program.address_space:
            raise ProgramError(
                f"program targets {program.address_space} but space is {space.kind}"
            )
        log = ExecutionLog()
        for stmt in program:
            self._step(stmt, space, log)
        return log

    def _step(self, stmt: Stmt, space: AddressSpace, log: ExecutionLog) -> None:
        if isinstance(stmt, Comment):
            return
        if isinstance(stmt, Alloc):
            self._alloc(stmt, space, log)
        elif isinstance(stmt, Free):
            self._free(stmt, space, log)
        elif isinstance(stmt, Memcpy):
            self._memcpy(stmt, space, log)
        elif isinstance(stmt, ReleaseOwnership):
            self._ownership(space, log, stmt.names, stmt.by, release=True)
        elif isinstance(stmt, AcquireOwnership):
            self._ownership(space, log, stmt.names, stmt.by, release=False)
        elif isinstance(stmt, KernelLaunch):
            self._launch(stmt, space, log)
        elif isinstance(stmt, Push):
            log.pushes += 1
            log.record(f"push {stmt.name} -> {stmt.level}")
        elif isinstance(stmt, Sync):
            log.record("return-sync")
        else:
            raise ProgramError(f"interpreter cannot execute {type(stmt).__name__}")

    def _alloc(self, stmt: Alloc, space: AddressSpace, log: ExecutionLog) -> None:
        if stmt.kind == "malloc":
            space.alloc(stmt.name, stmt.size, pu=ProcessingUnit.CPU)
        elif stmt.kind == "sharedmalloc":
            space.alloc(stmt.name, stmt.size, pu=ProcessingUnit.CPU, shared=True)
        elif stmt.kind == "adsmAlloc":
            space.alloc(stmt.name, stmt.size, shared=True)
        elif stmt.kind == "gpu_malloc":
            if isinstance(space, DisjointAddressSpace):
                space.alloc_device_copy(space.allocation(stmt.name), ProcessingUnit.GPU)
            else:
                space.alloc(f"{stmt.name}@gpu", stmt.size, pu=ProcessingUnit.GPU)
        log.record(f"alloc {stmt.kind} {stmt.name} ({stmt.size}B)")

    def _free(self, stmt: Free, space: AddressSpace, log: ExecutionLog) -> None:
        if stmt.kind == "gpu_free":
            space.free(space.allocation(f"{stmt.name}@{ProcessingUnit.GPU}"))
        else:
            space.free(space.allocation(stmt.name))
        log.record(f"free {stmt.name}")

    def _memcpy(self, stmt: Memcpy, space: AddressSpace, log: ExecutionLog) -> None:
        host = space.allocation(stmt.name)
        device = space.allocation(f"{stmt.name}@{ProcessingUnit.GPU}")
        # Both endpoints must be reachable by their own PU.
        space.check_access(ProcessingUnit.CPU, host.addr)
        space.check_access(ProcessingUnit.GPU, device.addr)
        log.copies += 1
        log.bytes_copied += stmt.size
        log.record(f"memcpy {stmt.name} {stmt.direction} ({stmt.size}B)")

    def _ownership(
        self,
        space: AddressSpace,
        log: ExecutionLog,
        names: Tuple[str, ...],
        by: ProcessingUnit,
        release: bool,
    ) -> None:
        if not isinstance(space, PartiallySharedAddressSpace) or space.ownership is None:
            raise ProgramError(
                "ownership statements require the partially shared address "
                "space with ownership control"
            )
        if release:
            space.ownership.release(names, by=by)
        else:
            space.ownership.acquire(names, by=by)
        log.ownership_actions += 1
        verb = "release" if release else "acquire"
        log.record(f"{verb} {', '.join(names)} by {by}")

    def _launch(self, stmt: KernelLaunch, space: AddressSpace, log: ExecutionLog) -> None:
        for arg in stmt.args:
            allocation = self._resolve_arg(arg, stmt.pu, space)
            space.check_access(stmt.pu, allocation.addr)
            if isinstance(space, PartiallySharedAddressSpace) and allocation.shared:
                if space.ownership is not None:
                    if stmt.pu is ProcessingUnit.GPU:
                        # Figure 2(b): the GPU kernel body brackets its work
                        # with acquireOwnership/releaseOwnership.
                        space.ownership.acquire([allocation.name], by=stmt.pu)
                        space.ownership.release([allocation.name], by=stmt.pu)
                    else:
                        # Host-side code must already own the object (the
                        # explicit acquireOwnership precedes this call).
                        space.ownership.check_access(allocation.name, stmt.pu)
        log.kernel_launches += 1
        log.record(f"launch {stmt.kernel} on {stmt.pu}")

    @staticmethod
    def _resolve_arg(name: str, pu: ProcessingUnit, space: AddressSpace):
        """The buffer a kernel argument denotes for the launching PU.

        Under a disjoint space, a GPU kernel's ``a`` argument is really the
        device alias ``a@gpu``; elsewhere names resolve directly. Under
        ADSM, a GPU launch on a host buffer resolves to its ``_adsm``
        mapping when one exists.
        """
        if isinstance(space, DisjointAddressSpace) and pu is ProcessingUnit.GPU:
            return space.allocation(f"{name}@{pu}")
        live = space.live_allocations()
        if pu is ProcessingUnit.GPU and f"{name}_adsm" in live:
            return live[f"{name}_adsm"]
        return space.allocation(name)
