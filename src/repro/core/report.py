"""Plain-text rendering of tables and figure data."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ReproError
from repro.sim.results import SimulationResult

__all__ = ["format_table", "format_breakdown_chart", "format_series"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    if not headers:
        raise ReproError("a table needs headers")
    str_rows = [[str(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ReproError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def format_breakdown_chart(
    results: Dict[str, Dict[str, SimulationResult]],
    normalize: bool = True,
    width: int = 40,
) -> str:
    """Figure-5-style stacked bars in text form.

    ``results`` is {kernel: {system: result}}. Bars are normalized per
    kernel to the slowest system (as the paper normalizes per benchmark).
    """
    out: List[str] = []
    for kernel, per_system in results.items():
        out.append(f"{kernel}:")
        slowest = max(r.total_seconds for r in per_system.values()) or 1.0
        for system, result in per_system.items():
            b = result.breakdown
            scale = (width / slowest) if normalize else (width / max(slowest, 1e-30))
            seq = int(round(b.sequential * scale))
            par = int(round(b.parallel * scale))
            comm = int(round(b.communication * scale))
            bar = "S" * seq + "P" * par + "C" * comm
            rel = result.total_seconds / slowest
            out.append(f"  {system:<14} |{bar:<{width}}| {rel:6.3f}")
        out.append("")
    return "\n".join(out).rstrip()


def format_series(
    series: Dict[str, Dict[str, float]],
    value_label: str = "value",
    fmt: str = "{:.3g}",
) -> str:
    """Render {row: {column: value}} as a table."""
    columns = sorted({c for row in series.values() for c in row})
    headers = ["", *columns]
    rows = [
        [name, *(fmt.format(values.get(c, float("nan"))) for c in columns)]
        for name, values in series.items()
    ]
    return format_table(headers, rows, title=value_label)
