"""Enumeration over the full memory-model design space."""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.design_point import DesignPoint
from repro.taxonomy import (
    AddressSpaceKind,
    CoherenceKind,
    CommMechanism,
    ConsistencyModel,
    LocalityScheme,
)

__all__ = ["DesignSpace"]


class DesignSpace:
    """The cross product of all design axes, with feasibility filtering.

    >>> space = DesignSpace()
    >>> space.total_points() == (4 * 6 * 8 * 6 * 4)
    True
    """

    def __init__(
        self,
        address_spaces: Optional[Sequence[AddressSpaceKind]] = None,
        comms: Optional[Sequence[CommMechanism]] = None,
        localities: Optional[Sequence[LocalityScheme]] = None,
        coherences: Optional[Sequence[CoherenceKind]] = None,
        consistencies: Optional[Sequence[ConsistencyModel]] = None,
    ) -> None:
        self.address_spaces = tuple(address_spaces or AddressSpaceKind)
        self.comms = tuple(comms or CommMechanism)
        self.localities = tuple(localities or LocalityScheme)
        self.coherences = tuple(coherences or CoherenceKind)
        self.consistencies = tuple(consistencies or ConsistencyModel)

    def total_points(self) -> int:
        """Size of the unfiltered cross product."""
        return (
            len(self.address_spaces)
            * len(self.comms)
            * len(self.localities)
            * len(self.coherences)
            * len(self.consistencies)
        )

    def enumerate(
        self, feasible_only: bool = True, desirable_only: bool = False
    ) -> Iterator[DesignPoint]:
        """Yield design points, skipping infeasible ones by default.

        ``desirable_only`` additionally drops points the paper deems
        possible but undesirable (see :meth:`DesignPoint.warnings`).
        """
        for space, comm, locality, coherence, consistency in itertools.product(
            self.address_spaces,
            self.comms,
            self.localities,
            self.coherences,
            self.consistencies,
        ):
            point = DesignPoint(
                address_space=space,
                comm=comm,
                locality=locality,
                coherence=coherence,
                consistency=consistency,
            )
            if feasible_only and not point.is_feasible:
                continue
            if desirable_only and not point.is_desirable:
                continue
            yield point

    def feasible_points(self) -> List[DesignPoint]:
        return list(self.enumerate(feasible_only=True))

    def desirable_points(self) -> List[DesignPoint]:
        return list(self.enumerate(feasible_only=True, desirable_only=True))

    def options_by_address_space(self) -> Dict[AddressSpaceKind, int]:
        """Desirable design points per address space.

        The paper's conclusion: "the partially shared address space scheme
        provides the most versatile design options in locality management
        and communication methods." Undesirable combinations (feasible but
        argued against in §II) do not count as real options.
        """
        counts: Dict[AddressSpaceKind, int] = {k: 0 for k in self.address_spaces}
        for point in self.enumerate(feasible_only=True, desirable_only=True):
            counts[point.address_space] += 1
        return counts

    def most_versatile_address_space(self) -> AddressSpaceKind:
        """The address space admitting the most feasible design points."""
        counts = self.options_by_address_space()
        return max(counts, key=lambda k: counts[k])
