"""Design-option efficiency metrics (the paper's stated future work).

"In future work, we will develop metrics to measure the efficiency of
design options to provide guidelines for future programming languages and
future hardware system development." (§VII)

This module implements that metric: each address space is scored on four
normalized axes —

- **performance**: mean execution time across the six kernels under the
  space's representative case-study system;
- **energy**: mean energy per run (see :mod:`repro.energy`);
- **programmability**: total source lines (computation + communication
  handling, Table V) relative to the leanest option — the paper's framing:
  the partially shared space "does not significantly increase the
  difficulty of programmability compared to the unified memory space";
- **versatility**: feasible locality-management options (§II-B).

Every axis is normalized to the best option (1.0 = best), and the composite
is a weighted geometric mean, so a zero on any axis zeroes the whole score
and no axis can buy out another linearly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config.presets import CaseStudy, case_study
from repro.config.system import SystemConfig
from repro.core.programmability import table5_dict
from repro.energy.accounting import trace_energy
from repro.errors import DesignSpaceError
from repro.kernels.base import Kernel
from repro.kernels.registry import all_kernels
from repro.locality.schemes import feasible_schemes
from repro.sim.fast import FastSimulator
from repro.taxonomy import AddressSpaceKind

__all__ = ["MetricWeights", "EfficiencyScore", "EfficiencyMetric", "REPRESENTATIVE_SYSTEMS"]

#: The case-study system representing each address space in §V-A.
REPRESENTATIVE_SYSTEMS: Dict[AddressSpaceKind, str] = {
    AddressSpaceKind.DISJOINT: "CPU+GPU",
    AddressSpaceKind.PARTIALLY_SHARED: "LRB",
    AddressSpaceKind.ADSM: "GMAC",
    AddressSpaceKind.UNIFIED: "IDEAL-HETERO",
}


@dataclass(frozen=True)
class MetricWeights:
    """Relative importance of the four axes (exponents of the geometric
    mean; they need not sum to one)."""

    performance: float = 1.0
    energy: float = 1.0
    programmability: float = 1.0
    versatility: float = 1.0

    def __post_init__(self) -> None:
        for name in ("performance", "energy", "programmability", "versatility"):
            if getattr(self, name) < 0:
                raise DesignSpaceError(f"weight {name} must be non-negative")
        if all(
            getattr(self, name) == 0
            for name in ("performance", "energy", "programmability", "versatility")
        ):
            raise DesignSpaceError("at least one weight must be positive")


@dataclass(frozen=True)
class EfficiencyScore:
    """One address space's normalized axis scores and composite."""

    space: AddressSpaceKind
    performance: float
    energy: float
    programmability: float
    versatility: float
    composite: float
    raw_mean_seconds: float
    raw_mean_energy_uj: float
    raw_comm_lines: int
    raw_locality_options: int


class EfficiencyMetric:
    """Scores address spaces on performance/energy/programmability/options."""

    def __init__(
        self,
        system: Optional[SystemConfig] = None,
        weights: Optional[MetricWeights] = None,
    ) -> None:
        self.system = system or SystemConfig()
        self.weights = weights or MetricWeights()
        self._simulator = FastSimulator(self.system)

    def _raw_axes(self, space: AddressSpaceKind, kernels: Sequence[Kernel]):
        from repro.progmodel.lowering import lower
        from repro.progmodel.spec import all_program_specs

        case = case_study(REPRESENTATIVE_SYSTEMS[space])
        times: List[float] = []
        energies: List[float] = []
        for kernel in kernels:
            trace = kernel.trace()
            times.append(self._simulator.run(trace, case=case).total_seconds)
            energies.append(trace_energy(trace, case, self.system).total_uj)
        comm_lines = sum(row[space] for row in table5_dict().values())
        total_lines = sum(
            lower(spec, space).total_lines() for spec in all_program_specs()
        )
        options = len(feasible_schemes(space))
        return (
            sum(times) / len(times),
            sum(energies) / len(energies),
            comm_lines,
            total_lines,
            options,
        )

    def score_all(
        self, kernels: Optional[Sequence[Kernel]] = None
    ) -> List[EfficiencyScore]:
        """Score every address space; best composite first."""
        kernels = list(kernels or all_kernels())
        raw = {space: self._raw_axes(space, kernels) for space in AddressSpaceKind}

        best_time = min(r[0] for r in raw.values())
        best_energy = min(r[1] for r in raw.values())
        best_total_lines = min(r[3] for r in raw.values())
        best_options = max(r[4] for r in raw.values())

        scores = []
        for space, (mean_s, mean_uj, lines, total_lines, options) in raw.items():
            performance = best_time / mean_s
            energy = best_energy / mean_uj
            # Whole-program line ratio: communication overhead is judged
            # against the size of the code it decorates (§V-C).
            programmability = best_total_lines / total_lines
            versatility = options / best_options
            w = self.weights
            total_weight = w.performance + w.energy + w.programmability + w.versatility
            composite = math.exp(
                (
                    w.performance * math.log(performance)
                    + w.energy * math.log(energy)
                    + w.programmability * math.log(programmability)
                    + w.versatility * math.log(versatility)
                )
                / total_weight
            )
            scores.append(
                EfficiencyScore(
                    space=space,
                    performance=performance,
                    energy=energy,
                    programmability=programmability,
                    versatility=versatility,
                    composite=composite,
                    raw_mean_seconds=mean_s,
                    raw_mean_energy_uj=mean_uj,
                    raw_comm_lines=lines,
                    raw_locality_options=options,
                )
            )
        return sorted(scores, key=lambda s: s.composite, reverse=True)

    def guidelines(self, kernels: Optional[Sequence[Kernel]] = None) -> str:
        """The future-work deliverable: a guideline report."""
        scores = self.score_all(kernels)
        lines = ["Design-option efficiency guidelines (1.00 = best on an axis)", ""]
        header = f"{'space':<6} {'perf':>6} {'energy':>7} {'prog':>6} {'options':>8} {'composite':>10}"
        lines.append(header)
        lines.append("-" * len(header))
        for s in scores:
            lines.append(
                f"{s.space.short:<6} {s.performance:>6.2f} {s.energy:>7.2f} "
                f"{s.programmability:>6.2f} {s.versatility:>8.2f} {s.composite:>10.3f}"
            )
        winner = scores[0]
        lines.append("")
        lines.append(
            f"recommendation: {winner.space.short} "
            f"(composite {winner.composite:.3f}; "
            f"{winner.raw_locality_options} locality options, "
            f"{winner.raw_comm_lines} comm lines across the suite)"
        )
        return "\n".join(lines)
