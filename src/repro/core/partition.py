"""Adaptive work partitioning (Qilin-style, the paper's reference [25]).

§IV-B: "Ideally, we like to divide the work between CPUs and GPUs
intelligently so that the total execution time can be minimized. Since
determining how to partition the work is beyond the scope of our work
([25], [11] present sophisticated algorithms ...), we simply divide the
computational work evenly." This module supplies that missing piece: a
makespan-minimizing partitioner over the analytic core models.

Two strategies:

- :func:`rate_based_split` — Qilin's closed form: profile each PU's
  throughput on the kernel, split proportionally to the rates;
- :func:`optimal_split` — golden-section search over the simulated
  makespan (handles non-linear effects such as cache-capacity cliffs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.config.presets import CaseStudy, case_study
from repro.config.system import SystemConfig
from repro.core.sweeps import repartition
from repro.errors import DesignSpaceError
from repro.kernels.base import Kernel
from repro.sim.analytic import AnalyticTiming
from repro.sim.fast import FastSimulator
from repro.trace.stream import KernelTrace

__all__ = ["PartitionResult", "rate_based_split", "optimal_split"]

_GOLDEN = (math.sqrt(5.0) - 1.0) / 2.0


@dataclass(frozen=True)
class PartitionResult:
    """Outcome of a partitioning decision."""

    cpu_fraction: float
    total_seconds: float
    even_split_seconds: float

    @property
    def speedup_over_even(self) -> float:
        return self.even_split_seconds / self.total_seconds

    def __post_init__(self) -> None:
        if not 0.0 < self.cpu_fraction < 1.0:
            raise DesignSpaceError("cpu_fraction must be in (0, 1)")


def rate_based_split(
    kernel: Kernel,
    system: Optional[SystemConfig] = None,
) -> float:
    """Qilin's closed-form split: profile per-PU throughput on the kernel's
    parallel phases, then give each PU work proportional to its rate."""
    system = system or SystemConfig()
    timing = AnalyticTiming(system)
    trace = kernel.trace()
    cpu_time = sum(timing.cpu_segment_seconds(p.cpu) for p in trace.parallel_phases)
    gpu_time = sum(timing.gpu_segment_seconds(p.gpu) for p in trace.parallel_phases)
    cpu_work = sum(p.cpu.mix.total for p in trace.parallel_phases)
    gpu_work = sum(p.gpu.mix.total for p in trace.parallel_phases)
    if cpu_time <= 0 or gpu_time <= 0:
        raise DesignSpaceError(f"{kernel.name}: cannot profile an empty parallel phase")
    cpu_rate = cpu_work / cpu_time
    gpu_rate = gpu_work / gpu_time
    return cpu_rate / (cpu_rate + gpu_rate)


def optimal_split(
    kernel: Kernel,
    case_name: str = "IDEAL-HETERO",
    system: Optional[SystemConfig] = None,
    tolerance: float = 0.005,
) -> PartitionResult:
    """Golden-section search for the makespan-minimizing CPU fraction."""
    if not 0 < tolerance < 0.5:
        raise DesignSpaceError("tolerance must be in (0, 0.5)")
    system = system or SystemConfig()
    sim = FastSimulator(system)
    case = case_study(case_name)
    base = kernel.trace()

    def makespan(fraction: float) -> float:
        return sim.run(repartition(base, fraction), case=case).total_seconds

    lo, hi = 0.01, 0.99
    x1 = hi - _GOLDEN * (hi - lo)
    x2 = lo + _GOLDEN * (hi - lo)
    f1, f2 = makespan(x1), makespan(x2)
    while hi - lo > tolerance:
        if f1 <= f2:
            hi, x2, f2 = x2, x1, f1
            x1 = hi - _GOLDEN * (hi - lo)
            f1 = makespan(x1)
        else:
            lo, x1, f1 = x1, x2, f2
            x2 = lo + _GOLDEN * (hi - lo)
            f2 = makespan(x2)
    best = (lo + hi) / 2.0
    return PartitionResult(
        cpu_fraction=best,
        total_seconds=makespan(best),
        even_split_seconds=sim.run(base, case=case).total_seconds,
    )
