"""The explorer: runs the paper's quantitative experiments.

- :meth:`Explorer.run_case_studies` — five systems x six kernels
  (Figures 5 and 6);
- :meth:`Explorer.run_address_spaces` — UNI/PAS/DIS/ADSM with ideal
  communication and a shared cache (Figure 7);
- :meth:`Explorer.evaluate_design_point` / :meth:`Explorer.rank_design_points`
  — combine performance, programmability, and option counts into the
  paper's overall judgement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.check import CheckConfig, check_trace
from repro.config.comm import CommParams
from repro.config.presets import CASE_STUDIES, CaseStudy
from repro.config.system import SystemConfig
from repro.core.design_point import DesignPoint
from repro.core.space import DesignSpace
from repro.core.programmability import table5_dict
from repro.errors import CheckError, ConfigError, DesignSpaceError
from repro.exec.cache import SHARED_TRACE_CACHE, ResultCache, TraceCache
from repro.exec.checkpoint import SweepCheckpoint, sweep_signature
from repro.exec.job import SimJob
from repro.exec.retry import RetryPolicy
from repro.exec.runner import ParallelRunner
from repro.exec.stats import RunStats
from repro.faults.spec import FaultPlan
from repro.kernels.base import Kernel
from repro.kernels.registry import all_kernels
from repro.locality.schemes import feasible_schemes
from repro.obs.log import get_logger
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.sim.fast import FastSimulator
from repro.sim.mmu import stage_shared_trace
from repro.sim.results import SimulationResult
from repro.store.cache import StoreBackedResultCache
from repro.store.store import ResultStore
from repro.taxonomy import AddressSpaceKind, CommMechanism

__all__ = ["Explorer", "DesignPointEvaluation"]

_log = get_logger("core.explorer")

#: Valid values for the Explorer's pre-simulation check gate.
#: ``optimize`` runs the checker with the advisory OPT/INF dataflow
#: passes enabled and logs every finding, but — like ``warn`` — never
#: refuses to simulate: optimization opportunities are not violations.
CHECK_MODES = ("off", "warn", "error", "optimize")


@dataclass(frozen=True)
class DesignPointEvaluation:
    """Aggregate metrics for one design point across the kernels."""

    point: DesignPoint
    mean_seconds: float
    mean_comm_fraction: float
    comm_lines_total: int
    locality_options: int

    def score(self) -> Tuple[float, float, float]:
        """Sort key for ranking: more options, fewer comm lines, faster.

        Mirrors the paper's weighting: versatility of design options is
        the headline criterion, programmability second, raw performance
        last (the paper shows address space barely affects performance).
        """
        return (-self.locality_options, self.comm_lines_total, self.mean_seconds)


class Explorer:
    """Runs experiment suites over kernels, case studies, and design points."""

    def __init__(
        self,
        system: Optional[SystemConfig] = None,
        comm_params: Optional[CommParams] = None,
        detailed: bool = False,
        detailed_scale: float = 0.02,
        jobs: int = 1,
        trace_cache: Optional[TraceCache] = None,
        result_cache: Optional[ResultCache] = None,
        tracer: Tracer = NULL_TRACER,
        check: str = "off",
        faults: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        job_timeout: Optional[float] = None,
        sweep: bool = False,
        store: Optional[ResultStore] = None,
        warm_dir: Optional[str] = None,
    ) -> None:
        self.system = system or SystemConfig()
        self.comm_params = comm_params or CommParams()
        #: Span tracer handed to directly-driven simulators. Worker
        #: processes cannot stream into it; batch runs synthesize their
        #: trace post-hoc from result phases (:func:`trace_from_results`).
        self.tracer = tracer
        self.simulator = FastSimulator(self.system, self.comm_params, tracer=tracer)
        #: With ``detailed`` the case-study suite also runs through the
        #: per-instruction machine at ``detailed_scale`` (see
        #: :meth:`run_case_studies_detailed`).
        self.detailed = detailed
        self.detailed_scale = detailed_scale
        #: The exploration runtime: ``jobs`` worker processes (1 = fully
        #: in-process), a trace memo shared across explorers by default,
        #: and a per-explorer result memo. Parallel runs preserve
        #: submission order, so results are identical to ``jobs=1``.
        self.run_stats = RunStats()
        #: Resilience knobs: ``faults`` wraps every job's channel in a
        #: fault-injecting decorator (see :mod:`repro.faults`), ``retry``
        #: bounds harness-level re-attempts with deterministic backoff,
        #: ``job_timeout`` caps each pool job's wall-clock. All default to
        #: off, keeping the clean path byte-identical.
        self.faults = faults if (faults is not None and faults.active) else None
        #: With ``warm_dir`` the segment-compile cache grows a shared tier
        #: (:mod:`repro.perf.warm`): this process publishes compilations
        #: into a shared-memory region under that directory, and every
        #: pool worker attaches to it — pre-warming its local cache — via
        #: the runner's initializer. Falls back to private caches (region
        #: disabled) when shared memory is unavailable.
        self.warm_region = None
        initializer = None
        initargs: tuple = ()
        if warm_dir is not None:
            from repro.perf.compiled import SHARED_COMPILE_CACHE
            from repro.perf.warm import SharedCompileRegion, attach_region

            self.warm_region = SharedCompileRegion(warm_dir)
            SHARED_COMPILE_CACHE.shared = self.warm_region
            initializer = attach_region
            initargs = (warm_dir,)
        self.runner = ParallelRunner(
            jobs=jobs,
            stats=self.run_stats,
            retry=retry,
            job_timeout=job_timeout,
            initializer=initializer,
            initargs=initargs,
        )
        self.trace_cache = trace_cache if trace_cache is not None else SHARED_TRACE_CACHE
        #: With ``store`` the result memo is backed by a durable
        #: :class:`~repro.store.store.ResultStore`: misses fall through to
        #: disk, computed results write through, so a killed run replays
        #: completed simulations on restart (see :mod:`repro.store`). An
        #: explicit ``result_cache`` wins; without either, the memo is the
        #: plain in-process :class:`ResultCache` and nothing touches disk.
        self.store = store
        if result_cache is not None:
            self.result_cache = result_cache
        elif store is not None:
            self.result_cache = StoreBackedResultCache(store)
        else:
            self.result_cache = ResultCache()
        #: Flat results of the most recent batch, in submission order —
        #: the input :func:`~repro.obs.tracing.trace_from_results` needs.
        self.last_results: List[SimulationResult] = []
        #: Pre-simulation static checker gate (``repro.check``): ``"off"``
        #: skips it entirely (default — output stays byte-identical),
        #: ``"warn"`` logs findings, ``"error"`` refuses to simulate a
        #: trace that violates its design point's obligations, and
        #: ``"optimize"`` logs correctness *and* advisory OPT/INF
        #: findings without ever gating.
        if check not in CHECK_MODES:
            raise ConfigError(
                f"check mode must be one of {CHECK_MODES}, got {check!r}"
            )
        self.check = check
        self._check_memo: Dict[Tuple, bool] = {}
        #: Route detailed point sweeps through the batched design-point
        #: axis (:mod:`repro.perf.sweep`): points partition into per-trace
        #: batches instead of per-point jobs, sharing one compiled event
        #: stream pass per batch. Results are bit-identical to the per-job
        #: path (the parity suite pins it); fault-injected runs fall back
        #: automatically. Off by default — the per-job path stays the
        #: oracle.
        self.sweep = sweep

    @property
    def jobs(self) -> int:
        return self.runner.jobs

    def cache_stats(self) -> "Dict[str, Dict[str, float]]":
        """The memo layer's stats dicts, keyed by cache name.

        The warm-start observability surface (``--metrics-out`` emits
        these as ``exec.cache.*``, serve as ``/metrics`` lines):
        ``compile`` is this process's segment-compile cache, whose
        ``shared_hits``/``published`` counters show the shared region
        working; worker-side compile activity arrives separately through
        the ``exec.compile.*`` counters.
        """
        from repro.perf.compiled import SHARED_COMPILE_CACHE

        return {
            "trace": dict(self.trace_cache.stats()),
            "result": dict(self.result_cache.stats()),
            "compile": dict(SHARED_COMPILE_CACHE.stats()),
        }

    def _job(self, trace, **kwargs) -> SimJob:
        """A :class:`SimJob` pinned to this explorer's machine parameters."""
        return SimJob(
            trace=trace,
            system=self.system,
            comm_params=self.comm_params,
            fault_plan=self.faults,
            **kwargs,
        )

    def _gate(self, trace, config: CheckConfig) -> None:
        """Run the static checker on one (trace, config) pair if enabled.

        ``warn`` logs every finding; ``error`` raises :class:`CheckError`
        when the report contains error-severity findings; ``optimize``
        behaves like ``warn`` but additionally runs the OPT/INF dataflow
        passes (dead/redundant transfers, inferable declarations) —
        advisory findings that never gate. Reports are memoized per
        (trace, config), so repeated submissions of the same pair (rank's
        big fan-out) check once.
        """
        if self.check == "off":
            return
        key = (trace, config)
        if key in self._check_memo:
            ok = self._check_memo[key]
            if not ok and self.check == "error":
                raise CheckError(
                    f"{trace.name} violates the {config.label} obligations "
                    "(previously reported)"
                )
            return
        report = check_trace(trace, config, optimize=self.check == "optimize")
        for finding in report.findings:
            _log.warning("[check] %s", finding.line())
        self._check_memo[key] = not report.errors
        if self.check == "error" and report.errors:
            raise CheckError(
                f"{trace.name} violates the {config.label} obligations: "
                + "; ".join(f.line() for f in report.findings)
            )

    def run_case_studies_detailed(
        self,
        kernels: Optional[Sequence[Kernel]] = None,
        cases: Optional[Sequence[CaseStudy]] = None,
    ) -> Dict[str, Dict[str, SimulationResult]]:
        """Figure 5's grid through the detailed simulator (scaled traces).

        Slower by orders of magnitude than :meth:`run_case_studies`; used
        to confirm the fast model's orderings at instruction fidelity.
        The batch routes through the runner like every other suite, so it
        parallelizes, retries, and — when the detailed machine raises a
        :class:`~repro.errors.SimulationError` — degrades to the fast
        model per job (result flagged ``degraded``) instead of aborting.
        """
        kernels = list(kernels or all_kernels())
        cases = list(cases or CASE_STUDIES.values())
        jobs = [
            self._job(
                kernel.trace().scaled(self.detailed_scale),
                case=case,
                detailed=True,
            )
            for kernel in kernels
            for case in cases
        ]
        flat = self._run_detailed_jobs(jobs, stage="case-studies-detailed")
        self.last_results = flat
        results: Dict[str, Dict[str, SimulationResult]] = {}
        for i, kernel in enumerate(kernels):
            row = flat[i * len(cases) : (i + 1) * len(cases)]
            results[kernel.name] = {
                case.name: result for case, result in zip(cases, row)
            }
        return results

    def _run_detailed_jobs(
        self, jobs: List[SimJob], stage: str
    ) -> List[SimulationResult]:
        """Detailed batches: per-point jobs, or batched sweeps when opted in.

        With :attr:`sweep` set, the points partition into per-trace
        :class:`~repro.exec.sweepjob.SweepBatchJob`\\ s (one compiled event
        stream pass per trace) and fan out through the runner; ineligible
        batches (faults, explicit channels) fall back to the per-job path.
        Either way the results come back in submission order, bit-identical
        to per-job execution.
        """
        if self.sweep:
            from repro.exec.sweepjob import partition_jobs, run_sweep_batch_stats

            batches = partition_jobs(jobs)
            if batches is not None:
                computed = self.runner.map(
                    run_sweep_batch_stats,
                    [batch for batch, _ in batches],
                    stage=stage,
                )
                flat: List[Optional[SimulationResult]] = [None] * len(jobs)
                for (_, indices), (batch_results, compile_delta) in zip(
                    batches, computed
                ):
                    self.run_stats.record_compile(compile_delta)
                    for index, result in zip(indices, batch_results):
                        flat[index] = result
                assert all(r is not None for r in flat)
                return flat  # type: ignore[return-value]
        return self.runner.run_jobs(
            jobs, result_cache=self.result_cache, stage=stage
        )

    # -- coherence-overhead experiment ----------------------------------------

    def run_coherence_overhead(
        self,
        kernels: Optional[Sequence[Kernel]] = None,
        spaces: Optional[Sequence[AddressSpaceKind]] = None,
        protocols: Sequence[str] = ("none", "snoop", "directory"),
    ) -> Dict[str, Dict[str, Dict[str, SimulationResult]]]:
        """{space: {protocol: {kernel: result}}} — the coherence sweep.

        For every address space the kernels are restaged so the data that
        space actually shares lives in the shared window
        (:func:`~repro.sim.mmu.stage_shared_trace`), then simulated in
        detail (at :attr:`detailed_scale`, ideal communication, so protocol
        traffic is the only variable) once per protocol variant. The
        ``"none"`` column is the baseline each variant's overhead is
        measured against; a disjoint space shares nothing, so its protocol
        columns measure a true zero.
        """
        kernels = list(kernels or all_kernels())
        spaces = list(spaces or AddressSpaceKind)
        staged = {
            space: {
                kernel.name: stage_shared_trace(
                    kernel.trace().scaled(self.detailed_scale), space
                )
                for kernel in kernels
            }
            for space in spaces
        }
        jobs = [
            self._job(
                staged[space][kernel.name],
                mechanism=CommMechanism.IDEAL,
                detailed=True,
                coherence=protocol,
                system_name=f"{space.short}/{protocol}",
            )
            for space in spaces
            for protocol in protocols
            for kernel in kernels
        ]
        flat = self._run_detailed_jobs(jobs, stage="coherence-overhead")
        self.last_results = flat
        results: Dict[str, Dict[str, Dict[str, SimulationResult]]] = {}
        index = 0
        for space in spaces:
            per_protocol: Dict[str, Dict[str, SimulationResult]] = {}
            for protocol in protocols:
                per_protocol[protocol] = {
                    kernel.name: flat[index + k] for k, kernel in enumerate(kernels)
                }
                index += len(kernels)
            results[space.short] = per_protocol
        return results

    # -- Figure 5 / Figure 6 -------------------------------------------------

    def run_case_studies(
        self,
        kernels: Optional[Sequence[Kernel]] = None,
        cases: Optional[Sequence[CaseStudy]] = None,
    ) -> Dict[str, Dict[str, SimulationResult]]:
        """{kernel: {system: result}} over the five §V-A systems."""
        kernels = list(kernels or all_kernels())
        cases = list(cases or CASE_STUDIES.values())
        if self.check != "off":
            for kernel in kernels:
                for case in cases:
                    self._gate(
                        self.trace_cache.get(kernel), CheckConfig.from_case_study(case)
                    )
        jobs = [
            self._job(self.trace_cache.get(kernel), case=case)
            for kernel in kernels
            for case in cases
        ]
        flat = self.runner.run_jobs(
            jobs, result_cache=self.result_cache, stage="case-studies"
        )
        self.last_results = flat
        results: Dict[str, Dict[str, SimulationResult]] = {}
        for i, kernel in enumerate(kernels):
            row = flat[i * len(cases) : (i + 1) * len(cases)]
            results[kernel.name] = {
                case.name: result for case, result in zip(cases, row)
            }
        return results

    # -- Figure 7 ---------------------------------------------------------------

    def run_address_spaces(
        self,
        kernels: Optional[Sequence[Kernel]] = None,
        spaces: Optional[Sequence[AddressSpaceKind]] = None,
    ) -> Dict[str, Dict[AddressSpaceKind, SimulationResult]]:
        """{kernel: {space: result}} with ideal communication.

        §V-B: "To isolate memory space effects, we assume that all the
        systems share the cache" and the communication overhead is ideal —
        only the per-space management instructions differ.
        """
        kernels = list(kernels or all_kernels())
        spaces = list(spaces or AddressSpaceKind)
        if self.check != "off":
            for kernel in kernels:
                for space in spaces:
                    self._gate(
                        self.trace_cache.get(kernel), CheckConfig.from_space(space)
                    )
        jobs = [
            self._job(
                self.trace_cache.get(kernel),
                mechanism=CommMechanism.IDEAL,
                address_space=space,
                system_name=space.short,
            )
            for kernel in kernels
            for space in spaces
        ]
        flat = self.runner.run_jobs(
            jobs, result_cache=self.result_cache, stage="address-spaces"
        )
        self.last_results = flat
        results: Dict[str, Dict[AddressSpaceKind, SimulationResult]] = {}
        for i, kernel in enumerate(kernels):
            row = flat[i * len(spaces) : (i + 1) * len(spaces)]
            results[kernel.name] = {
                space: result for space, result in zip(spaces, row)
            }
        return results

    # -- design-point evaluation ---------------------------------------------

    def _point_jobs(
        self, point: DesignPoint, kernels: Sequence[Kernel]
    ) -> List[SimJob]:
        """One simulation job per kernel for a feasible design point."""
        point.require_feasible()
        if self.check != "off":
            for kernel in kernels:
                self._gate(
                    self.trace_cache.get(kernel), CheckConfig.from_design_point(point)
                )
        return [
            self._job(
                self.trace_cache.get(kernel),
                mechanism=point.comm,
                async_overlap=point.comm is CommMechanism.DMA_ASYNC,
                address_space=point.address_space,
                system_name=point.label,
            )
            for kernel in kernels
        ]

    @staticmethod
    def _comm_lines_by_space() -> Dict[AddressSpaceKind, int]:
        """Table V's total comm-handling lines per address space.

        Constant for a given repo state, but derived by lowering every
        program spec — expensive enough that ranking 1933 points must not
        recompute it per point.
        """
        table5 = table5_dict()
        return {
            space: sum(per_kernel[space] for per_kernel in table5.values())
            for space in AddressSpaceKind
        }

    def _evaluation(
        self,
        point: DesignPoint,
        results: Sequence[SimulationResult],
        comm_lines_by_space: Optional[Dict[AddressSpaceKind, int]] = None,
    ) -> DesignPointEvaluation:
        """Aggregate one point's per-kernel results into an evaluation."""
        totals = [r.total_seconds for r in results]
        comm_fracs = [r.breakdown.communication_fraction for r in results]
        if comm_lines_by_space is None:
            comm_lines_by_space = self._comm_lines_by_space()
        return DesignPointEvaluation(
            point=point,
            mean_seconds=sum(totals) / len(totals),
            mean_comm_fraction=sum(comm_fracs) / len(comm_fracs),
            comm_lines_total=comm_lines_by_space[point.address_space],
            locality_options=len(feasible_schemes(point.address_space)),
        )

    def evaluate_design_point(
        self,
        point: DesignPoint,
        kernels: Optional[Sequence[Kernel]] = None,
    ) -> DesignPointEvaluation:
        """Simulate a feasible design point over the kernels."""
        kernels = list(kernels or all_kernels())
        results = self.runner.run_jobs(
            self._point_jobs(point, kernels),
            result_cache=self.result_cache,
            stage="design-points",
        )
        self.last_results = results
        return self._evaluation(point, results)

    def rank_design_points(
        self,
        points: Optional[Iterable[DesignPoint]] = None,
        kernels: Optional[Sequence[Kernel]] = None,
        checkpoint: Optional[str] = None,
        checkpoint_chunk: int = 8,
        shards: Optional[int] = None,
    ) -> List[DesignPointEvaluation]:
        """Evaluate and rank design points (best first).

        The whole batch — every (point, kernel) pair — fans out through the
        runner in one submission, so worker processes stay busy and the
        memo layer collapses points that differ only in axes that cannot
        affect timing (locality, coherence, consistency) into one
        simulation each. Results come back in submission order; the
        evaluation per point is arithmetically identical to the serial
        per-point path.

        With ``checkpoint`` the sweep instead processes points in chunks of
        ``checkpoint_chunk``, persisting each completed evaluation to a
        JSONL file (see :class:`~repro.exec.checkpoint.SweepCheckpoint`);
        a killed sweep re-run with the same checkpoint path resumes from
        the completed points and produces identical output to an
        uninterrupted run. Without it, the one-shot path is untouched.

        With ``shards`` > 1 the sweep instead partitions the points into
        timing-key-aware shards (:func:`~repro.exec.sweepjob.plan_shards`)
        and evaluates whole shards inside workers — the full-space scaling
        path: per-point job construction, dedup, and aggregation all move
        off the parent process. The merged ranking is byte-identical to
        the flat/serial paths, the checkpoint file interoperates both
        directions (a killed sharded sweep resumes where a flat one would,
        and vice versa), and distinct results still write through the
        explorer's memo/durable store. Fault-injected or check-gated runs
        fall back to the flat path — those features are parent-side.
        """
        if points is None:
            points = DesignSpace().feasible_points()
        points = list(points)
        kernels = list(kernels or all_kernels())
        if shards is not None and shards < 1:
            raise ConfigError(f"shards must be >= 1, got {shards}")
        if shards is not None and shards > 1 and points:
            if self.faults is not None or self.check != "off":
                _log.debug(
                    "sharded rank unavailable with faults/check enabled; "
                    "falling back to the flat path"
                )
            else:
                return sorted(
                    self._rank_sharded(points, kernels, shards, checkpoint),
                    key=DesignPointEvaluation.score,
                )
        if checkpoint is not None:
            evaluations = self._rank_checkpointed(
                points, kernels, checkpoint, max(1, checkpoint_chunk)
            )
        else:
            jobs: List[SimJob] = []
            for point in points:
                jobs.extend(self._point_jobs(point, kernels))
            flat = self.runner.run_jobs(
                jobs, result_cache=self.result_cache, stage="rank"
            )
            self.last_results = flat
            comm_lines = self._comm_lines_by_space()
            evaluations = [
                self._evaluation(
                    point,
                    flat[i * len(kernels) : (i + 1) * len(kernels)],
                    comm_lines_by_space=comm_lines,
                )
                for i, point in enumerate(points)
            ]
        if not evaluations:
            raise DesignSpaceError("no feasible design points to rank")
        return sorted(evaluations, key=DesignPointEvaluation.score)

    def _rank_sharded(
        self,
        points: Sequence[DesignPoint],
        kernels: Sequence[Kernel],
        shards: int,
        checkpoint: Optional[str],
    ) -> List[DesignPointEvaluation]:
        """The sharded rank engine behind ``rank_design_points(shards=)``.

        Shards dispatch through the persistent pool in waves of ``jobs``;
        after each wave the completed points append to the checkpoint (when
        one is open) and the wave's distinct results write through the memo
        layer. The checkpoint signature is exactly
        :meth:`_rank_checkpointed`'s, so resume interoperates across modes.
        """
        from repro.exec.sweepjob import ShardJob, plan_shards, run_shard

        signature = sweep_signature(
            [point.label for point in points],
            [kernel.name for kernel in kernels],
            [],
        )
        by_label = {point.label: point for point in points}
        evaluations: Dict[str, DesignPointEvaluation] = {}
        store: Optional[SweepCheckpoint] = None
        loaded: Dict[str, Dict] = {}
        if checkpoint is not None:
            store = SweepCheckpoint(checkpoint)
            loaded = store.load(signature)
            for label, entry in loaded.items():
                point = by_label.get(label)
                if point is None:
                    continue
                evaluations[label] = DesignPointEvaluation(
                    point=point,
                    mean_seconds=entry["mean_seconds"],
                    mean_comm_fraction=entry["mean_comm_fraction"],
                    comm_lines_total=entry["comm_lines_total"],
                    locality_options=entry["locality_options"],
                )
            if evaluations:
                _log.debug(
                    "checkpoint %s: resuming with %d/%d point(s) already "
                    "evaluated",
                    checkpoint,
                    len(evaluations),
                    len(points),
                )
        remaining = [point for point in points if point.label not in evaluations]
        for point in remaining:
            point.require_feasible()
        comm_lines = self._comm_lines_by_space()
        comm_lines_pairs = tuple(
            sorted(comm_lines.items(), key=lambda pair: str(pair[0]))
        )
        kernel_names = tuple(kernel.name for kernel in kernels)
        shard_jobs = [
            ShardJob(
                points=tuple(points[index] for index in bucket),
                kernel_names=kernel_names,
                system=self.system,
                comm_params=self.comm_params,
                comm_lines=comm_lines_pairs,
            )
            for bucket in plan_shards(remaining, shards)
            if bucket
        ]
        collected: List[SimulationResult] = []
        if store is not None:
            store.open(signature, resume=bool(loaded))
        try:
            wave = max(1, self.jobs)
            for start in range(0, len(shard_jobs), wave):
                outcomes = self.runner.map(
                    run_shard, shard_jobs[start : start + wave], stage="rank-shards"
                )
                for outcome in outcomes:
                    self.run_stats.record_cache(
                        outcome.dedup_hits, outcome.sim_runs
                    )
                    for cache_key, result in outcome.distinct:
                        self.result_cache.put(cache_key, result)
                        collected.append(result)
                    for label, mean_s, mean_cf, lines, options in outcome.evaluations:
                        evaluation = DesignPointEvaluation(
                            point=by_label[label],
                            mean_seconds=mean_s,
                            mean_comm_fraction=mean_cf,
                            comm_lines_total=lines,
                            locality_options=options,
                        )
                        evaluations[label] = evaluation
                        if store is not None:
                            store.append(
                                {
                                    "label": label,
                                    "mean_seconds": mean_s,
                                    "mean_comm_fraction": mean_cf,
                                    "comm_lines_total": lines,
                                    "locality_options": options,
                                }
                            )
        finally:
            if store is not None:
                store.close()
        self.last_results = collected
        return [evaluations[point.label] for point in points]

    def _rank_checkpointed(
        self,
        points: Sequence[DesignPoint],
        kernels: Sequence[Kernel],
        checkpoint: str,
        chunk: int,
    ) -> List[DesignPointEvaluation]:
        """The resumable rank engine behind ``rank_design_points(checkpoint=)``.

        Completed evaluations persist as JSONL entries; floats round-trip
        through JSON bit-exactly, so a resumed sweep's ranking is
        byte-identical to an uninterrupted one. The checkpoint signature
        covers point labels, kernel names, and the fault plan — resuming
        against a changed sweep starts fresh rather than mixing results.
        """
        signature = sweep_signature(
            [point.label for point in points],
            [kernel.name for kernel in kernels],
            [self.faults.describe()] if self.faults is not None else [],
        )
        store = SweepCheckpoint(checkpoint)
        loaded = store.load(signature)
        by_label = {point.label: point for point in points}
        evaluations: Dict[str, DesignPointEvaluation] = {}
        for label, entry in loaded.items():
            point = by_label.get(label)
            if point is None:
                continue
            evaluations[label] = DesignPointEvaluation(
                point=point,
                mean_seconds=entry["mean_seconds"],
                mean_comm_fraction=entry["mean_comm_fraction"],
                comm_lines_total=entry["comm_lines_total"],
                locality_options=entry["locality_options"],
            )
        if evaluations:
            # Debug, not info: resumed stdout stays byte-identical to an
            # uninterrupted run (the resume CI check diffs them).
            _log.debug(
                "checkpoint %s: resuming with %d/%d point(s) already evaluated",
                checkpoint,
                len(evaluations),
                len(points),
            )
        remaining = [point for point in points if point.label not in evaluations]
        comm_lines = self._comm_lines_by_space()
        store.open(signature, resume=bool(loaded))
        try:
            for start in range(0, len(remaining), chunk):
                batch = remaining[start : start + chunk]
                jobs: List[SimJob] = []
                for point in batch:
                    jobs.extend(self._point_jobs(point, kernels))
                flat = self.runner.run_jobs(
                    jobs, result_cache=self.result_cache, stage="rank"
                )
                self.last_results = flat
                for i, point in enumerate(batch):
                    evaluation = self._evaluation(
                        point,
                        flat[i * len(kernels) : (i + 1) * len(kernels)],
                        comm_lines_by_space=comm_lines,
                    )
                    evaluations[point.label] = evaluation
                    store.append(
                        {
                            "label": point.label,
                            "mean_seconds": evaluation.mean_seconds,
                            "mean_comm_fraction": evaluation.mean_comm_fraction,
                            "comm_lines_total": evaluation.comm_lines_total,
                            "locality_options": evaluation.locality_options,
                        }
                    )
        finally:
            store.close()
        return [evaluations[point.label] for point in points]
