"""The explorer: runs the paper's quantitative experiments.

- :meth:`Explorer.run_case_studies` — five systems x six kernels
  (Figures 5 and 6);
- :meth:`Explorer.run_address_spaces` — UNI/PAS/DIS/ADSM with ideal
  communication and a shared cache (Figure 7);
- :meth:`Explorer.evaluate_design_point` / :meth:`Explorer.rank_design_points`
  — combine performance, programmability, and option counts into the
  paper's overall judgement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config.comm import CommParams
from repro.config.presets import CASE_STUDIES, CaseStudy
from repro.config.system import SystemConfig
from repro.comm.base import IdealChannel, make_channel
from repro.core.design_point import DesignPoint
from repro.core.space import DesignSpace
from repro.core.programmability import table5_dict
from repro.errors import DesignSpaceError
from repro.kernels.base import Kernel
from repro.kernels.registry import all_kernels
from repro.locality.schemes import feasible_schemes
from repro.sim.fast import FastSimulator
from repro.sim.results import SimulationResult
from repro.taxonomy import AddressSpaceKind, CommMechanism

__all__ = ["Explorer", "DesignPointEvaluation"]


@dataclass(frozen=True)
class DesignPointEvaluation:
    """Aggregate metrics for one design point across the kernels."""

    point: DesignPoint
    mean_seconds: float
    mean_comm_fraction: float
    comm_lines_total: int
    locality_options: int

    def score(self) -> Tuple[float, float, float]:
        """Sort key for ranking: more options, fewer comm lines, faster.

        Mirrors the paper's weighting: versatility of design options is
        the headline criterion, programmability second, raw performance
        last (the paper shows address space barely affects performance).
        """
        return (-self.locality_options, self.comm_lines_total, self.mean_seconds)


class Explorer:
    """Runs experiment suites over kernels, case studies, and design points."""

    def __init__(
        self,
        system: Optional[SystemConfig] = None,
        comm_params: Optional[CommParams] = None,
        detailed: bool = False,
        detailed_scale: float = 0.02,
    ) -> None:
        self.system = system or SystemConfig()
        self.comm_params = comm_params or CommParams()
        self.simulator = FastSimulator(self.system, self.comm_params)
        #: With ``detailed`` the case-study suite also runs through the
        #: per-instruction machine at ``detailed_scale`` (see
        #: :meth:`run_case_studies_detailed`).
        self.detailed = detailed
        self.detailed_scale = detailed_scale

    def run_case_studies_detailed(
        self,
        kernels: Optional[Sequence[Kernel]] = None,
        cases: Optional[Sequence[CaseStudy]] = None,
    ) -> Dict[str, Dict[str, SimulationResult]]:
        """Figure 5's grid through the detailed simulator (scaled traces).

        Slower by orders of magnitude than :meth:`run_case_studies`; used
        to confirm the fast model's orderings at instruction fidelity.
        """
        from repro.sim.detailed import DetailedSimulator

        kernels = list(kernels or all_kernels())
        cases = list(cases or CASE_STUDIES.values())
        results: Dict[str, Dict[str, SimulationResult]] = {}
        for kernel in kernels:
            trace = kernel.trace().scaled(self.detailed_scale)
            results[kernel.name] = {
                case.name: DetailedSimulator(self.system, self.comm_params).run(
                    trace, case=case
                )
                for case in cases
            }
        return results

    # -- Figure 5 / Figure 6 -------------------------------------------------

    def run_case_studies(
        self,
        kernels: Optional[Sequence[Kernel]] = None,
        cases: Optional[Sequence[CaseStudy]] = None,
    ) -> Dict[str, Dict[str, SimulationResult]]:
        """{kernel: {system: result}} over the five §V-A systems."""
        kernels = list(kernels or all_kernels())
        cases = list(cases or CASE_STUDIES.values())
        results: Dict[str, Dict[str, SimulationResult]] = {}
        for kernel in kernels:
            trace = kernel.trace()
            results[kernel.name] = {
                case.name: self.simulator.run(trace, case=case) for case in cases
            }
        return results

    # -- Figure 7 ---------------------------------------------------------------

    def run_address_spaces(
        self,
        kernels: Optional[Sequence[Kernel]] = None,
        spaces: Optional[Sequence[AddressSpaceKind]] = None,
    ) -> Dict[str, Dict[AddressSpaceKind, SimulationResult]]:
        """{kernel: {space: result}} with ideal communication.

        §V-B: "To isolate memory space effects, we assume that all the
        systems share the cache" and the communication overhead is ideal —
        only the per-space management instructions differ.
        """
        kernels = list(kernels or all_kernels())
        spaces = list(spaces or AddressSpaceKind)
        results: Dict[str, Dict[AddressSpaceKind, SimulationResult]] = {}
        for kernel in kernels:
            trace = kernel.trace()
            per_space: Dict[AddressSpaceKind, SimulationResult] = {}
            for space in spaces:
                per_space[space] = self.simulator.run(
                    trace,
                    channel=IdealChannel(self.comm_params),
                    address_space=space,
                    system_name=space.short,
                )
            results[kernel.name] = per_space
        return results

    # -- design-point evaluation ---------------------------------------------

    def evaluate_design_point(
        self,
        point: DesignPoint,
        kernels: Optional[Sequence[Kernel]] = None,
    ) -> DesignPointEvaluation:
        """Simulate a feasible design point over the kernels."""
        point.require_feasible()
        kernels = list(kernels or all_kernels())
        channel_async = point.comm is CommMechanism.DMA_ASYNC
        totals: List[float] = []
        comm_fracs: List[float] = []
        for kernel in kernels:
            channel = make_channel(
                point.comm,
                params=self.comm_params,
                system=self.system,
                async_overlap=channel_async,
            )
            result = self.simulator.run(
                kernel.trace(),
                channel=channel,
                address_space=point.address_space,
                system_name=point.label,
            )
            totals.append(result.total_seconds)
            comm_fracs.append(result.breakdown.communication_fraction)
        table5 = table5_dict()
        comm_lines = sum(
            per_kernel[point.address_space] for per_kernel in table5.values()
        )
        return DesignPointEvaluation(
            point=point,
            mean_seconds=sum(totals) / len(totals),
            mean_comm_fraction=sum(comm_fracs) / len(comm_fracs),
            comm_lines_total=comm_lines,
            locality_options=len(feasible_schemes(point.address_space)),
        )

    def rank_design_points(
        self,
        points: Optional[Iterable[DesignPoint]] = None,
        kernels: Optional[Sequence[Kernel]] = None,
    ) -> List[DesignPointEvaluation]:
        """Evaluate and rank design points (best first)."""
        if points is None:
            points = DesignSpace().feasible_points()
        evaluations = [self.evaluate_design_point(p, kernels) for p in points]
        if not evaluations:
            raise DesignSpaceError("no feasible design points to rank")
        return sorted(evaluations, key=DesignPointEvaluation.score)
