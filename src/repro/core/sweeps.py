"""Parameter sweeps beyond the paper's fixed settings (ablations A and D).

The paper fixes Table IV's latencies and splits work evenly (§IV-B,
citing Qilin [25] for smarter partitioning). These sweeps vary exactly
those assumptions:

- :func:`sweep_pci_bandwidth` — communication overhead vs link rate
  (PCI-E generations);
- :func:`sweep_api_latency` — sensitivity to each Table IV parameter;
- :func:`sweep_partition` — CPU/GPU work split from 0 to 1;
- :func:`sweep_fault_granularity` — LRB's page-fault accounting
  (per-object vs per-page runtimes).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.config.comm import CommParams
from repro.config.presets import case_study
from repro.config.system import SystemConfig
from repro.comm.aperture import ApertureChannel
from repro.errors import DesignSpaceError
from repro.kernels.base import Kernel
from repro.sim.fast import FastSimulator
from repro.sim.results import SimulationResult
from repro.trace.phase import ParallelPhase, SequentialPhase
from repro.trace.stream import KernelTrace
from repro.units import Bandwidth

__all__ = [
    "repartition",
    "sweep_pci_bandwidth",
    "sweep_api_latency",
    "sweep_partition",
    "sweep_fault_granularity",
    "aperture_requirements",
    "sweep_aperture_size",
    "find_lrb_crossover_bytes",
]


def repartition(trace: KernelTrace, cpu_fraction: float) -> KernelTrace:
    """Re-split every parallel phase's work at ``cpu_fraction`` to the CPU.

    The paper splits evenly (0.5); Qilin-style adaptive mapping would pick
    the ratio that minimizes the max of the two sides.
    """
    if not 0.0 < cpu_fraction < 1.0:
        raise DesignSpaceError(
            f"cpu_fraction must be in (0, 1), got {cpu_fraction}"
        )
    phases = []
    for phase in trace.phases:
        if not isinstance(phase, ParallelPhase):
            phases.append(phase)
            continue
        total = phase.cpu.mix.total + phase.gpu.mix.total
        cpu_target = total * cpu_fraction
        gpu_target = total - cpu_target
        cpu_factor = cpu_target / phase.cpu.mix.total if phase.cpu.mix.total else 0.0
        gpu_factor = gpu_target / phase.gpu.mix.total if phase.gpu.mix.total else 0.0
        phases.append(
            ParallelPhase(
                label=phase.label,
                cpu=phase.cpu.scaled(cpu_factor),
                gpu=phase.gpu.scaled(gpu_factor),
            )
        )
    return KernelTrace(name=trace.name, phases=tuple(phases))


def sweep_pci_bandwidth(
    kernel: Kernel,
    gb_per_s_values: Sequence[float],
    system: Optional[SystemConfig] = None,
) -> Dict[float, SimulationResult]:
    """CPU+GPU (disjoint over PCI-E) at several link rates."""
    results = {}
    for rate in gb_per_s_values:
        params = CommParams(pci_bandwidth=Bandwidth.from_gb_per_s(rate))
        sim = FastSimulator(system, params)
        results[rate] = sim.run(kernel.trace(), case=case_study("CPU+GPU"))
    return results


def sweep_api_latency(
    kernel: Kernel,
    parameter: str,
    values: Sequence[int],
    system: Optional[SystemConfig] = None,
) -> Dict[int, SimulationResult]:
    """LRB with one Table IV parameter varied.

    ``parameter`` is one of ``api_pci_base_cycles``, ``api_acq_cycles``,
    ``api_tr_cycles``, ``lib_pf_cycles``.
    """
    valid = ("api_pci_base_cycles", "api_acq_cycles", "api_tr_cycles", "lib_pf_cycles")
    if parameter not in valid:
        raise DesignSpaceError(f"unknown Table IV parameter {parameter!r}; use one of {valid}")
    results = {}
    for value in values:
        params = replace(CommParams(), **{parameter: value})
        sim = FastSimulator(system, params)
        results[value] = sim.run(kernel.trace(), case=case_study("LRB"))
    return results


def sweep_partition(
    kernel: Kernel,
    cpu_fractions: Sequence[float],
    case_name: str = "IDEAL-HETERO",
    system: Optional[SystemConfig] = None,
) -> Dict[float, SimulationResult]:
    """Execution time vs CPU share of the parallel work."""
    sim = FastSimulator(system)
    base = kernel.trace()
    return {
        fraction: sim.run(repartition(base, fraction), case=case_study(case_name))
        for fraction in cpu_fractions
    }


def find_lrb_crossover_bytes(
    kernel: Kernel,
    system: Optional[SystemConfig] = None,
    lo: int = 256,
    hi: int = 64 * 1024 * 1024,
    tolerance_bytes: int = 1024,
) -> int:
    """The transfer size at which LRB's communication beats CPU+GPU's.

    The two mechanisms scale differently: the PCI-E memcpy path pays
    ``33250 + bytes/16 GB/s`` per transfer, while LRB's aperture pays
    per-object/fault costs that are *size-independent* (data in the shared
    window never copies back). Below the crossover the simple memcpy wins;
    above it, the shared window wins — one of the "where crossovers fall"
    questions the figure shapes imply. Bisects on the kernel's problem
    size; returns the initial-transfer byte count at the tie.
    """
    if tolerance_bytes < 1:
        raise DesignSpaceError("tolerance must be >= 1 byte")
    system = system or SystemConfig()
    sim = FastSimulator(system)

    def comm_gap(num_bytes: int) -> float:
        """LRB comm seconds minus CPU+GPU comm seconds at this size."""
        elements = max(num_bytes // 4, 2)
        trace = kernel.build(kernel.for_size(elements))
        lrb = sim.run(trace, case=case_study("LRB")).breakdown.communication
        pcie = sim.run(trace, case=case_study("CPU+GPU")).breakdown.communication
        return lrb - pcie

    if comm_gap(lo) < 0:
        return lo  # LRB already wins at the smallest size
    if comm_gap(hi) > 0:
        raise DesignSpaceError(
            f"{kernel.name}: no crossover up to {hi} bytes (LRB never wins)"
        )
    while hi - lo > tolerance_bytes:
        mid = (lo + hi) // 2
        if comm_gap(mid) > 0:
            lo = mid
        else:
            hi = mid
    return (lo + hi) // 2


def aperture_requirements() -> Dict[str, int]:
    """Shared-window bytes each kernel needs under the LRB model.

    §II-A3 notes the PCI aperture "is intended to support only small
    portions of memory space"; this quantifies the pressure: the sum of
    every shared buffer the kernel's program spec allocates in the window.
    """
    from repro.progmodel.spec import all_program_specs

    return {
        spec.name: sum(buffer.size for buffer in spec.buffers)
        for spec in all_program_specs()
    }


def sweep_aperture_size(sizes_bytes: Sequence[int]) -> Dict[int, List[str]]:
    """Which kernels fit per aperture size: {size: [fitting kernel names]}.

    A kernel "fits" when all its shared buffers can live in the window at
    once (the LRB programming model keeps them resident for the kernel's
    lifetime).
    """
    requirements = aperture_requirements()
    result: Dict[int, List[str]] = {}
    for size in sizes_bytes:
        if size <= 0:
            raise DesignSpaceError(f"aperture size must be positive, got {size}")
        result[size] = [name for name, need in requirements.items() if need <= size]
    return result


def sweep_fault_granularity(
    kernel: Kernel,
    system: Optional[SystemConfig] = None,
) -> Dict[str, SimulationResult]:
    """LRB with per-object vs per-page first-touch faulting."""
    system = system or SystemConfig()
    results = {}
    for granularity in ("object", "page"):
        sim = FastSimulator(system)
        channel = ApertureChannel(
            sim.comm_params,
            page_bytes=system.page_bytes_cpu,
            fault_granularity=granularity,
        )
        results[granularity] = sim.run(
            kernel.trace(), channel=channel, system_name=f"LRB[{granularity}]"
        )
    return results
