"""Parameter sweeps beyond the paper's fixed settings (ablations A and D).

The paper fixes Table IV's latencies and splits work evenly (§IV-B,
citing Qilin [25] for smarter partitioning). These sweeps vary exactly
those assumptions:

- :func:`sweep_pci_bandwidth` — communication overhead vs link rate
  (PCI-E generations);
- :func:`sweep_api_latency` — sensitivity to each Table IV parameter;
- :func:`sweep_partition` — CPU/GPU work split from 0 to 1;
- :func:`sweep_fault_granularity` — LRB's page-fault accounting
  (per-object vs per-page runtimes).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.config.comm import CommParams
from repro.config.presets import case_study
from repro.config.system import SystemConfig
from repro.comm.aperture import ApertureChannel
from repro.errors import DesignSpaceError
from repro.exec.job import SimJob
from repro.exec.runner import ParallelRunner
from repro.kernels.base import Kernel
from repro.sim.fast import FastSimulator
from repro.sim.results import SimulationResult
from repro.trace.phase import ParallelPhase, SequentialPhase
from repro.trace.stream import KernelTrace
from repro.units import Bandwidth

__all__ = [
    "repartition",
    "sweep_pci_bandwidth",
    "sweep_api_latency",
    "sweep_partition",
    "sweep_fault_granularity",
    "aperture_requirements",
    "sweep_aperture_size",
    "find_lrb_crossover_bytes",
]


def repartition(trace: KernelTrace, cpu_fraction: float) -> KernelTrace:
    """Re-split every parallel phase's work at ``cpu_fraction`` to the CPU.

    The paper splits evenly (0.5); Qilin-style adaptive mapping would pick
    the ratio that minimizes the max of the two sides.
    """
    if not 0.0 < cpu_fraction < 1.0:
        raise DesignSpaceError(
            f"cpu_fraction must be in (0, 1), got {cpu_fraction}"
        )
    phases = []
    for phase in trace.phases:
        if not isinstance(phase, ParallelPhase):
            phases.append(phase)
            continue
        cpu_total = phase.cpu.mix.total
        gpu_total = phase.gpu.mix.total
        total = cpu_total + gpu_total
        if total == 0:
            raise DesignSpaceError(
                f"{trace.name}: parallel phase {phase.label!r} has no work "
                "on either PU; nothing to repartition"
            )
        if cpu_total == 0 or gpu_total == 0:
            # An empty side has no mix to scale up, so its share cannot be
            # re-assigned; the busy side keeps all the work (conserving the
            # phase's total instructions) instead of silently dropping the
            # share that would have moved.
            phases.append(phase)
            continue
        cpu_target = total * cpu_fraction
        gpu_target = total - cpu_target
        phases.append(
            ParallelPhase(
                label=phase.label,
                cpu=phase.cpu.scaled(cpu_target / cpu_total),
                gpu=phase.gpu.scaled(gpu_target / gpu_total),
            )
        )
    return KernelTrace(name=trace.name, phases=tuple(phases))


def sweep_pci_bandwidth(
    kernel: Kernel,
    gb_per_s_values: Sequence[float],
    system: Optional[SystemConfig] = None,
    jobs: int = 1,
) -> Dict[float, SimulationResult]:
    """CPU+GPU (disjoint over PCI-E) at several link rates."""
    trace = kernel.trace()
    sim_jobs = [
        SimJob(
            trace=trace,
            case=case_study("CPU+GPU"),
            system=system,
            comm_params=CommParams(pci_bandwidth=Bandwidth.from_gb_per_s(rate)),
        )
        for rate in gb_per_s_values
    ]
    results = ParallelRunner(jobs=jobs).run_jobs(sim_jobs, stage="pci-bandwidth")
    return dict(zip(gb_per_s_values, results))


def sweep_api_latency(
    kernel: Kernel,
    parameter: str,
    values: Sequence[int],
    system: Optional[SystemConfig] = None,
    jobs: int = 1,
) -> Dict[int, SimulationResult]:
    """LRB with one Table IV parameter varied.

    ``parameter`` is one of ``api_pci_base_cycles``, ``api_acq_cycles``,
    ``api_tr_cycles``, ``lib_pf_cycles``.
    """
    valid = ("api_pci_base_cycles", "api_acq_cycles", "api_tr_cycles", "lib_pf_cycles")
    if parameter not in valid:
        raise DesignSpaceError(f"unknown Table IV parameter {parameter!r}; use one of {valid}")
    trace = kernel.trace()
    sim_jobs = [
        SimJob(
            trace=trace,
            case=case_study("LRB"),
            system=system,
            comm_params=replace(CommParams(), **{parameter: value}),
        )
        for value in values
    ]
    results = ParallelRunner(jobs=jobs).run_jobs(sim_jobs, stage="api-latency")
    return dict(zip(values, results))


def sweep_partition(
    kernel: Kernel,
    cpu_fractions: Sequence[float],
    case_name: str = "IDEAL-HETERO",
    system: Optional[SystemConfig] = None,
    jobs: int = 1,
) -> Dict[float, SimulationResult]:
    """Execution time vs CPU share of the parallel work."""
    base = kernel.trace()
    sim_jobs = [
        SimJob(
            trace=repartition(base, fraction),
            case=case_study(case_name),
            system=system,
        )
        for fraction in cpu_fractions
    ]
    results = ParallelRunner(jobs=jobs).run_jobs(sim_jobs, stage="partition")
    return dict(zip(cpu_fractions, results))


def find_lrb_crossover_bytes(
    kernel: Kernel,
    system: Optional[SystemConfig] = None,
    lo: int = 256,
    hi: int = 64 * 1024 * 1024,
    tolerance_bytes: int = 1024,
) -> int:
    """The transfer size at which LRB's communication beats CPU+GPU's.

    The two mechanisms scale differently: the PCI-E memcpy path pays
    ``33250 + bytes/16 GB/s`` per transfer, while LRB's aperture pays
    per-object/fault costs that are *size-independent* (data in the shared
    window never copies back). Below the crossover the simple memcpy wins;
    above it, the shared window wins — one of the "where crossovers fall"
    questions the figure shapes imply. Bisects on the kernel's problem
    size; returns the initial-transfer byte count at the tie.
    """
    if tolerance_bytes < 1:
        raise DesignSpaceError("tolerance must be >= 1 byte")
    system = system or SystemConfig()
    sim = FastSimulator(system)

    def comm_gap(num_bytes: int) -> float:
        """LRB comm seconds minus CPU+GPU comm seconds at this size."""
        elements = max(num_bytes // 4, 2)
        trace = kernel.build(kernel.for_size(elements))
        lrb = sim.run(trace, case=case_study("LRB")).breakdown.communication
        pcie = sim.run(trace, case=case_study("CPU+GPU")).breakdown.communication
        return lrb - pcie

    if comm_gap(lo) < 0:
        return lo  # LRB already wins at the smallest size
    if comm_gap(hi) > 0:
        raise DesignSpaceError(
            f"{kernel.name}: no crossover up to {hi} bytes (LRB never wins)"
        )
    while hi - lo > tolerance_bytes:
        mid = (lo + hi) // 2
        if comm_gap(mid) > 0:
            lo = mid
        else:
            hi = mid
    return (lo + hi) // 2


def aperture_requirements() -> Dict[str, int]:
    """Shared-window bytes each kernel needs under the LRB model.

    §II-A3 notes the PCI aperture "is intended to support only small
    portions of memory space"; this quantifies the pressure: the sum of
    every shared buffer the kernel's program spec allocates in the window.
    """
    from repro.progmodel.spec import all_program_specs

    return {
        spec.name: sum(buffer.size for buffer in spec.buffers)
        for spec in all_program_specs()
    }


def sweep_aperture_size(sizes_bytes: Sequence[int]) -> Dict[int, List[str]]:
    """Which kernels fit per aperture size: {size: [fitting kernel names]}.

    A kernel "fits" when all its shared buffers can live in the window at
    once (the LRB programming model keeps them resident for the kernel's
    lifetime).
    """
    requirements = aperture_requirements()
    result: Dict[int, List[str]] = {}
    for size in sizes_bytes:
        if size <= 0:
            raise DesignSpaceError(f"aperture size must be positive, got {size}")
        result[size] = [name for name, need in requirements.items() if need <= size]
    return result


def sweep_fault_granularity(
    kernel: Kernel,
    system: Optional[SystemConfig] = None,
    jobs: int = 1,
) -> Dict[str, SimulationResult]:
    """LRB with per-object vs per-page first-touch faulting.

    The custom-granularity aperture channel is passed as an explicit
    channel object, so these jobs bypass the result memo (and fall back to
    in-process execution if the channel ever stops pickling).
    """
    system = system or SystemConfig()
    trace = kernel.trace()
    granularities = ("object", "page")
    sim_jobs = [
        SimJob(
            trace=trace,
            channel=ApertureChannel(
                CommParams(),
                page_bytes=system.page_bytes_cpu,
                fault_granularity=granularity,
            ),
            system=system,
            system_name=f"LRB[{granularity}]",
        )
        for granularity in granularities
    ]
    results = ParallelRunner(jobs=jobs).run_jobs(sim_jobs, stage="fault-granularity")
    return dict(zip(granularities, results))
