"""The design-space exploration core — the paper's primary contribution.

- :mod:`repro.core.design_point` — one point in the (address space x
  communication x locality x coherence x consistency) space, with the
  paper's feasibility rules;
- :mod:`repro.core.space` — enumeration and option counting over the full
  space (conclusion 3: the partially shared space is the most versatile);
- :mod:`repro.core.programmability` — the Table V source-line metric;
- :mod:`repro.core.explorer` — runs the quantitative experiments
  (Figures 5-7) and ranks design points;
- :mod:`repro.core.sweeps` — parameter sweeps beyond the paper (ablations);
- :mod:`repro.core.resilience` — fault-sensitivity ranking: which points
  degrade most under injected communication faults;
- :mod:`repro.core.report` — plain-text table/figure rendering.
"""

from repro.core.design_point import DesignPoint
from repro.core.space import DesignSpace
from repro.core.programmability import table5_rows, programmability_rank
from repro.core.explorer import Explorer
from repro.core.report import format_table
from repro.core.resilience import FaultSensitivity, fault_sensitivity

__all__ = [
    "DesignPoint",
    "DesignSpace",
    "table5_rows",
    "programmability_rank",
    "Explorer",
    "format_table",
    "FaultSensitivity",
    "fault_sensitivity",
]
