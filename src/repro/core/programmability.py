"""The Table V programmability metric.

"Similar to studies in [32], [8], [5], we also use the number of source
lines to indicate programmability" — the metric here counts the
communication-handling statements of the mechanically lowered programs
(:mod:`repro.progmodel.lowering`), so each number is *derived*, not
hard-coded.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.progmodel.lowering import lower
from repro.progmodel.spec import (
    KernelProgramSpec,
    access_modes,
    all_program_specs,
    program_spec,
)
from repro.taxonomy import AddressSpaceKind

__all__ = [
    "TABLE5_SPACE_ORDER",
    "table5_rows",
    "table5_dict",
    "table5_declared_rows",
    "table5_declared_dict",
    "declaration_savings",
    "programmability_rank",
]

#: Column order of the paper's Table V.
TABLE5_SPACE_ORDER: Tuple[AddressSpaceKind, ...] = (
    AddressSpaceKind.UNIFIED,
    AddressSpaceKind.PARTIALLY_SHARED,
    AddressSpaceKind.DISJOINT,
    AddressSpaceKind.ADSM,
)

#: Row order of the paper's Table V (it differs from Table III order).
TABLE5_KERNEL_ORDER: Tuple[str, ...] = (
    "matrix mul",
    "merge sort",
    "dct",
    "reduction",
    "convolution",
    "k-mean",
)


def table5_rows() -> List[Tuple[str, int, int, int, int, int]]:
    """(kernel, Comp, UNI, PAS, DIS, ADSM) rows in the paper's order."""
    rows = []
    for name in TABLE5_KERNEL_ORDER:
        spec = program_spec(name)
        counts = {
            kind: lower(spec, kind).comm_lines() for kind in TABLE5_SPACE_ORDER
        }
        rows.append(
            (
                name,
                spec.computation_lines,
                counts[AddressSpaceKind.UNIFIED],
                counts[AddressSpaceKind.PARTIALLY_SHARED],
                counts[AddressSpaceKind.DISJOINT],
                counts[AddressSpaceKind.ADSM],
            )
        )
    return rows


def table5_dict() -> Dict[str, Dict[AddressSpaceKind, int]]:
    """{kernel: {space: comm lines}} for programmatic use."""
    return {
        spec.name: {kind: lower(spec, kind).comm_lines() for kind in TABLE5_SPACE_ORDER}
        for spec in all_program_specs()
    }


def table5_declared_rows() -> List[Tuple[str, int, int, int, int, int]]:
    """Table V recomputed with access-mode declarations.

    Same row/column layout as :func:`table5_rows`, but every kernel is
    lowered with its :func:`~repro.progmodel.spec.access_modes` map: with N
    shared buffers the counts become UNI N, PAS 2+N, DIS 3·buffers+N,
    ADSM N. Comparing the two tables is the programmability side of the
    coherence study — declarations buy the most where the undeclared
    boilerplate scales with call sites or buffers, and buy nothing (cost a
    line per buffer) where copies are physically required.
    """
    rows = []
    for name in TABLE5_KERNEL_ORDER:
        spec = program_spec(name)
        modes = access_modes(spec)
        counts = {
            kind: lower(spec, kind, modes).comm_lines()
            for kind in TABLE5_SPACE_ORDER
        }
        rows.append(
            (
                name,
                spec.computation_lines,
                counts[AddressSpaceKind.UNIFIED],
                counts[AddressSpaceKind.PARTIALLY_SHARED],
                counts[AddressSpaceKind.DISJOINT],
                counts[AddressSpaceKind.ADSM],
            )
        )
    return rows


def table5_declared_dict() -> Dict[str, Dict[AddressSpaceKind, int]]:
    """{kernel: {space: comm lines}} under access-mode declarations."""
    return {
        spec.name: {
            kind: lower(spec, kind, access_modes(spec)).comm_lines()
            for kind in TABLE5_SPACE_ORDER
        }
        for spec in all_program_specs()
    }


def declaration_savings() -> Dict[AddressSpaceKind, int]:
    """Total comm lines saved (negative: added) by declarations, per space."""
    plain = table5_dict()
    declared = table5_declared_dict()
    return {
        kind: sum(plain[name][kind] - declared[name][kind] for name in plain)
        for kind in TABLE5_SPACE_ORDER
    }


def programmability_rank() -> List[AddressSpaceKind]:
    """Address spaces from easiest to hardest (mean comm lines).

    The paper's §V-C result: Unified < partially shared <= ADSM < disjoint.
    """
    table = table5_dict()
    totals = {
        kind: sum(per_kernel[kind] for per_kernel in table.values())
        for kind in TABLE5_SPACE_ORDER
    }
    return sorted(TABLE5_SPACE_ORDER, key=lambda kind: totals[kind])
