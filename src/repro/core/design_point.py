"""Design points and their feasibility rules."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.errors import DesignSpaceError
from repro.locality.schemes import Feasibility, feasibility
from repro.taxonomy import (
    AddressSpaceKind,
    CoherenceKind,
    CommMechanism,
    ConsistencyModel,
    LocalityScheme,
)

__all__ = ["DesignPoint"]


@dataclass(frozen=True)
class DesignPoint:
    """One memory-system design for a heterogeneous machine.

    :meth:`violations` applies the structural rules of Section II;
    :meth:`warnings` lists combinations the paper calls possible but
    undesirable. A point with no violations is *feasible*.
    """

    address_space: AddressSpaceKind
    comm: CommMechanism
    locality: LocalityScheme
    coherence: CoherenceKind = CoherenceKind.NONE
    consistency: ConsistencyModel = ConsistencyModel.WEAK

    def violations(self) -> Tuple[str, ...]:
        """Hard rule violations making this point structurally impossible."""
        problems = []
        space = self.address_space

        if feasibility(self.locality, space) is Feasibility.NO:
            problems.append(
                f"locality scheme {self.locality} is impossible under the "
                f"{space.short} space"
            )
        if self.coherence is CoherenceKind.OWNERSHIP and space is not (
            AddressSpaceKind.PARTIALLY_SHARED
        ):
            problems.append(
                "ownership control is a partially-shared-space mechanism (§II-A3)"
            )
        if space is AddressSpaceKind.DISJOINT and self.coherence is not CoherenceKind.NONE:
            problems.append(
                "a disjoint space has no shared data to keep coherent (§II-A2)"
            )
        if self.comm is CommMechanism.PCI_APERTURE and space not in (
            AddressSpaceKind.PARTIALLY_SHARED,
            AddressSpaceKind.UNIFIED,
        ):
            problems.append(
                "the PCI aperture backs a shared window (partially shared or "
                "virtually unified spaces, §II-A3)"
            )
        if self.consistency is ConsistencyModel.STRONG and not self.coherence.hardware:
            problems.append(
                "strong consistency across PUs requires hardware coherence"
            )
        if (
            space is not AddressSpaceKind.DISJOINT
            and self.coherence is CoherenceKind.NONE
            and space is not AddressSpaceKind.UNIFIED
        ):
            # PAS needs ownership or coherence for its window; ADSM needs
            # its runtime. (A unified space may be non-coherent — CUDA 4.0.)
            problems.append(
                f"the {space.short} space needs some coherence story for its "
                "shared window (ownership, runtime, or hardware)"
            )
        return tuple(problems)

    def warnings(self) -> Tuple[str, ...]:
        """Possible-but-undesirable combinations (the paper's judgement)."""
        notes = []
        if feasibility(self.locality, self.address_space) is Feasibility.UNDESIRABLE:
            notes.append(
                f"locality scheme {self.locality} is undesirable under the "
                f"{self.address_space.short} space (§II-B)"
            )
        if (
            self.comm is CommMechanism.PCIE
            and self.address_space is AddressSpaceKind.UNIFIED
            and self.coherence.hardware
        ):
            notes.append("hardware coherence over PCI-E is very expensive")
        return tuple(notes)

    @property
    def is_feasible(self) -> bool:
        return not self.violations()

    @property
    def is_desirable(self) -> bool:
        """Feasible and free of the paper's "possible but undesirable"
        combinations."""
        return self.is_feasible and not self.warnings()

    def require_feasible(self) -> "DesignPoint":
        """Return self, raising :class:`DesignSpaceError` when infeasible."""
        problems = self.violations()
        if problems:
            raise DesignSpaceError(
                f"infeasible design point {self.label}: " + "; ".join(problems)
            )
        return self

    @property
    def label(self) -> str:
        return (
            f"{self.address_space.short}/{self.comm}/{self.locality}/"
            f"{self.coherence}/{self.consistency}"
        )

    def with_comm(self, comm: CommMechanism) -> "DesignPoint":
        return replace(self, comm=comm)

    def __str__(self) -> str:
        return self.label
