"""Fault-sensitivity ranking over the design space.

The paper's ranking asks which memory-model design point is *best*; this
module asks which is *most fragile*: re-evaluate each point under
increasing injected fault rates (transfer failures plus bandwidth
degradation on every channel, seeded and deterministic — see
:mod:`repro.faults`) and rank by how much the point's mean time inflates
relative to its own fault-free baseline. Points whose transfers fail even
after every modeled and harness-level retry score ``inf``.

Mechanisms that move more bytes across the interconnect (DMA variants,
the PCI aperture) pay the fault tax on every transfer, so they degrade
fastest; the ideal channel is immune by construction. This is the
quantitative face of the paper's robustness argument for shared spaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config.comm import CommParams
from repro.config.system import SystemConfig
from repro.core.design_point import DesignPoint
from repro.core.explorer import Explorer
from repro.core.space import DesignSpace
from repro.errors import DesignSpaceError, SimulationError
from repro.exec.retry import RetryPolicy
from repro.faults.spec import FaultPlan
from repro.kernels.base import Kernel
from repro.kernels.registry import all_kernels
from repro.obs.log import get_logger

__all__ = ["FaultSensitivity", "fault_sensitivity", "DEFAULT_FAULT_RATES"]

_log = get_logger("core.resilience")

#: The sweep's default injected-fault rates (first must be the clean run).
DEFAULT_FAULT_RATES: Tuple[float, ...] = (0.0, 0.05, 0.1, 0.2)


@dataclass(frozen=True)
class FaultSensitivity:
    """How one design point's mean kernel time responds to injected faults.

    ``seconds_by_rate`` holds (fault rate, mean seconds) pairs in sweep
    order; ``inf`` marks a rate at which some kernel's transfers failed
    every allowed attempt.
    """

    point: DesignPoint
    seconds_by_rate: Tuple[Tuple[float, float], ...]

    @property
    def baseline_seconds(self) -> float:
        """Mean seconds with no faults injected (the first swept rate)."""
        return self.seconds_by_rate[0][1]

    @property
    def worst_seconds(self) -> float:
        """Mean seconds at the highest swept fault rate."""
        return self.seconds_by_rate[-1][1]

    @property
    def slowdown(self) -> float:
        """Inflation at the highest rate relative to the clean baseline.

        1.0 means immune (the ideal channel); ``inf`` means the point
        stopped producing answers at all.
        """
        if self.baseline_seconds <= 0:
            return float("inf") if self.worst_seconds > 0 else 1.0
        return self.worst_seconds / self.baseline_seconds

    def line(self) -> str:
        """One table row: label, baseline, then per-rate inflation."""
        cells = []
        for rate, seconds in self.seconds_by_rate[1:]:
            if seconds == float("inf") or self.baseline_seconds <= 0:
                cells.append(f"{rate:.0%}: failed")
            else:
                cells.append(f"{rate:.0%}: x{seconds / self.baseline_seconds:.3f}")
        return (
            f"{self.point.label}: base {self.baseline_seconds * 1e6:.1f} us; "
            + ", ".join(cells)
        )


def _plan_for_rate(rate: float, seed: int) -> Optional[FaultPlan]:
    """The sweep's per-rate plan: fail + degrade every channel at ``rate``."""
    if rate <= 0.0:
        return None
    return FaultPlan.parse(f"seed={seed};*:fail={rate},degrade={rate}")


def fault_sensitivity(
    points: Optional[Iterable[DesignPoint]] = None,
    kernels: Optional[Sequence[Kernel]] = None,
    rates: Sequence[float] = DEFAULT_FAULT_RATES,
    seed: int = 0,
    jobs: int = 1,
    retries: int = 2,
    system: Optional[SystemConfig] = None,
    comm_params: Optional[CommParams] = None,
) -> List[FaultSensitivity]:
    """Rank design points by fragility under injected faults (worst first).

    Every point is evaluated at every rate in ``rates`` (0.0 is prepended
    when missing, so each point always has a clean baseline). The fault
    plans and the retry policy are fully seeded — the backoff policy uses
    zero delay, so the sweep never actually sleeps — making the whole
    ranking deterministic for a given ``seed``.
    """
    if points is None:
        points = DesignSpace().feasible_points()
    points = list(points)
    kernels = list(kernels or all_kernels())
    rates = list(rates)
    if not rates or rates[0] != 0.0:
        rates = [0.0] + [r for r in rates if r != 0.0]
    if not points:
        raise DesignSpaceError("no feasible design points to rank")

    seconds: Dict[str, List[Tuple[float, float]]] = {p.label: [] for p in points}
    for rate in rates:
        plan = _plan_for_rate(rate, seed)
        explorer = Explorer(
            system=system,
            comm_params=comm_params,
            jobs=jobs,
            faults=plan,
            retry=RetryPolicy(
                retries=retries, base_delay=0.0, max_delay=0.0, jitter=0.0, seed=seed
            )
            if plan is not None
            else None,
        )
        for point in points:
            try:
                evaluation = explorer.evaluate_design_point(point, kernels)
                mean = evaluation.mean_seconds
            except SimulationError as exc:
                _log.debug(
                    "point %s failed at fault rate %.2f: %s", point.label, rate, exc
                )
                mean = float("inf")
            seconds[point.label].append((rate, mean))

    rankings = [
        FaultSensitivity(point=point, seconds_by_rate=tuple(seconds[point.label]))
        for point in points
    ]
    return sorted(
        rankings,
        key=lambda s: (-s.slowdown, s.point.label),
    )
