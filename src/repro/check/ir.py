"""The checker's analysis IR: a CFG of phase nodes with per-buffer events.

check v2 separates *what a program does to data* from *what each rule
wants to know about it*. Lowering builds an :class:`AnalysisCFG` whose
nodes carry :class:`BufferEvent`\\ s — definitions, uses, transfers, and
ownership moves, each scoped to a :class:`Space` and a bitmask over
*address atoms* — and the dataflow passes (:mod:`repro.check.passes`)
phrase their questions as gen/kill problems over those events, solved by
the generic fixpoint engine in :mod:`repro.check.dataflow`.

Two lowerings produce the same IR:

- :func:`cfg_from_trace` — from a :class:`~repro.trace.stream.KernelTrace`.
  The address ranges the trace's segments stride are partitioned at every
  interval boundary into :class:`AddressAtoms`: the smallest ranges the
  trace never subdivides, so a bit per atom (times two spaces) is an
  exact abstraction of "which bytes of which copy".
- :func:`cfg_from_program` — from a lowered progmodel
  :class:`~repro.progmodel.program.Program`, via the statement-event hook
  (:func:`repro.progmodel.events.statement_events`). Here each named
  buffer is one atom; the access-mode inference pass runs on this side.

Trace CFGs are linear today (phase follows phase), but the solver is
written against arbitrary graphs: the ROADMAP's MMU-axis rules will join
per-PU event streams, and the hypothesis suite already exercises random
graph shapes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import CheckError
from repro.progmodel.events import StmtEvent, statement_events
from repro.progmodel.program import Program
from repro.progmodel.spec import KernelProgramSpec
from repro.taxonomy import ProcessingUnit
from repro.trace.phase import (
    CommPhase,
    ParallelPhase,
    Segment,
    SequentialPhase,
)
from repro.trace.stream import KernelTrace

__all__ = [
    "Space",
    "EventKind",
    "BufferEvent",
    "IRNode",
    "AnalysisCFG",
    "AddressAtoms",
    "TraceIR",
    "ProgramIR",
    "cfg_from_trace",
    "cfg_from_program",
]


class Space(enum.Enum):
    """Which PU's view of memory a fact talks about.

    Under a shared window both spaces alias the same physical bytes, but
    the *facts* stay per-space: "the host's copy is current" and "the
    device's copy is current" diverge exactly when a rule should fire.
    """

    HOST = "host"
    DEVICE = "device"

    @property
    def other(self) -> "Space":
        return Space.DEVICE if self is Space.HOST else Space.HOST

    @property
    def pu(self) -> ProcessingUnit:
        return (
            ProcessingUnit.CPU if self is Space.HOST else ProcessingUnit.GPU
        )

    @classmethod
    def of(cls, pu: ProcessingUnit) -> "Space":
        return cls.HOST if pu is ProcessingUnit.CPU else cls.DEVICE

    def __str__(self) -> str:
        return self.value


class EventKind(enum.Enum):
    """What a node does to a set of atoms in a space."""

    DEF = "def"          # the space's copy of the atoms is (over)written
    USE = "use"          # the atoms are read in the space
    TRANSFER = "transfer"  # a copy lands in ``space`` (source = space.other)
    ACQUIRE = "acquire"  # ownership of shared objects granted to ``space``
    RELEASE = "release"  # ownership handed back from ``space``

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class BufferEvent:
    """One def/use/transfer/ownership event, scoped to atoms × space."""

    kind: EventKind
    space: Space
    mask: int
    label: str = ""
    num_bytes: int = 0
    num_objects: int = 0


@dataclass(frozen=True)
class IRNode:
    """One CFG node: a phase (or statement), plus its buffer events.

    ``phase_index`` is the index into the source trace's ``phases`` (or
    the program's ``statements``); entry/exit nodes carry ``-1``.
    """

    index: int
    kind: str  # "entry" | "exit" | "sequential" | "parallel" | "comm" | "stmt"
    phase_index: int
    label: str = ""
    events: Tuple[BufferEvent, ...] = ()


@dataclass(frozen=True)
class AnalysisCFG:
    """A control-flow graph over :class:`IRNode`\\ s.

    Nodes are indexed ``0..len(nodes)-1`` (``IRNode.index`` must agree);
    ``edges`` are directed ``(src, dst)`` pairs. Predecessor/successor
    lists are derived once and cached. The graph need not be linear, and
    entry/exit are purely conventional: the solver treats any node
    without predecessors (successors) as a boundary node.
    """

    nodes: Tuple[IRNode, ...]
    edges: Tuple[Tuple[int, int], ...]
    _preds: Dict[int, Tuple[int, ...]] = field(
        default_factory=dict, repr=False, compare=False
    )
    _succs: Dict[int, Tuple[int, ...]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", tuple(self.nodes))
        object.__setattr__(self, "edges", tuple(self.edges))
        for i, node in enumerate(self.nodes):
            if node.index != i:
                raise CheckError(
                    f"CFG node at position {i} carries index {node.index}"
                )
        n = len(self.nodes)
        preds: Dict[int, List[int]] = {i: [] for i in range(n)}
        succs: Dict[int, List[int]] = {i: [] for i in range(n)}
        for src, dst in self.edges:
            if not (0 <= src < n and 0 <= dst < n):
                raise CheckError(f"CFG edge ({src}, {dst}) out of range")
            succs[src].append(dst)
            preds[dst].append(src)
        object.__setattr__(
            self, "_preds", {i: tuple(v) for i, v in preds.items()}
        )
        object.__setattr__(
            self, "_succs", {i: tuple(v) for i, v in succs.items()}
        )

    def preds(self, index: int) -> Tuple[int, ...]:
        return self._preds[index]

    def succs(self, index: int) -> Tuple[int, ...]:
        return self._succs[index]

    def __len__(self) -> int:
        return len(self.nodes)


class AddressAtoms:
    """The interval partition of every address range a trace touches.

    Segment spans and (named-buffer) extents overlap arbitrarily; cutting
    the union at every boundary yields *atoms* — maximal intervals the
    trace never subdivides. A dataflow fact is then a bitmask with one
    bit per atom per space, and set algebra on masks is exact interval
    algebra on ranges.
    """

    def __init__(self, spans: Iterable[Tuple[int, int]]) -> None:
        spans = [(lo, hi) for lo, hi in spans if hi > lo]
        bounds = sorted({edge for span in spans for edge in span})
        atoms = []
        for lo, hi in zip(bounds, bounds[1:]):
            # Keep only intervals some span actually covers; the gaps
            # between unrelated buffers are nobody's data.
            if any(slo <= lo and hi <= shi for slo, shi in spans):
                atoms.append((lo, hi))
        self._atoms: Tuple[Tuple[int, int], ...] = tuple(atoms)

    @property
    def atoms(self) -> Tuple[Tuple[int, int], ...]:
        return self._atoms

    def __len__(self) -> int:
        return len(self._atoms)

    @property
    def all_mask(self) -> int:
        return (1 << len(self._atoms)) - 1

    def mask_for(self, lo: int, hi: int) -> int:
        """Bitmask of the atoms contained in the half-open ``[lo, hi)``."""
        mask = 0
        for bit, (alo, ahi) in enumerate(self._atoms):
            if lo <= alo and ahi <= hi:
                mask |= 1 << bit
        return mask

    def bytes_of(self, mask: int) -> int:
        """Total byte size of the atoms selected by ``mask``."""
        return sum(
            hi - lo
            for bit, (lo, hi) in enumerate(self._atoms)
            if mask & (1 << bit)
        )

    def spans_of(self, mask: int) -> Tuple[Tuple[int, int], ...]:
        """The selected atoms merged back into maximal contiguous spans."""
        picked = [
            span
            for bit, span in enumerate(self._atoms)
            if mask & (1 << bit)
        ]
        merged: List[Tuple[int, int]] = []
        for lo, hi in picked:
            if merged and merged[-1][1] == lo:
                merged[-1] = (merged[-1][0], hi)
            else:
                merged.append((lo, hi))
        return tuple(merged)


@dataclass(frozen=True)
class TraceIR:
    """A trace lowered to the analysis IR: the CFG plus its atom universe."""

    trace: KernelTrace
    cfg: AnalysisCFG
    atoms: AddressAtoms


@dataclass(frozen=True)
class ProgramIR:
    """A progmodel program lowered to the IR: one atom per shared buffer."""

    program: Program
    cfg: AnalysisCFG
    buffer_bits: Dict[str, int]

    def mask_for(self, name: str) -> int:
        return 1 << self.buffer_bits[name]


def _segment_events(segment: Segment, atoms: AddressAtoms) -> List[BufferEvent]:
    """USE before DEF: reads observe the state before the phase's writes
    land (the convention every pass and the legacy checker share)."""
    space = Space.of(segment.pu)
    mask = atoms.mask_for(
        segment.base_addr, segment.base_addr + segment.footprint_bytes
    )
    events: List[BufferEvent] = []
    if segment.mix.load_ops > 0 and mask:
        events.append(
            BufferEvent(EventKind.USE, space, mask, label=segment.label)
        )
    if segment.mix.store_ops > 0 and mask:
        events.append(
            BufferEvent(EventKind.DEF, space, mask, label=segment.label)
        )
    return events


def cfg_from_trace(trace: KernelTrace) -> TraceIR:
    """Lower a kernel trace to the analysis IR.

    One node per phase between synthetic entry/exit nodes, linear edges.
    Comm phases carry no address ranges (the paper's transfers move whole
    object sets), so a transfer conservatively delivers *all* atoms to
    the destination space, plus an ACQUIRE/RELEASE pair recording the
    ownership move the PAS discipline tracks.
    """
    spans = []
    for phase in trace.phases:
        if isinstance(phase, SequentialPhase):
            segments: Tuple[Segment, ...] = (phase.segment,)
        elif isinstance(phase, ParallelPhase):
            segments = (phase.cpu, phase.gpu)
        else:
            segments = ()
        for segment in segments:
            spans.append(
                (segment.base_addr, segment.base_addr + segment.footprint_bytes)
            )
    atoms = AddressAtoms(spans)

    nodes: List[IRNode] = [IRNode(index=0, kind="entry", phase_index=-1)]
    for phase_index, phase in enumerate(trace.phases):
        index = len(nodes)
        if isinstance(phase, CommPhase):
            dest = Space.of(phase.direction.destination)
            events: Tuple[BufferEvent, ...] = (
                BufferEvent(
                    EventKind.TRANSFER,
                    dest,
                    atoms.all_mask,
                    label=phase.label,
                    num_bytes=phase.num_bytes,
                ),
                BufferEvent(
                    EventKind.RELEASE,
                    Space.of(phase.direction.source),
                    atoms.all_mask,
                    label=phase.label,
                    num_objects=phase.num_objects,
                ),
                BufferEvent(
                    EventKind.ACQUIRE,
                    dest,
                    atoms.all_mask,
                    label=phase.label,
                    num_objects=phase.num_objects,
                ),
            )
            kind = "comm"
        elif isinstance(phase, ParallelPhase):
            events = tuple(
                _segment_events(phase.cpu, atoms)
                + _segment_events(phase.gpu, atoms)
            )
            kind = "parallel"
        else:
            events = tuple(_segment_events(phase.segment, atoms))
            kind = "sequential"
        nodes.append(
            IRNode(
                index=index,
                kind=kind,
                phase_index=phase_index,
                label=phase.label,
                events=events,
            )
        )
    nodes.append(IRNode(index=len(nodes), kind="exit", phase_index=-1))
    edges = tuple((i, i + 1) for i in range(len(nodes) - 1))
    return TraceIR(trace=trace, cfg=AnalysisCFG(tuple(nodes), edges), atoms=atoms)


def _program_node_events(
    event: StmtEvent, bits: Dict[str, int], spec: Optional[KernelProgramSpec]
) -> List[BufferEvent]:
    mask = 0
    for name in event.buffers:
        # Device aliases ("gpu_x", "x_adsm") fold onto the host buffer.
        base = name
        if base.startswith("gpu_"):
            base = base[4:]
        if base.endswith("_adsm"):
            base = base[: -len("_adsm")]
        if base in bits:
            mask |= 1 << bits[base]
    if not mask:
        return []
    if event.kind == "copy" and event.direction is not None:
        dest = Space.of(event.direction.destination)
        return [
            BufferEvent(
                EventKind.TRANSFER,
                dest,
                mask,
                label=event.label,
                num_bytes=event.size,
            )
        ]
    if event.kind == "alloc":
        # A host allocation materializes the buffer's initial host copy;
        # device-side allocators define nothing (the copy is garbage).
        if event.pu is ProcessingUnit.CPU:
            return [
                BufferEvent(EventKind.DEF, Space.HOST, mask, label=event.label)
            ]
        return []
    if event.kind == "launch":
        space = Space.of(event.pu)
        events = []
        if spec is not None:
            ins = {b.name for b in spec.inputs()}
            outs = {b.name for b in spec.outputs()}
            in_mask = sum(1 << bits[n] for n in ins if n in bits)
            out_mask = sum(1 << bits[n] for n in outs if n in bits)
            if in_mask & mask:
                events.append(
                    BufferEvent(
                        EventKind.USE, space, in_mask & mask, label=event.label
                    )
                )
            if out_mask & mask:
                events.append(
                    BufferEvent(
                        EventKind.DEF, space, out_mask & mask, label=event.label
                    )
                )
        else:
            events.append(
                BufferEvent(EventKind.USE, space, mask, label=event.label)
            )
            events.append(
                BufferEvent(EventKind.DEF, space, mask, label=event.label)
            )
        return events
    if event.kind == "acquire":
        return [
            BufferEvent(
                EventKind.ACQUIRE,
                Space.of(event.pu),
                mask,
                label=event.label,
                num_objects=len(event.buffers),
            )
        ]
    if event.kind == "release":
        return [
            BufferEvent(
                EventKind.RELEASE,
                Space.of(event.pu),
                mask,
                label=event.label,
                num_objects=len(event.buffers),
            )
        ]
    return []


def cfg_from_program(
    program: Program, spec: Optional[KernelProgramSpec] = None
) -> ProgramIR:
    """Lower a progmodel program to the analysis IR.

    The universe is one atom per *host-named* buffer (device aliases like
    ``gpu_x`` fold onto ``x``); each communication-relevant statement
    becomes a node via the progmodel statement-event hook. With a
    ``spec``, kernel launches split into USE (inputs) and DEF (outputs)
    events; without one, a launch conservatively uses and defines every
    buffer it names.
    """
    events = statement_events(program)
    names: List[str] = []
    for event in events:
        for name in event.buffers:
            base = name
            if base.startswith("gpu_"):
                base = base[4:]
            if base.endswith("_adsm"):
                base = base[: -len("_adsm")]
            if base not in names:
                names.append(base)
    bits = {name: bit for bit, name in enumerate(names)}

    nodes: List[IRNode] = [IRNode(index=0, kind="entry", phase_index=-1)]
    for event in events:
        nodes.append(
            IRNode(
                index=len(nodes),
                kind="stmt",
                phase_index=event.index,
                label=event.label,
                events=tuple(_program_node_events(event, bits, spec)),
            )
        )
    nodes.append(IRNode(index=len(nodes), kind="exit", phase_index=-1))
    edges = tuple((i, i + 1) for i in range(len(nodes) - 1))
    return ProgramIR(
        program=program,
        cfg=AnalysisCFG(tuple(nodes), edges),
        buffer_bits=bits,
    )
