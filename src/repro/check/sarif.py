"""SARIF 2.1.0 export for check reports (``repro-explore check --sarif``).

SARIF (Static Analysis Results Interchange Format, OASIS) is the lingua
franca CI systems ingest to surface findings as code annotations. One
:func:`to_sarif` document holds one run: the full rule catalog as
``tool.driver.rules`` (stable indices, severity mapped to SARIF levels,
fix hints as rule help), and one ``result`` per finding.

Traces have no source files, so locations are *logical*: the fully
qualified name is the finding's ``trace@phase[i](label)/segment``
location string, the artifact URI is ``trace/<name>``, and the region's
``startLine`` is the 1-based phase ordinal — phase ``i`` annotates "line"
``i+1``, which renders usefully in any SARIF viewer.

Findings are emitted in each report's byte-stable serialization order
(rule, phase, segment), so the document — like the JSON export — diffs
cleanly across runs. ``tools/validate_sarif.py`` structurally validates
the output in CI without third-party schema dependencies.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.check.findings import CheckReport, Finding, Severity
from repro.check.rules import RULES

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA_URI", "to_sarif", "write_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _rule_descriptors() -> List[Dict[str, object]]:
    """The whole catalog, in stable catalog order (results index into it)."""
    descriptors = []
    for meta in RULES.values():
        descriptors.append(
            {
                "id": meta.id,
                "name": meta.title.title().replace(" ", "").replace("-", ""),
                "shortDescription": {"text": meta.title},
                "fullDescription": {
                    "text": f"{meta.title} — applies to {meta.applies_to}."
                },
                "help": {"text": f"Fix: {meta.fix_hint}"},
                "defaultConfiguration": {"level": _LEVELS[meta.severity]},
                "properties": {
                    "paperSection": meta.paper_section,
                    "appliesTo": meta.applies_to,
                },
            }
        )
    return descriptors


def _result(finding: Finding, config: str, rule_index: Dict[str, int]) -> Dict[str, object]:
    message = finding.message
    if finding.fix_hint:
        message += f" Fix: {finding.fix_hint}."
    result: Dict[str, object] = {
        "ruleId": finding.rule,
        "ruleIndex": rule_index[finding.rule],
        "level": _LEVELS[finding.severity],
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f"trace/{finding.trace}",
                        "uriBaseId": "TRACES",
                    },
                    "region": {"startLine": finding.phase_index + 1},
                },
                "logicalLocations": [
                    {
                        "name": finding.segment or finding.phase_label
                        or f"phase[{finding.phase_index}]",
                        "fullyQualifiedName": finding.location,
                        "kind": "member",
                    }
                ],
            }
        ],
        "properties": {
            "trace": finding.trace,
            "config": config,
            "phaseIndex": finding.phase_index,
            "phaseLabel": finding.phase_label,
            "segment": finding.segment,
            "confirmed": finding.confirmed,
            "bytesSaved": finding.bytes_saved,
            "space": finding.space,
        },
    }
    return result


def to_sarif(reports: Sequence[CheckReport]) -> Dict[str, object]:
    """One SARIF 2.1.0 document over a batch of check reports."""
    rule_index = {rule_id: i for i, rule_id in enumerate(RULES)}
    results: List[Dict[str, object]] = []
    for report in reports:
        ordered = sorted(
            report.findings, key=lambda f: (f.rule, f.phase_index, f.segment)
        )
        results.extend(
            _result(finding, report.config, rule_index) for finding in ordered
        )
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-check",
                        "semanticVersion": "2.0.0",
                        "rules": _rule_descriptors(),
                    }
                },
                "invocations": [{"executionSuccessful": True}],
                "results": results,
                "properties": {
                    "reports": len(reports),
                    "findings": len(results),
                    "errors": sum(r.errors for r in reports),
                    "warnings": sum(r.warnings for r in reports),
                },
            }
        ],
    }


def write_sarif(path: str, reports: Sequence[CheckReport]) -> None:
    """Write the SARIF document (sorted keys, trailing newline)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_sarif(reports), handle, indent=2, sort_keys=True)
        handle.write("\n")
