"""The static analysis passes behind ``repro check``.

:func:`check_trace` walks a trace once per rule family, against the
obligations the configuration imposes:

- **races** — the two halves of a parallel phase run concurrently; where
  their footprints overlap inside a shared window, writes race
  (``RACE001``/``RACE002``) and, under a weak model, a store-buffering
  exchange is compiled to a litmus program and confirmed against the
  operational executor (``CONS001``);
- **ownership** — under the partially shared space the checker abstracts
  each H2D communication as a release+acquire granting ``num_objects``
  shared objects to the GPU and each D2H as the GPU handing objects back
  (Figure 2's flow); compute with nothing acquired, double grants, and
  returns without a grant are ``PAS001``-``PAS003``;
- **transfers** — disjoint spaces require a copy before consumption
  (``DIS001``) and make back-to-back same-direction copies redundant
  (``DIS002``);
- **staleness** — under explicit shared locality, ranges written by one
  PU must be pushed (a transfer in the producer-to-consumer direction)
  before the other PU reads them (``LOC001``).

Every pass is linear in the number of phases; the litmus confirmation
runs the exhaustive executor only on 4-instruction programs, so checking
a kernel takes well under the 1 s budget.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.check.config import CheckConfig
from repro.check.findings import CheckReport, Finding
from repro.check.rules import rule
from repro.consistency.litmus import model_for
from repro.consistency.model import is_allowed
from repro.consistency.ops import Load, Program, Store
from repro.taxonomy import ProcessingUnit
from repro.trace.phase import CommPhase, Direction, ParallelPhase, Segment, SequentialPhase
from repro.trace.stream import KernelTrace

__all__ = ["check_trace", "check_pairs"]


# -- range helpers ------------------------------------------------------------


def _span(segment: Segment) -> Tuple[int, int]:
    """The half-open byte range a segment's memory operations stride."""
    return (segment.base_addr, segment.base_addr + segment.footprint_bytes)


def _overlaps(a: Tuple[int, int], b: Tuple[int, int]) -> bool:
    return a[0] < b[1] and b[0] < a[1]


def _reads(segment: Segment) -> bool:
    return segment.mix.load_ops > 0


def _writes(segment: Segment) -> bool:
    return segment.mix.store_ops > 0


def _finding(
    rule_id: str,
    trace: KernelTrace,
    index: int,
    message: str,
    segment: str = "",
    confirmed: Optional[bool] = None,
) -> Finding:
    meta = rule(rule_id)
    return Finding(
        rule=rule_id,
        severity=meta.severity,
        message=message,
        trace=trace.name,
        phase_index=index,
        phase_label=trace.phases[index].label,
        segment=segment,
        fix_hint=meta.fix_hint,
        confirmed=confirmed,
    )


# -- RACE / CONS: concurrent halves of a parallel phase -----------------------


def _sb_hazard_allowed(config: CheckConfig) -> bool:
    """Litmus confirmation: compile the suspicious exchange to the classic
    store-buffering program and ask the operational executor whether the
    configured model reaches the bad outcome (both PUs missing each
    other's update)."""
    program = Program(
        threads={
            ProcessingUnit.CPU: (Store("x", 1), Load("y", "r0")),
            ProcessingUnit.GPU: (Store("y", 1), Load("x", "r1")),
        }
    )
    observation = {"r0": 0, "r1": 0}
    return is_allowed(program, observation, model_for(config.consistency))


def _check_races(trace: KernelTrace, config: CheckConfig) -> Iterable[Finding]:
    if not config.has_shared_window:
        # Overlapping virtual ranges name *different* memories under a
        # disjoint space; there is nothing to race on.
        return
    for index, phase in enumerate(trace.phases):
        if not isinstance(phase, ParallelPhase):
            continue
        cpu, gpu = phase.cpu, phase.gpu
        if not _overlaps(_span(cpu), _span(gpu)):
            continue
        both = f"{cpu.label or 'cpu'}+{gpu.label or 'gpu'}"
        if _writes(cpu) and _writes(gpu):
            yield _finding(
                "RACE001",
                trace,
                index,
                "concurrent CPU and GPU segments write overlapping ranges "
                f"[{cpu.base_addr:#x}..) and [{gpu.base_addr:#x}..) with no "
                "intervening synchronization",
                segment=both,
            )
        elif (_writes(cpu) and _reads(gpu)) or (_writes(gpu) and _reads(cpu)):
            writer = cpu if _writes(cpu) else gpu
            reader = gpu if writer is cpu else cpu
            yield _finding(
                "RACE002",
                trace,
                index,
                f"{reader.pu} reads a range {writer.pu} is concurrently "
                "writing; the value observed depends on interleaving",
                segment=both,
            )
        if (
            config.weak_consistency
            and _writes(cpu)
            and _writes(gpu)
            and _reads(cpu)
            and _reads(gpu)
        ):
            confirmed = _sb_hazard_allowed(config)
            if confirmed:
                yield _finding(
                    "CONS001",
                    trace,
                    index,
                    "store-buffering exchange on the overlapping range: the "
                    f"{config.consistency} model permits both PUs to miss "
                    "each other's writes",
                    segment=both,
                    confirmed=True,
                )


# -- PAS: ownership discipline ------------------------------------------------


def _check_ownership(trace: KernelTrace, config: CheckConfig) -> Iterable[Finding]:
    if not config.ownership_control:
        return
    held = 0  # shared objects currently acquired by the GPU
    last_grant_index: Optional[int] = None  # H2D with no compute since
    for index, phase in enumerate(trace.phases):
        if isinstance(phase, CommPhase):
            if phase.direction is Direction.H2D:
                if last_grant_index is not None:
                    yield _finding(
                        "PAS002",
                        trace,
                        index,
                        "ownership granted again (H2D at phase "
                        f"{last_grant_index} and here) with no compute "
                        "between the two acquires",
                    )
                held += phase.num_objects
                last_grant_index = index
            else:
                last_grant_index = None  # ownership moved back; not a double grant
                if phase.num_objects > held:
                    yield _finding(
                        "PAS003",
                        trace,
                        index,
                        f"release of {phase.num_objects} shared object(s) "
                        f"while the GPU holds only {held} (no matching "
                        "acquire)",
                    )
                held = max(held - phase.num_objects, 0)
        elif isinstance(phase, ParallelPhase):
            last_grant_index = None
            if held == 0:
                yield _finding(
                    "PAS001",
                    trace,
                    index,
                    "GPU segment touches the shared window but the GPU has "
                    "acquired no shared objects (missing acquireOwnership)",
                    segment=phase.gpu.label,
                )
        elif isinstance(phase, SequentialPhase):
            last_grant_index = None


# -- DIS: explicit transfer discipline ----------------------------------------


def _check_transfers(trace: KernelTrace, config: CheckConfig) -> Iterable[Finding]:
    if not config.explicit_transfers:
        return
    device_resident = False
    previous: Optional[Tuple[int, CommPhase]] = None  # adjacent comm phases
    for index, phase in enumerate(trace.phases):
        if isinstance(phase, CommPhase):
            if previous is not None and previous[1].direction is phase.direction:
                yield _finding(
                    "DIS002",
                    trace,
                    index,
                    f"back-to-back {phase.direction} copies (phases "
                    f"{previous[0]} and {index}) with no compute between "
                    "them: the second copies unchanged data",
                )
            if phase.direction is Direction.H2D:
                device_resident = True
            previous = (index, phase)
        else:
            previous = None
            if isinstance(phase, ParallelPhase) and _reads(phase.gpu):
                if not device_resident:
                    yield _finding(
                        "DIS001",
                        trace,
                        index,
                        "GPU segment consumes data, but no H2D copy precedes "
                        "it; under a disjoint space the device memory is "
                        "uninitialized here",
                        segment=phase.gpu.label,
                    )


# -- LOC: staleness under explicit locality -----------------------------------


def _check_staleness(trace: KernelTrace, config: CheckConfig) -> Iterable[Finding]:
    if not config.explicit_shared_locality:
        return
    # Ranges written by each PU and not yet pushed to the other side.
    dirty: dict = {ProcessingUnit.CPU: [], ProcessingUnit.GPU: []}

    def stale_overlap(reader: Segment) -> Optional[Tuple[Tuple[int, int], str]]:
        if not _reads(reader):
            return None
        for span, label in dirty[reader.pu.other]:
            if _overlaps(_span(reader), span):
                return span, label
        return None

    for index, phase in enumerate(trace.phases):
        if isinstance(phase, CommPhase):
            # A transfer in a direction pushes everything the source PU
            # produced (comm phases carry no ranges, so be conservative
            # in the direction of *fewer* findings).
            dirty[phase.direction.source] = []
            continue
        segments = (
            (phase.segment,)
            if isinstance(phase, SequentialPhase)
            else (phase.cpu, phase.gpu)
        )
        # Reads see the state *before* this phase's writes land: check
        # both halves first, then record the new dirty ranges.
        for segment in segments:
            hit = stale_overlap(segment)
            if hit is not None:
                span, producer = hit
                yield _finding(
                    "LOC001",
                    trace,
                    index,
                    f"{segment.pu} reads [{span[0]:#x}..{span[1]:#x}) which "
                    f"{segment.pu.other} produced in segment "
                    f"{producer!r} with no intervening push/transfer",
                    segment=segment.label,
                )
        for segment in segments:
            if _writes(segment):
                dirty[segment.pu].append(
                    (_span(segment), segment.label or str(segment.pu))
                )


# -- entry points -------------------------------------------------------------

_PASSES = (_check_races, _check_ownership, _check_transfers, _check_staleness)


def check_trace(trace: KernelTrace, config: CheckConfig) -> CheckReport:
    """Statically analyze one trace under one configuration."""
    findings: List[Finding] = []
    for check in _PASSES:
        findings.extend(check(trace, config))
    return CheckReport(trace=trace.name, config=config.label, findings=tuple(findings))


def check_pairs(
    pairs: Sequence[Tuple[KernelTrace, CheckConfig]],
) -> List[CheckReport]:
    """Check a batch of (trace, configuration) pairs."""
    return [check_trace(trace, config) for trace, config in pairs]
