"""The static analysis passes behind ``repro check``.

:func:`check_trace` walks a trace once per rule family, against the
obligations the configuration imposes:

- **races** — the two halves of a parallel phase run concurrently; where
  their footprints overlap inside a shared window, writes race
  (``RACE001``/``RACE002``) and, under a weak model, a store-buffering
  exchange is compiled to a litmus program and confirmed against the
  operational executor (``CONS001``);
- **ownership** — under the partially shared space the checker abstracts
  each H2D communication as a release+acquire granting ``num_objects``
  shared objects to the GPU and each D2H as the GPU handing objects back
  (Figure 2's flow); compute with nothing acquired, double grants, and
  returns without a grant are ``PAS001``-``PAS003``;
- **transfers** — disjoint spaces require a copy before consumption
  (``DIS001``) and make back-to-back same-direction copies redundant
  (``DIS002``);
- **staleness** — under explicit shared locality, ranges written by one
  PU must be pushed (a transfer in the producer-to-consumer direction)
  before the other PU reads them (``LOC001``). Since check v2 this is a
  dataflow fact: the reaching-transfers fixpoint of
  :mod:`repro.check.passes`, litmus-confirmed against the operational
  executor;
- **coherence declarations** — when the configuration carries access-mode
  declarations (a runtime that elides transfers from them), every
  parallel-phase write must land in a declared write/reduce range
  (``COH001``), and a reduce-declared range both PUs accumulate into must
  be merged afterwards (``COH002``). Both findings are confirmed against
  the operational executor: the stale read respectively the
  multiple-outcome nondeterminism is actually reachable under the design
  point's model (:func:`~repro.consistency.litmus.model_for_design`).

With ``optimize=True`` the dataflow optimization passes join in:
buffer liveness (``OPT001`` dead transfers), available copies
(``OPT002`` redundant transfers, bytes-saved estimated), and access-mode
inference (``INF001``, Table V-verified declareAccess suggestions). They
are advisory — warnings that never gate simulation — so the default
check keeps the paper kernels clean while ``--optimize`` (or the
Explorer's ``check="optimize"``) surfaces the opportunities.

Every pass is linear in the number of phases (the dataflow fixpoints
converge in one sweep on linear trace CFGs); the litmus confirmation
runs the exhaustive executor only on 4-instruction programs, so checking
a kernel takes well under the 1 s budget.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.check.config import CheckConfig
from repro.check.findings import CheckReport, Finding
from repro.check.passes import (
    access_mode_findings,
    dead_transfer_findings,
    redundant_transfer_findings,
    staleness_findings,
)
from repro.check.rules import rule
from repro.consistency.litmus import model_for, model_for_design
from repro.consistency.model import allowed_outcomes, is_allowed
from repro.consistency.ops import Load, Program, Store
from repro.taxonomy import ProcessingUnit
from repro.trace.phase import CommPhase, Direction, ParallelPhase, Segment, SequentialPhase
from repro.trace.stream import KernelTrace

__all__ = ["check_trace", "check_pairs"]


# -- range helpers ------------------------------------------------------------


def _span(segment: Segment) -> Tuple[int, int]:
    """The half-open byte range a segment's memory operations stride."""
    return (segment.base_addr, segment.base_addr + segment.footprint_bytes)


def _overlaps(a: Tuple[int, int], b: Tuple[int, int]) -> bool:
    return a[0] < b[1] and b[0] < a[1]


def _reads(segment: Segment) -> bool:
    return segment.mix.load_ops > 0


def _writes(segment: Segment) -> bool:
    return segment.mix.store_ops > 0


def _finding(
    rule_id: str,
    trace: KernelTrace,
    index: int,
    message: str,
    segment: str = "",
    confirmed: Optional[bool] = None,
) -> Finding:
    meta = rule(rule_id)
    return Finding(
        rule=rule_id,
        severity=meta.severity,
        message=message,
        trace=trace.name,
        phase_index=index,
        phase_label=trace.phases[index].label,
        segment=segment,
        fix_hint=meta.fix_hint,
        confirmed=confirmed,
    )


# -- RACE / CONS: concurrent halves of a parallel phase -----------------------


def _sb_hazard_allowed(config: CheckConfig) -> bool:
    """Litmus confirmation: compile the suspicious exchange to the classic
    store-buffering program and ask the operational executor whether the
    configured model reaches the bad outcome (both PUs missing each
    other's update)."""
    program = Program(
        threads={
            ProcessingUnit.CPU: (Store("x", 1), Load("y", "r0")),
            ProcessingUnit.GPU: (Store("y", 1), Load("x", "r1")),
        }
    )
    observation = {"r0": 0, "r1": 0}
    return is_allowed(program, observation, model_for(config.consistency))


def _reduce_declared(config: CheckConfig, a: Segment, b: Segment) -> bool:
    """Whether the overlap of two segments lies inside a reduce-declared
    range. Such concurrency is the intended reduction pattern — each PU
    accumulates its own partials — so the RACE rules stand down there and
    COH002 takes over (demanding the merge)."""
    if not config.reduce_ranges:
        return False
    lo = max(a.base_addr, b.base_addr)
    hi = min(_span(a)[1], _span(b)[1])
    return any(start <= lo and hi <= end for start, end in config.reduce_ranges)


def _check_races(trace: KernelTrace, config: CheckConfig) -> Iterable[Finding]:
    if not config.has_shared_window:
        # Overlapping virtual ranges name *different* memories under a
        # disjoint space; there is nothing to race on.
        return
    for index, phase in enumerate(trace.phases):
        if not isinstance(phase, ParallelPhase):
            continue
        cpu, gpu = phase.cpu, phase.gpu
        if not _overlaps(_span(cpu), _span(gpu)):
            continue
        if _reduce_declared(config, cpu, gpu):
            continue
        both = f"{cpu.label or 'cpu'}+{gpu.label or 'gpu'}"
        if _writes(cpu) and _writes(gpu):
            yield _finding(
                "RACE001",
                trace,
                index,
                "concurrent CPU and GPU segments write overlapping ranges "
                f"[{cpu.base_addr:#x}..) and [{gpu.base_addr:#x}..) with no "
                "intervening synchronization",
                segment=both,
            )
        elif (_writes(cpu) and _reads(gpu)) or (_writes(gpu) and _reads(cpu)):
            writer = cpu if _writes(cpu) else gpu
            reader = gpu if writer is cpu else cpu
            yield _finding(
                "RACE002",
                trace,
                index,
                f"{reader.pu} reads a range {writer.pu} is concurrently "
                "writing; the value observed depends on interleaving",
                segment=both,
            )
        if (
            config.weak_consistency
            and _writes(cpu)
            and _writes(gpu)
            and _reads(cpu)
            and _reads(gpu)
        ):
            confirmed = _sb_hazard_allowed(config)
            if confirmed:
                yield _finding(
                    "CONS001",
                    trace,
                    index,
                    "store-buffering exchange on the overlapping range: the "
                    f"{config.consistency} model permits both PUs to miss "
                    "each other's writes",
                    segment=both,
                    confirmed=True,
                )


# -- PAS: ownership discipline ------------------------------------------------


def _check_ownership(trace: KernelTrace, config: CheckConfig) -> Iterable[Finding]:
    if not config.ownership_control:
        return
    held = 0  # shared objects currently acquired by the GPU
    last_grant_index: Optional[int] = None  # H2D with no compute since
    for index, phase in enumerate(trace.phases):
        if isinstance(phase, CommPhase):
            if phase.direction is Direction.H2D:
                if last_grant_index is not None:
                    yield _finding(
                        "PAS002",
                        trace,
                        index,
                        "ownership granted again (H2D at phase "
                        f"{last_grant_index} and here) with no compute "
                        "between the two acquires",
                    )
                held += phase.num_objects
                last_grant_index = index
            else:
                last_grant_index = None  # ownership moved back; not a double grant
                if phase.num_objects > held:
                    yield _finding(
                        "PAS003",
                        trace,
                        index,
                        f"release of {phase.num_objects} shared object(s) "
                        f"while the GPU holds only {held} (no matching "
                        "acquire)",
                    )
                held = max(held - phase.num_objects, 0)
        elif isinstance(phase, ParallelPhase):
            last_grant_index = None
            if held == 0:
                yield _finding(
                    "PAS001",
                    trace,
                    index,
                    "GPU segment touches the shared window but the GPU has "
                    "acquired no shared objects (missing acquireOwnership)",
                    segment=phase.gpu.label,
                )
        elif isinstance(phase, SequentialPhase):
            last_grant_index = None


# -- DIS: explicit transfer discipline ----------------------------------------


def _check_transfers(trace: KernelTrace, config: CheckConfig) -> Iterable[Finding]:
    if not config.explicit_transfers:
        return
    device_resident = False
    previous: Optional[Tuple[int, CommPhase]] = None  # adjacent comm phases
    for index, phase in enumerate(trace.phases):
        if isinstance(phase, CommPhase):
            if previous is not None and previous[1].direction is phase.direction:
                yield _finding(
                    "DIS002",
                    trace,
                    index,
                    f"back-to-back {phase.direction} copies (phases "
                    f"{previous[0]} and {index}) with no compute between "
                    "them: the second copies unchanged data",
                )
            if phase.direction is Direction.H2D:
                device_resident = True
            previous = (index, phase)
        else:
            previous = None
            if isinstance(phase, ParallelPhase) and _reads(phase.gpu):
                if not device_resident:
                    yield _finding(
                        "DIS001",
                        trace,
                        index,
                        "GPU segment consumes data, but no H2D copy precedes "
                        "it; under a disjoint space the device memory is "
                        "uninitialized here",
                        segment=phase.gpu.label,
                    )


# -- LOC: staleness under explicit locality (dataflow-backed) -----------------


def _check_staleness(trace: KernelTrace, config: CheckConfig) -> Iterable[Finding]:
    """LOC001 via the reaching-transfers fixpoint (check v2): same
    obligations as the PR-3 segment walk — reads see the state before
    their phase's writes, a transfer pushes everything its source PU
    produced — but computed as a dataflow fact and litmus-confirmed."""
    return staleness_findings(trace, config)


# -- COH: access-mode declaration discipline ----------------------------------


def _stale_read_reachable(config: CheckConfig) -> bool:
    """Litmus confirmation for COH001: compile the undeclared write to the
    minimal producer/consumer exchange — a store the runtime was never told
    about, read by the peer with nothing ordering the two — and ask the
    executor whether the stale observation is reachable under the design
    point's cross-PU model."""
    program = Program(
        threads={
            ProcessingUnit.CPU: (Store("data", 1),),
            ProcessingUnit.GPU: (Load("data", "r0"),),
        }
    )
    model = model_for_design(config.consistency, config.coherence)
    return is_allowed(program, {"r0": 0}, model)


def _unmerged_reduce_nondeterministic(config: CheckConfig) -> bool:
    """Litmus confirmation for COH002: both PUs store their partial into
    the same reduce-declared location and then read it back with no merge
    in between; the finding is real iff the executor reaches more than one
    final valuation (the consumer's value depends on interleaving)."""
    program = Program(
        threads={
            ProcessingUnit.CPU: (Store("acc", 1), Load("acc", "r0")),
            ProcessingUnit.GPU: (Store("acc", 2), Load("acc", "r1")),
        }
    )
    model = model_for_design(config.consistency, config.coherence)
    return len(allowed_outcomes(program, model)) > 1


def _check_coherence(trace: KernelTrace, config: CheckConfig) -> Iterable[Finding]:
    if not config.has_declarations or not config.has_shared_window:
        return
    declared = tuple(config.declared_writes or ()) + tuple(config.reduce_ranges or ())

    def covered(span: Tuple[int, int]) -> bool:
        return any(lo <= span[0] and span[1] <= hi for lo, hi in declared)

    # COH001 — every concurrent write must land in a declared range: the
    # runtime elides invalidations for anything it was not told about.
    for index, phase in enumerate(trace.phases):
        if not isinstance(phase, ParallelPhase):
            continue
        for segment in (phase.cpu, phase.gpu):
            if not _writes(segment) or segment.footprint_bytes == 0:
                continue
            span = _span(segment)
            if covered(span):
                continue
            yield _finding(
                "COH001",
                trace,
                index,
                f"{segment.pu} writes [{span[0]:#x}..{span[1]:#x}) but no "
                "access declaration covers it; the runtime keeps remote "
                "copies of the range and the peer can read them stale",
                segment=segment.label,
                confirmed=_stale_read_reachable(config),
            )

    # COH002 — a reduce-declared range both PUs accumulate into must be
    # merged (a sequential read of the partials, or a transfer gathering
    # them) before the trace ends.
    for span in config.reduce_ranges or ():
        reduce_index: Optional[int] = None
        merged = False
        for index, phase in enumerate(trace.phases):
            if isinstance(phase, ParallelPhase):
                if (
                    _writes(phase.cpu)
                    and _writes(phase.gpu)
                    and _overlaps(_span(phase.cpu), span)
                    and _overlaps(_span(phase.gpu), span)
                ):
                    if reduce_index is None:
                        reduce_index = index
                    merged = False  # a new round of partials needs a new merge
            elif reduce_index is not None and not merged:
                if isinstance(phase, CommPhase):
                    merged = True  # the transfer gathers the partials
                elif isinstance(phase, SequentialPhase) and (
                    _reads(phase.segment)
                    and _overlaps(_span(phase.segment), span)
                ):
                    merged = True
        if reduce_index is not None and not merged:
            yield _finding(
                "COH002",
                trace,
                reduce_index,
                f"both PUs accumulate partials into reduce-declared range "
                f"[{span[0]:#x}..{span[1]:#x}) but nothing ever merges "
                "them; the final value depends on interleaving",
                confirmed=_unmerged_reduce_nondeterministic(config),
            )


# -- OPT/INF: advisory optimization passes (optimize mode only) ---------------


def _check_optimizations(
    trace: KernelTrace, config: CheckConfig
) -> Iterable[Finding]:
    """The dataflow optimization rules: dead transfers (OPT001),
    redundant transfers (OPT002), and inferable declarations (INF001).
    Advisory only — check_trace runs them only with ``optimize=True``."""
    yield from dead_transfer_findings(trace)
    yield from redundant_transfer_findings(trace)
    yield from access_mode_findings(trace, config)


# -- entry points -------------------------------------------------------------

_PASSES = (
    _check_races,
    _check_ownership,
    _check_transfers,
    _check_staleness,
    _check_coherence,
)


def check_trace(
    trace: KernelTrace, config: CheckConfig, optimize: bool = False
) -> CheckReport:
    """Statically analyze one trace under one configuration.

    ``optimize=True`` additionally runs the OPT/INF dataflow passes —
    advisory warnings about transfer traffic the program could drop; the
    default keeps the correctness rules only, so clean programs stay
    clean."""
    findings: List[Finding] = []
    for check in _PASSES:
        findings.extend(check(trace, config))
    if optimize:
        findings.extend(_check_optimizations(trace, config))
    return CheckReport(trace=trace.name, config=config.label, findings=tuple(findings))


def check_pairs(
    pairs: Sequence[Tuple[KernelTrace, CheckConfig]],
    optimize: bool = False,
) -> List[CheckReport]:
    """Check a batch of (trace, configuration) pairs."""
    return [check_trace(trace, config, optimize=optimize) for trace, config in pairs]
