"""Static memory-model checker for kernel traces (``repro check``).

The paper's Table I is, at heart, a table of *obligations*: every
address-space/locality design point demands something from the program —
ownership acquire/release discipline under the partially shared space
(§II-A3), explicit transfers before consumption under disjoint spaces
(§II-A2), a ``push`` before remote reads under explicit locality
management (§II-B), and synchronization wherever the consistency model is
weaker than SC (Table I's consistency column). The simulators enforce
these *dynamically* (``OwnershipError`` mid-run); this package enforces
them *statically*, by walking a :class:`~repro.trace.stream.KernelTrace`
against a :class:`CheckConfig` and reporting typed :class:`Finding`\\ s in
milliseconds — before any simulation cycles are spent.

Suspicious concurrent phase pairs are additionally cross-validated
against the operational consistency executors
(:func:`repro.consistency.model.allowed_outcomes`): the checker compiles
them to small litmus programs and upgrades the finding from *possible* to
*confirmed* when the configured model really permits the bad outcome.

Since check v2 the rules sit on a real dataflow foundation: traces (and
progmodel programs) lower to an analysis IR — a CFG of phases with
per-buffer def/use/transfer/ownership events over address atoms
(:mod:`repro.check.ir`) — and a generic gen/kill worklist solver
(:mod:`repro.check.dataflow`) runs forward/backward fixpoints over it.
Four passes live on top (:mod:`repro.check.passes`): reaching-transfers
(LOC001 as a dataflow fact), buffer liveness (OPT001 dead transfers),
available copies (OPT002 redundant transfers with bytes-saved
estimates), and access-mode inference (INF001, Table V-verified
``declareAccess`` suggestions). The OPT/INF rules are advisory and only
run in optimize mode.

Entry points:

- :func:`check_trace` — analyze one trace under one configuration
  (``optimize=True`` adds the OPT/INF passes);
- :func:`check_pairs` — batch helper over (trace, config) pairs;
- ``repro-explore check`` — the CLI front door (exit code 4 on
  findings; ``--optimize`` and ``--sarif`` for the v2 surfaces);
- ``Explorer(check="warn"|"error"|"optimize")`` — the pre-simulation
  gate (optimize reports OPT/INF findings without ever gating).
"""

from repro.check.analysis import check_pairs, check_trace
from repro.check.config import CheckConfig
from repro.check.dataflow import (
    DataflowProblem,
    DataflowSolution,
    FlowDirection,
    GenKill,
    Join,
    solve,
)
from repro.check.findings import CheckReport, Finding, Severity, merge_reports
from repro.check.ir import (
    AddressAtoms,
    AnalysisCFG,
    BufferEvent,
    EventKind,
    IRNode,
    Space,
    cfg_from_program,
    cfg_from_trace,
)
from repro.check.rules import RULES, Rule, rule
from repro.check.sarif import to_sarif, write_sarif

__all__ = [
    "CheckConfig",
    "CheckReport",
    "Finding",
    "Severity",
    "Rule",
    "RULES",
    "rule",
    "check_trace",
    "check_pairs",
    "merge_reports",
    "Space",
    "EventKind",
    "BufferEvent",
    "IRNode",
    "AnalysisCFG",
    "AddressAtoms",
    "cfg_from_trace",
    "cfg_from_program",
    "FlowDirection",
    "Join",
    "GenKill",
    "DataflowProblem",
    "DataflowSolution",
    "solve",
    "to_sarif",
    "write_sarif",
]
