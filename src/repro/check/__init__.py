"""Static memory-model checker for kernel traces (``repro check``).

The paper's Table I is, at heart, a table of *obligations*: every
address-space/locality design point demands something from the program —
ownership acquire/release discipline under the partially shared space
(§II-A3), explicit transfers before consumption under disjoint spaces
(§II-A2), a ``push`` before remote reads under explicit locality
management (§II-B), and synchronization wherever the consistency model is
weaker than SC (Table I's consistency column). The simulators enforce
these *dynamically* (``OwnershipError`` mid-run); this package enforces
them *statically*, by walking a :class:`~repro.trace.stream.KernelTrace`
against a :class:`CheckConfig` and reporting typed :class:`Finding`\\ s in
milliseconds — before any simulation cycles are spent.

Suspicious concurrent phase pairs are additionally cross-validated
against the operational consistency executors
(:func:`repro.consistency.model.allowed_outcomes`): the checker compiles
them to small litmus programs and upgrades the finding from *possible* to
*confirmed* when the configured model really permits the bad outcome.

Entry points:

- :func:`check_trace` — analyze one trace under one configuration;
- :func:`check_pairs` — batch helper over (trace, config) pairs;
- ``repro-explore check`` — the CLI front door (exit code 4 on findings);
- ``Explorer(check="warn"|"error")`` — the pre-simulation gate.
"""

from repro.check.analysis import check_pairs, check_trace
from repro.check.config import CheckConfig
from repro.check.findings import CheckReport, Finding, Severity, merge_reports
from repro.check.rules import RULES, Rule, rule

__all__ = [
    "CheckConfig",
    "CheckReport",
    "Finding",
    "Severity",
    "Rule",
    "RULES",
    "rule",
    "check_trace",
    "check_pairs",
    "merge_reports",
]
