"""The dataflow passes of check v2, phrased over the analysis IR.

Each pass lowers the trace (or program) with :mod:`repro.check.ir`,
states a gen/kill problem for :func:`repro.check.dataflow.solve`, and
reads findings off the fixpoint facts:

======================  ========  ============  ==========================
pass                    direction join          fact (one bit per atom×space)
======================  ========  ============  ==========================
reaching-transfers      forward   union (may)   "the space's writes to the
                                                atom have not been pushed"
buffer liveness         backward  union (may)   "the space's copy of the
                                                atom is read downstream"
available copies        forward   intersection  "the space's copy of the
                                  (must)        atom is current on every
                                                incoming path"
access-mode inference   (runs on the program IR: classifies each shared
                        buffer from the transfer structure of the
                        disjoint lowering)
======================  ========  ============  ==========================

``reaching-transfers`` subsumes the PR-3 staleness heuristic (LOC001) —
same findings, now as a dataflow fact, and additionally cross-validated
against the operational consistency executor. ``liveness`` yields OPT001
(dead transfer), ``available copies`` yields OPT002 (redundant transfer,
with a bytes-saved estimate), and the mode inference yields INF001
(the exact ``declareAccess`` lines a kernel admits, verified against the
Table V declared counts).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.check.config import CheckConfig
from repro.check.dataflow import (
    DataflowProblem,
    DataflowSolution,
    FlowDirection,
    GenKill,
    Join,
    solve,
)
from repro.check.findings import Finding
from repro.check.ir import (
    AddressAtoms,
    EventKind,
    Space,
    TraceIR,
    cfg_from_program,
    cfg_from_trace,
)
from repro.check.rules import rule
from repro.consistency.litmus import model_for_design
from repro.consistency.model import is_allowed
from repro.consistency.ops import Load, Program, Store
from repro.errors import ProgramError
from repro.progmodel.ast import AccessDecl, AccessMode
from repro.progmodel.lowering import lower
from repro.progmodel.spec import KernelProgramSpec, program_spec
from repro.taxonomy import AddressSpaceKind, ProcessingUnit
from repro.trace.phase import CommPhase, ParallelPhase
from repro.trace.stream import KernelTrace

__all__ = [
    "reaching_transfers",
    "staleness_findings",
    "buffer_liveness",
    "dead_transfer_findings",
    "available_copies",
    "redundant_transfer_findings",
    "infer_access_modes",
    "access_mode_findings",
]


def _shift(space: Space, atoms: AddressAtoms) -> int:
    """Fact layout: the low ``len(atoms)`` bits are HOST, the high DEVICE."""
    return 0 if space is Space.HOST else len(atoms)


def _universe(atoms: AddressAtoms) -> int:
    return (1 << (2 * len(atoms))) - 1


def _pass_finding(
    rule_id: str,
    ir: TraceIR,
    node_index: int,
    message: str,
    segment: str = "",
    fix_hint: str = "",
    confirmed: Optional[bool] = None,
    bytes_saved: int = 0,
    space: str = "",
) -> Finding:
    meta = rule(rule_id)
    node = ir.cfg.nodes[node_index]
    return Finding(
        rule=rule_id,
        severity=meta.severity,
        message=message,
        trace=ir.trace.name,
        phase_index=node.phase_index,
        phase_label=node.label,
        segment=segment,
        fix_hint=fix_hint or meta.fix_hint,
        confirmed=confirmed,
        bytes_saved=bytes_saved,
        space=space,
    )


# -- reaching transfers: staleness as a dataflow fact (LOC001) ----------------


def reaching_transfers(ir: TraceIR) -> DataflowSolution:
    """Forward may-analysis: bit (atom, space) means the space's PU wrote
    the atom and no transfer has pushed that write to the other side yet.
    DEFs gen their space's bits; a transfer kills every bit of its
    *source* space (comm phases carry no ranges, so the push is
    conservatively total — the direction of fewer findings, matching the
    PR-3 heuristic exactly)."""
    atoms = ir.atoms
    transfers: Dict[int, GenKill] = {}
    for node in ir.cfg.nodes:
        gen = kill = 0
        for event in node.events:
            if event.kind is EventKind.DEF:
                gen |= event.mask << _shift(event.space, atoms)
            elif event.kind is EventKind.TRANSFER:
                kill |= atoms.all_mask << _shift(event.space.other, atoms)
        if gen or kill:
            transfers[node.index] = GenKill(gen=gen, kill=kill)
    problem = DataflowProblem(
        direction=FlowDirection.FORWARD,
        join=Join.UNION,
        universe=_universe(atoms),
        boundary=0,
        transfers=transfers,
    )
    return solve(ir.cfg, problem)


def _stale_observation_reachable(config: CheckConfig) -> bool:
    """Litmus confirmation for LOC001: the minimal producer/consumer
    exchange with nothing pushing the store — reachable exactly when the
    design point's cross-PU model lets a read miss a remote write."""
    program = Program(
        threads={
            ProcessingUnit.CPU: (Store("data", 1),),
            ProcessingUnit.GPU: (Load("data", "r0"),),
        }
    )
    model = model_for_design(config.consistency, config.coherence)
    return is_allowed(program, {"r0": 0}, model)


def staleness_findings(
    trace: KernelTrace, config: CheckConfig
) -> Iterable[Finding]:
    """LOC001 off the reaching-transfers fixpoint: a USE whose atoms are
    dirty in the *other* space reads data whose producing writes were
    never pushed."""
    if not config.explicit_shared_locality:
        return
    ir = cfg_from_trace(trace)
    atoms = ir.atoms
    solution = reaching_transfers(ir)
    confirmed = _stale_observation_reachable(config)
    # Replay producer labels: which segment last dirtied each atom.
    producer: Dict[Space, Dict[int, str]] = {Space.HOST: {}, Space.DEVICE: {}}
    for node in ir.cfg.nodes:
        before = solution.before[node.index]
        for event in node.events:
            if event.kind is not EventKind.USE:
                continue
            remote = event.space.other
            stale = (before >> _shift(remote, atoms)) & event.mask
            if not stale:
                continue
            spans = atoms.spans_of(stale)
            lo, hi = spans[0]
            low_bit = stale & -stale
            label = producer[remote].get(
                low_bit.bit_length() - 1, str(remote.pu)
            )
            yield _pass_finding(
                "LOC001",
                ir,
                node.index,
                f"{event.space.pu} reads [{lo:#x}..{hi:#x}) which "
                f"{remote.pu} produced in segment {label!r} with no "
                "intervening push/transfer",
                segment=event.label,
                confirmed=confirmed,
            )
        for event in node.events:
            if event.kind is EventKind.DEF:
                for bit in range(len(atoms)):
                    if event.mask & (1 << bit):
                        producer[event.space][bit] = event.label or str(
                            event.space.pu
                        )
            elif event.kind is EventKind.TRANSFER:
                producer[event.space.other].clear()


# -- buffer liveness: dead transfers (OPT001) ---------------------------------


def buffer_liveness(ir: TraceIR) -> DataflowSolution:
    """Backward may-analysis: bit (atom, space) means the space's copy of
    the atom is read downstream before being overwritten. USEs gen their
    space's bits; DEFs kill them; a transfer kills its destination's bits
    (the copy overwrites them) and *uses* its source's (the copy reads
    them). The exit boundary keeps every host atom live — results escape
    to the caller — and no device atom (device memory dies with the
    kernel)."""
    atoms = ir.atoms
    transfers: Dict[int, GenKill] = {}
    for node in ir.cfg.nodes:
        gen = kill = 0
        for event in node.events:
            if event.kind is EventKind.USE:
                gen |= event.mask << _shift(event.space, atoms)
            elif event.kind is EventKind.DEF:
                kill |= event.mask << _shift(event.space, atoms)
            elif event.kind is EventKind.TRANSFER:
                kill |= atoms.all_mask << _shift(event.space, atoms)
                gen |= atoms.all_mask << _shift(event.space.other, atoms)
        if gen or kill:
            transfers[node.index] = GenKill(gen=gen, kill=kill)
    problem = DataflowProblem(
        direction=FlowDirection.BACKWARD,
        join=Join.UNION,
        universe=_universe(atoms),
        boundary=atoms.all_mask << _shift(Space.HOST, atoms),
        transfers=transfers,
    )
    return solve(ir.cfg, problem)


def dead_transfer_findings(trace: KernelTrace) -> Iterable[Finding]:
    """OPT001: a transfer none of whose delivered atoms are live in the
    destination space right after it — every byte it moves is overwritten
    or simply never read again."""
    ir = cfg_from_trace(trace)
    atoms = ir.atoms
    if not len(atoms):
        return
    solution = buffer_liveness(ir)
    for node in ir.cfg.nodes:
        if node.kind != "comm":
            continue
        phase = ir.trace.phases[node.phase_index]
        assert isinstance(phase, CommPhase)
        dest = Space.of(phase.direction.destination)
        delivered = atoms.all_mask << _shift(dest, atoms)
        if solution.after[node.index] & delivered:
            continue
        yield _pass_finding(
            "OPT001",
            ir,
            node.index,
            f"{phase.direction} transfer of {phase.num_bytes} bytes is dead: "
            f"nothing reads the {dest} copy it delivers before the data is "
            "overwritten or the trace ends",
            bytes_saved=phase.num_bytes,
            space=str(dest),
        )


# -- available copies: redundant transfers (OPT002) ---------------------------


def available_copies(ir: TraceIR) -> DataflowSolution:
    """Forward must-analysis: bit (atom, space) means the space's resident
    copy of the atom is current on *every* path reaching here. A DEF
    makes its own space current and the peer's stale; a transfer makes
    its destination current. The entry boundary: the host owns the
    initial data, the device holds garbage."""
    atoms = ir.atoms
    transfers: Dict[int, GenKill] = {}
    for node in ir.cfg.nodes:
        gen = kill = 0
        for event in node.events:
            if event.kind is EventKind.DEF:
                gen |= event.mask << _shift(event.space, atoms)
                kill |= event.mask << _shift(event.space.other, atoms)
            elif event.kind is EventKind.TRANSFER:
                gen |= atoms.all_mask << _shift(event.space, atoms)
        if gen or kill:
            transfers[node.index] = GenKill(gen=gen, kill=kill)
    problem = DataflowProblem(
        direction=FlowDirection.FORWARD,
        join=Join.INTERSECTION,
        universe=_universe(atoms),
        boundary=atoms.all_mask << _shift(Space.HOST, atoms),
        transfers=transfers,
    )
    return solve(ir.cfg, problem)


def redundant_transfer_findings(trace: KernelTrace) -> Iterable[Finding]:
    """OPT002: a transfer whose destination already holds a current copy
    of everything it delivers, on every incoming path. The bytes-saved
    estimate is the phase's transfer size (dropping it removes exactly
    that traffic) and flows to the ``check.opt.bytes_saved.*`` metrics."""
    ir = cfg_from_trace(trace)
    atoms = ir.atoms
    if not len(atoms):
        return
    solution = available_copies(ir)
    for node in ir.cfg.nodes:
        if node.kind != "comm":
            continue
        phase = ir.trace.phases[node.phase_index]
        assert isinstance(phase, CommPhase)
        dest = Space.of(phase.direction.destination)
        delivered = atoms.all_mask << _shift(dest, atoms)
        if delivered & ~solution.before[node.index]:
            continue
        yield _pass_finding(
            "OPT002",
            ir,
            node.index,
            f"{phase.direction} transfer of {phase.num_bytes} bytes is "
            f"redundant: the {dest} space already holds a current copy of "
            "every byte it delivers on every path reaching this phase",
            bytes_saved=phase.num_bytes,
            space=str(dest),
        )


# -- access-mode inference (INF001) -------------------------------------------


def infer_access_modes(spec: KernelProgramSpec) -> Dict[str, AccessMode]:
    """The declareAccess mode each shared buffer admits, inferred from
    program structure rather than read off the spec's direction field:
    lower the spec to the disjoint space — the lowering that must spell
    every data movement out — build the program IR, and classify each
    buffer by the transfers that touch it. A buffer copied device-to-host
    is written by the kernel (``write``); one only copied host-to-device
    is read-only (``read``); a declared reduction buffer holds per-PU
    partials (``reduce``)."""
    program = lower(spec, AddressSpaceKind.DISJOINT)
    ir = cfg_from_program(program, spec)
    copied_back = 0
    for node in ir.cfg.nodes:
        for event in node.events:
            if event.kind is EventKind.TRANSFER and event.space is Space.HOST:
                copied_back |= event.mask
    modes: Dict[str, AccessMode] = {}
    for buffer in spec.buffers:
        if buffer.name in spec.reduce_buffers:
            modes[buffer.name] = AccessMode.REDUCE
        elif copied_back & ir.mask_for(buffer.name):
            modes[buffer.name] = AccessMode.WRITE
        else:
            modes[buffer.name] = AccessMode.READ
    return modes


def access_mode_findings(
    trace: KernelTrace, config: CheckConfig
) -> Iterable[Finding]:
    """INF001: the program carries no access declarations, but declaring
    the inferred modes would let the runtime elide communication lines
    under this address space (the Table V "with declarations" delta)."""
    if config.has_declarations:
        return  # already declared; nothing to infer
    try:
        spec = program_spec(trace.name)
    except ProgramError:
        return  # not one of the paper kernels; no program to reason about
    try:
        plain = lower(spec, config.address_space)
        modes = infer_access_modes(spec)
        declared = lower(spec, config.address_space, modes)
    except ProgramError:
        return
    saving = plain.comm_lines() - declared.comm_lines()
    if saving <= 0:
        return  # declarations would not pay here (e.g. unified/disjoint)
    decls = " ".join(
        AccessDecl(name, modes[name]).render() for name in spec.buffer_names
    )
    ir = cfg_from_trace(trace)
    node_index = next(
        (
            node.index
            for node in ir.cfg.nodes
            if node.phase_index >= 0
            and isinstance(trace.phases[node.phase_index], ParallelPhase)
        ),
        1,
    )
    yield _pass_finding(
        "INF001",
        ir,
        node_index,
        f"kernel admits exact access-mode declarations: declaring them "
        f"saves {saving} communication line(s) under "
        f"{config.address_space.short} (Table V "
        f"{plain.comm_lines()} -> {declared.comm_lines()})",
        fix_hint=f"add {decls}",
    )
