"""Seeded-violation fixtures: one deliberately broken trace per rule id.

These are the checker's ground truth — CI runs ``repro-explore check
--fixtures`` and demands exit code 4 with every rule id reported — and
double as executable documentation of what each rule catches. Each
fixture is a small hand-built trace paired with the configuration under
which it is wrong (the same trace is often *fine* under another design
point; that asymmetry is the paper's Table I argument).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.check.config import CheckConfig
from repro.taxonomy import (
    AddressSpaceKind,
    CoherenceKind,
    ConsistencyModel,
    LocalityScheme,
    ProcessingUnit,
)
from repro.trace.mix import InstructionMix
from repro.trace.phase import CommPhase, Direction, ParallelPhase, Segment, SequentialPhase
from repro.trace.stream import KernelTrace

__all__ = ["SeededViolation", "all_fixtures", "fixture_rule_ids"]

_BASE = 0x1000_0000
_KB = 1024


@dataclass(frozen=True)
class SeededViolation:
    """A broken trace, the config it is broken under, and the expected rule.

    ``optimize`` marks fixtures whose rule lives in the OPT/INF family:
    those findings only surface when the checker runs in optimize mode
    (``check_trace(..., optimize=True)`` / ``repro-explore check
    --optimize``), so the harness must pass the flag through.
    """

    name: str
    rule: str
    trace: KernelTrace
    config: CheckConfig
    description: str
    optimize: bool = False


def _seg(
    pu: ProcessingUnit,
    loads: int = 0,
    stores: int = 0,
    base: int = _BASE,
    footprint: int = 4 * _KB,
    label: str = "",
) -> Segment:
    """A tiny segment with the given memory behaviour (plus ALU filler)."""
    if pu is ProcessingUnit.GPU:
        mix = InstructionMix(simd_loads=loads, simd_stores=stores, int_alu=16)
    else:
        mix = InstructionMix(loads=loads, stores=stores, int_alu=16)
    return Segment(
        pu=pu,
        mix=mix,
        base_addr=base,
        footprint_bytes=footprint,
        label=label or f"{pu}-seg",
    )


def _h2d(num_bytes: int = 4 * _KB, num_objects: int = 1, label: str = "h2d") -> CommPhase:
    return CommPhase(
        label=label, direction=Direction.H2D, num_bytes=num_bytes, num_objects=num_objects
    )


def _d2h(num_bytes: int = 4 * _KB, num_objects: int = 1, label: str = "d2h") -> CommPhase:
    return CommPhase(
        label=label, direction=Direction.D2H, num_bytes=num_bytes, num_objects=num_objects
    )


_UNI_WEAK = CheckConfig(
    address_space=AddressSpaceKind.UNIFIED,
    coherence=CoherenceKind.HARDWARE_DIRECTORY,
    consistency=ConsistencyModel.WEAK,
    name="UNI/weak",
)

_PAS_OWNED = CheckConfig(
    address_space=AddressSpaceKind.PARTIALLY_SHARED,
    coherence=CoherenceKind.OWNERSHIP,
    consistency=ConsistencyModel.WEAK,
    name="PAS/ownership",
)

_DIS = CheckConfig(
    address_space=AddressSpaceKind.DISJOINT,
    coherence=CoherenceKind.NONE,
    consistency=ConsistencyModel.WEAK,
    name="DIS/pci-e",
)

_PAS_EXPLICIT = CheckConfig(
    address_space=AddressSpaceKind.PARTIALLY_SHARED,
    coherence=CoherenceKind.OWNERSHIP,
    consistency=ConsistencyModel.WEAK,
    locality=LocalityScheme.EXPLICIT_PRIVATE_EXPLICIT_SHARED,
    name="PAS/expl-shared",
)

_UNI_DECLARED = CheckConfig(
    address_space=AddressSpaceKind.UNIFIED,
    coherence=CoherenceKind.HARDWARE_SNOOP,
    consistency=ConsistencyModel.WEAK,
    name="UNI/snoop+decls",
    declared_writes=((_BASE, _BASE + 4 * _KB),),
)

_UNI_REDUCE = CheckConfig(
    address_space=AddressSpaceKind.UNIFIED,
    coherence=CoherenceKind.HARDWARE_SNOOP,
    consistency=ConsistencyModel.WEAK,
    name="UNI/snoop+reduce",
    declared_writes=(),
    reduce_ranges=((_BASE, _BASE + 4 * _KB),),
)


def all_fixtures() -> Tuple[SeededViolation, ...]:
    """Every seeded violation, at least one per rule id."""
    return (
        SeededViolation(
            name="race-write-write",
            rule="RACE001",
            trace=KernelTrace(
                name="seeded-race-ww",
                phases=(
                    _h2d(label="send"),
                    ParallelPhase(
                        label="collide",
                        cpu=_seg(ProcessingUnit.CPU, stores=8, label="cpu-writer"),
                        gpu=_seg(ProcessingUnit.GPU, stores=8, label="gpu-writer"),
                    ),
                    _d2h(label="return"),
                ),
            ),
            config=_UNI_WEAK,
            description="both PUs write the same shared range concurrently",
        ),
        SeededViolation(
            name="race-write-read",
            rule="RACE002",
            trace=KernelTrace(
                name="seeded-race-wr",
                phases=(
                    _h2d(label="send"),
                    ParallelPhase(
                        label="snoop",
                        cpu=_seg(ProcessingUnit.CPU, stores=8, label="cpu-writer"),
                        gpu=_seg(ProcessingUnit.GPU, loads=8, label="gpu-reader"),
                    ),
                    _d2h(label="return"),
                ),
            ),
            config=_UNI_WEAK,
            description="the GPU reads a range the CPU is concurrently writing",
        ),
        SeededViolation(
            name="store-buffering-exchange",
            rule="CONS001",
            trace=KernelTrace(
                name="seeded-sb",
                phases=(
                    _h2d(label="send"),
                    ParallelPhase(
                        label="flag-exchange",
                        cpu=_seg(ProcessingUnit.CPU, loads=4, stores=4, label="cpu-rw"),
                        gpu=_seg(ProcessingUnit.GPU, loads=4, stores=4, label="gpu-rw"),
                    ),
                    _d2h(label="return"),
                ),
            ),
            config=_UNI_WEAK,
            description="read+write exchange on a shared range under a weak "
            "model; the litmus executor confirms the SB outcome",
        ),
        SeededViolation(
            name="unacquired-access",
            rule="PAS001",
            trace=KernelTrace(
                name="seeded-unacquired",
                phases=(
                    ParallelPhase(
                        label="eager-kernel",
                        cpu=_seg(ProcessingUnit.CPU, loads=8, label="cpu-half"),
                        gpu=_seg(
                            ProcessingUnit.GPU, loads=8, base=_BASE + 8 * _KB, label="gpu-half"
                        ),
                    ),
                    _d2h(label="return"),
                ),
            ),
            config=_PAS_OWNED,
            description="the GPU computes before any ownership was acquired",
        ),
        SeededViolation(
            name="double-acquire",
            rule="PAS002",
            trace=KernelTrace(
                name="seeded-double-acquire",
                phases=(
                    _h2d(label="grant-1"),
                    _h2d(label="grant-2"),
                    ParallelPhase(
                        label="kernel",
                        cpu=_seg(ProcessingUnit.CPU, loads=8, label="cpu-half"),
                        gpu=_seg(
                            ProcessingUnit.GPU, loads=8, base=_BASE + 8 * _KB, label="gpu-half"
                        ),
                    ),
                    _d2h(label="return"),
                ),
            ),
            config=_PAS_OWNED,
            description="ownership granted twice with no compute in between",
        ),
        SeededViolation(
            name="release-without-acquire",
            rule="PAS003",
            trace=KernelTrace(
                name="seeded-bad-release",
                phases=(
                    _h2d(num_objects=1, label="grant"),
                    ParallelPhase(
                        label="kernel",
                        cpu=_seg(ProcessingUnit.CPU, loads=8, label="cpu-half"),
                        gpu=_seg(
                            ProcessingUnit.GPU, loads=8, base=_BASE + 8 * _KB, label="gpu-half"
                        ),
                    ),
                    _d2h(num_objects=1, label="return-1"),
                    SequentialPhase(
                        label="host-step",
                        segment=_seg(ProcessingUnit.CPU, loads=4, label="host-read"),
                    ),
                    _d2h(num_objects=1, label="return-2"),
                ),
            ),
            config=_PAS_OWNED,
            description="a second return releases objects the GPU no longer holds",
        ),
        SeededViolation(
            name="consume-before-copy",
            rule="DIS001",
            trace=KernelTrace(
                name="seeded-no-h2d",
                phases=(
                    ParallelPhase(
                        label="eager-kernel",
                        cpu=_seg(ProcessingUnit.CPU, loads=8, label="cpu-half"),
                        gpu=_seg(
                            ProcessingUnit.GPU, loads=8, base=_BASE + 8 * _KB, label="gpu-half"
                        ),
                    ),
                    _d2h(label="return"),
                ),
            ),
            config=_DIS,
            description="the GPU consumes device memory nothing ever copied into",
        ),
        SeededViolation(
            name="redundant-copy",
            rule="DIS002",
            trace=KernelTrace(
                name="seeded-double-copy",
                phases=(
                    _h2d(label="copy-1"),
                    _h2d(label="copy-2"),
                    ParallelPhase(
                        label="kernel",
                        cpu=_seg(ProcessingUnit.CPU, loads=8, label="cpu-half"),
                        gpu=_seg(
                            ProcessingUnit.GPU, loads=8, base=_BASE + 8 * _KB, label="gpu-half"
                        ),
                    ),
                    _d2h(label="return"),
                ),
            ),
            config=_DIS,
            description="the same unchanged data is copied H2D twice in a row",
        ),
        SeededViolation(
            name="stale-read",
            rule="LOC001",
            trace=KernelTrace(
                name="seeded-stale-read",
                phases=(
                    _h2d(num_objects=2, label="grant"),
                    ParallelPhase(
                        label="produce",
                        cpu=_seg(ProcessingUnit.CPU, loads=8, label="cpu-half"),
                        gpu=_seg(
                            ProcessingUnit.GPU,
                            stores=8,
                            base=_BASE + 8 * _KB,
                            label="gpu-producer",
                        ),
                    ),
                    SequentialPhase(
                        label="consume",
                        segment=_seg(
                            ProcessingUnit.CPU,
                            loads=8,
                            base=_BASE + 8 * _KB,
                            label="cpu-consumer",
                        ),
                    ),
                    _d2h(label="late-return"),
                ),
            ),
            config=_PAS_EXPLICIT,
            description="the CPU reads GPU-produced data before any push",
        ),
        SeededViolation(
            name="undeclared-write",
            rule="COH001",
            trace=KernelTrace(
                name="seeded-undeclared-write",
                phases=(
                    _h2d(label="send"),
                    ParallelPhase(
                        label="sneaky-writer",
                        cpu=_seg(ProcessingUnit.CPU, stores=8, label="declared-writer"),
                        gpu=_seg(
                            ProcessingUnit.GPU,
                            stores=8,
                            base=_BASE + 16 * _KB,
                            label="undeclared-writer",
                        ),
                    ),
                    _d2h(label="return"),
                ),
            ),
            config=_UNI_DECLARED,
            description="the GPU writes a range no access declaration covers, "
            "so the runtime leaves remote copies of it intact",
        ),
        SeededViolation(
            name="reduce-without-merge",
            rule="COH002",
            trace=KernelTrace(
                name="seeded-unmerged-reduce",
                phases=(
                    _h2d(label="send"),
                    ParallelPhase(
                        label="accumulate",
                        cpu=_seg(ProcessingUnit.CPU, stores=8, label="cpu-partials"),
                        gpu=_seg(ProcessingUnit.GPU, stores=8, label="gpu-partials"),
                    ),
                ),
            ),
            config=_UNI_REDUCE,
            description="both PUs accumulate into the reduce-declared range "
            "but the trace ends without a merge step",
        ),
        SeededViolation(
            name="dead-copy",
            rule="OPT001",
            trace=KernelTrace(
                name="seeded-dead-copy",
                phases=(
                    _h2d(label="send"),
                    ParallelPhase(
                        label="compute",
                        cpu=_seg(ProcessingUnit.CPU, loads=8, label="cpu-reader"),
                        gpu=_seg(
                            ProcessingUnit.GPU,
                            loads=4,
                            stores=4,
                            base=_BASE + 8 * _KB,
                            label="gpu-worker",
                        ),
                    ),
                    _d2h(label="return"),
                    SequentialPhase(
                        label="host-update",
                        segment=_seg(
                            ProcessingUnit.CPU, stores=8, label="host-writer"
                        ),
                    ),
                    _h2d(label="preload-unused"),
                ),
            ),
            config=_DIS,
            description="a trailing H2D delivers data no later phase ever "
            "reads; the liveness pass proves every delivered byte dead",
            optimize=True,
        ),
        SeededViolation(
            name="redundant-resend",
            rule="OPT002",
            trace=KernelTrace(
                name="seeded-kmean-resend",
                phases=(
                    _h2d(label="send-points"),
                    ParallelPhase(
                        label="assign-0",
                        cpu=_seg(ProcessingUnit.CPU, loads=8, label="cpu-assign"),
                        gpu=_seg(
                            ProcessingUnit.GPU,
                            loads=4,
                            stores=4,
                            base=_BASE + 8 * _KB,
                            label="gpu-assign",
                        ),
                    ),
                    _h2d(label="resend-points"),
                    ParallelPhase(
                        label="assign-1",
                        cpu=_seg(ProcessingUnit.CPU, loads=8, label="cpu-assign"),
                        gpu=_seg(
                            ProcessingUnit.GPU,
                            loads=4,
                            stores=4,
                            base=_BASE + 8 * _KB,
                            label="gpu-assign",
                        ),
                    ),
                    _d2h(label="return-partials"),
                ),
            ),
            config=_DIS,
            description="the k-mean resend anti-pattern: the point set is "
            "copied H2D again between iterations although nothing host-side "
            "touched it; the available-copies pass proves the copy redundant",
            optimize=True,
        ),
        _inferred_modes_fixture(),
    )


def _inferred_modes_fixture() -> SeededViolation:
    """INF001: the real k-mean kernel trace under an undeclared PAS
    config — the inference pass reconstructs the declareAccess lines the
    program admits and prices them against Table V's declared counts."""
    from repro.kernels.registry import kernel

    return SeededViolation(
        name="undeclared-modes",
        rule="INF001",
        trace=kernel("k-mean").trace(),
        config=_PAS_OWNED,
        description="the k-mean kernel admits exact access-mode "
        "declarations (points: read, partials: reduce) the program never "
        "writes; declaring them saves two communication lines under PAS",
        optimize=True,
    )


def fixture_rule_ids() -> Tuple[str, ...]:
    """The distinct rule ids the fixture suite seeds."""
    seen = []
    for fixture in all_fixtures():
        if fixture.rule not in seen:
            seen.append(fixture.rule)
    return tuple(seen)
