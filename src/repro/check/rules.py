"""The checker's rule catalog: ids, severities, and paper provenance.

Rule ids are stable API (CI greps them, ``--rule`` filters on them, and
``docs/check-rules.md`` documents them); add new rules, never renumber.
Families follow the design-space axes of the paper:

- ``RACE`` — concurrent-access races inside a parallel phase;
- ``CONS`` — hazards specific to weak consistency models (litmus-confirmed);
- ``PAS`` — ownership discipline of the partially shared space (§II-A3);
- ``DIS`` — explicit-transfer discipline of disjoint spaces (§II-A2);
- ``LOC`` — staleness under explicit locality management (§II-B);
- ``COH`` — access-mode declaration discipline when a coherent runtime
  elides transfers from the declared modes (the coherence axis);
- ``OPT`` — transfer-optimization opportunities found by the dataflow
  passes (:mod:`repro.check.passes`): dead and redundant copies. These
  never gate — they are reported only in optimize mode;
- ``INF`` — inference suggestions: declarations the program admits but
  never writes (access modes, cross-checked against Table V's declared
  communication-line counts). Optimize mode only, like ``OPT``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.check.findings import Severity
from repro.errors import ConfigError

__all__ = ["Rule", "RULES", "rule", "rule_ids"]


@dataclass(frozen=True)
class Rule:
    """Metadata for one check rule."""

    id: str
    title: str
    severity: Severity
    paper_section: str
    applies_to: str
    fix_hint: str


_RULES: Tuple[Rule, ...] = (
    Rule(
        id="RACE001",
        title="concurrent write-write overlap",
        severity=Severity.ERROR,
        paper_section="§II-A (shared address spaces), Table I",
        applies_to="any address space with a shared window (UNI/PAS/ADSM)",
        fix_hint="separate the writers with a communication phase or give the "
        "segments disjoint footprints",
    ),
    Rule(
        id="RACE002",
        title="concurrent write-read overlap",
        severity=Severity.ERROR,
        paper_section="§II-A (shared address spaces), Table I",
        applies_to="any address space with a shared window (UNI/PAS/ADSM)",
        fix_hint="move the reader after a communication phase that publishes "
        "the writer's data",
    ),
    Rule(
        id="CONS001",
        title="store-buffering hazard permitted by the weak model",
        severity=Severity.WARNING,
        paper_section="Table I consistency column; §II (weak models)",
        applies_to="weak/release consistency over a shared window",
        fix_hint="insert fences (or pick a strong-consistency design point) "
        "so both PUs observe each other's updates",
    ),
    Rule(
        id="PAS001",
        title="shared-object access without ownership",
        severity=Severity.ERROR,
        paper_section="§II-A3 (ownership control), Figure 2",
        applies_to="partially shared space with ownership control",
        fix_hint="insert an H2D transfer (releaseOwnership on the CPU + "
        "acquireOwnership on the GPU) before this phase",
    ),
    Rule(
        id="PAS002",
        title="double acquire (back-to-back ownership grants)",
        severity=Severity.WARNING,
        paper_section="§II-A3 (ownership control), Table IV api-acq cost",
        applies_to="partially shared space with ownership control",
        fix_hint="drop the second transfer or move compute between the two "
        "ownership grants",
    ),
    Rule(
        id="PAS003",
        title="release without matching acquire",
        severity=Severity.ERROR,
        paper_section="§II-A3 (ownership control), Figure 2",
        applies_to="partially shared space with ownership control",
        fix_hint="acquire the shared objects (H2D transfer) before returning "
        "them to the host",
    ),
    Rule(
        id="DIS001",
        title="kernel consumes data never copied host-to-device",
        severity=Severity.ERROR,
        paper_section="§II-A2 (disjoint spaces), Figure 3 memcpy pattern",
        applies_to="disjoint address spaces",
        fix_hint="copy the GPU's input H2D before the first parallel phase",
    ),
    Rule(
        id="DIS002",
        title="redundant back-to-back copies of unchanged data",
        severity=Severity.WARNING,
        paper_section="§II-A2 (disjoint spaces); §V-C communication overhead",
        applies_to="disjoint address spaces",
        fix_hint="drop the second copy: no compute phase touched the data "
        "between the two transfers",
    ),
    Rule(
        id="LOC001",
        title="stale read of remotely-produced data (missing push)",
        severity=Severity.ERROR,
        paper_section="§II-B (explicit locality management), push semantics",
        applies_to="design points whose shared level is explicitly managed",
        fix_hint="push (transfer) the producer's range before the remote read",
    ),
    Rule(
        id="COH001",
        title="undeclared write to coherent shared data",
        severity=Severity.ERROR,
        paper_section="Table I coherence column; declared-modes lowering",
        applies_to="shared-window spaces whose runtime elides transfers "
        "from access-mode declarations",
        fix_hint="declare the written range (declareAccess(..., write)) so "
        "the runtime invalidates or writes back remote copies",
    ),
    Rule(
        id="COH002",
        title="reduce-declared range is never merged",
        severity=Severity.ERROR,
        paper_section="Table I coherence column; declared-modes lowering",
        applies_to="shared-window spaces with reduce-declared buffers",
        fix_hint="add a merge step (a sequential phase reading the partials, "
        "or a transfer gathering them) after the parallel reduction",
    ),
    Rule(
        id="OPT001",
        title="dead transfer (destination never read)",
        severity=Severity.WARNING,
        paper_section="§V-C communication overhead; buffer-liveness pass",
        applies_to="any design point, in optimize mode",
        fix_hint="drop the transfer: no later phase reads the copy it "
        "delivers before it is overwritten or the trace ends",
    ),
    Rule(
        id="OPT002",
        title="redundant transfer (data already resident)",
        severity=Severity.WARNING,
        paper_section="§V-C communication overhead; available-copies pass",
        applies_to="any design point, in optimize mode",
        fix_hint="drop the transfer: every incoming path already left a "
        "current copy of the data in the destination space",
    ),
    Rule(
        id="INF001",
        title="inferable access-mode declarations missing",
        severity=Severity.WARNING,
        paper_section="Table V declared counts; access-mode inference pass",
        applies_to="undeclared programs on spaces where declarations elide "
        "communication lines (UNI/PAS/ADSM)",
        fix_hint="declare each shared buffer's access mode "
        "(declareAccess(read|write|reduce))",
    ),
)

RULES: Dict[str, Rule] = {r.id: r for r in _RULES}


def rule(rule_id: str) -> Rule:
    """Look up a rule by id; raises :class:`ConfigError` for unknown ids."""
    try:
        return RULES[rule_id]
    except KeyError:
        raise ConfigError(
            f"unknown check rule {rule_id!r}; known: {', '.join(RULES)}"
        ) from None


def rule_ids() -> Tuple[str, ...]:
    """All rule ids, in catalog order."""
    return tuple(RULES)
