"""A generic gen/kill dataflow solver over :class:`~repro.check.ir.AnalysisCFG`.

Facts are bitmasks over a finite universe (the IR's address atoms ×
spaces); each node's effect is a :class:`GenKill` transfer function

    ``out = gen | (in & ~kill)``

which is monotone, so worklist iteration over any monotone join —
:attr:`Join.UNION` for may-analyses, :attr:`Join.INTERSECTION` for
must-analyses — reaches the unique least (greatest) fixpoint regardless
of visit order. The hypothesis suite in
``tests/check/test_dataflow_properties.py`` pins exactly those three
guarantees: termination on random graphs, monotonicity in the gen sets,
and order-independence of the result.

:func:`solve` reports facts in *program order*: ``before[n]`` is the fact
at the node's entry and ``after[n]`` at its exit, for both forward and
backward problems (a backward pass computes ``before`` from ``after``).
Nodes with no predecessors (forward) or successors (backward) take the
problem's ``boundary`` fact.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence

from repro.check.ir import AnalysisCFG
from repro.errors import CheckError

__all__ = [
    "FlowDirection",
    "Join",
    "GenKill",
    "DataflowProblem",
    "DataflowSolution",
    "solve",
]


class FlowDirection(enum.Enum):
    """Which way facts propagate along CFG edges."""

    FORWARD = "forward"
    BACKWARD = "backward"

    def __str__(self) -> str:
        return self.value


class Join(enum.Enum):
    """How facts merge where paths meet."""

    UNION = "union"              # may-analysis: true on some path
    INTERSECTION = "intersection"  # must-analysis: true on every path

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class GenKill:
    """One node's transfer function: ``out = gen | (in & ~kill)``."""

    gen: int = 0
    kill: int = 0

    def apply(self, fact: int) -> int:
        return self.gen | (fact & ~self.kill)


@dataclass(frozen=True)
class DataflowProblem:
    """A complete problem statement for :func:`solve`.

    ``universe`` is the all-ones mask of representable facts; ``boundary``
    is the fact entering the graph (at entry nodes forward, exit nodes
    backward); ``transfers`` maps node index to its :class:`GenKill`
    (missing nodes are the identity).
    """

    direction: FlowDirection
    join: Join
    universe: int
    boundary: int = 0
    transfers: Mapping[int, GenKill] = field(default_factory=dict)

    def transfer(self, index: int) -> GenKill:
        return self.transfers.get(index, _IDENTITY)


_IDENTITY = GenKill()


@dataclass(frozen=True)
class DataflowSolution:
    """Program-order facts at every node, plus the iteration count."""

    before: Dict[int, int]
    after: Dict[int, int]
    iterations: int


def solve(
    cfg: AnalysisCFG,
    problem: DataflowProblem,
    order: Optional[Sequence[int]] = None,
) -> DataflowSolution:
    """Worklist fixpoint iteration; ``order`` seeds the initial worklist
    (any permutation of the node indices — the result is identical, which
    the property suite asserts; the default is program order forward and
    reverse program order backward)."""
    n = len(cfg)
    forward = problem.direction is FlowDirection.FORWARD
    top = 0 if problem.join is Join.UNION else problem.universe

    if order is None:
        order = list(range(n)) if forward else list(range(n - 1, -1, -1))
    elif sorted(order) != list(range(n)):
        raise CheckError(
            "worklist order must be a permutation of the node indices"
        )

    # ``inputs[n]`` is the fact flowing *into* the transfer function
    # (program-entry forward, program-exit backward); ``outputs[n]`` the
    # transferred fact.
    inputs: Dict[int, int] = {i: top for i in range(n)}
    outputs: Dict[int, int] = {}
    sources = cfg.preds if forward else cfg.succs
    dependents = cfg.succs if forward else cfg.preds
    for i in range(n):
        outputs[i] = problem.transfer(i).apply(inputs[i])

    worklist = deque(order)
    queued = [True] * n
    iterations = 0
    # A monotone bitmask framework moves each of the ``bits`` facts at a
    # node at most once per direction; anything past this bound is a
    # non-monotone transfer sneaking in.
    bits = max(1, problem.universe.bit_length())
    limit = 4 * (bits + 1) * (n + len(cfg.edges) + 1)
    while worklist:
        iterations += 1
        if iterations > limit:
            raise CheckError(
                f"dataflow solver exceeded {limit} iterations; "
                "non-monotone transfer functions?"
            )
        node = worklist.popleft()
        queued[node] = False
        incoming = sources(node)
        if incoming:
            fact = top
            for src in incoming:
                if problem.join is Join.UNION:
                    fact |= outputs[src]
                else:
                    fact &= outputs[src]
        else:
            fact = problem.boundary
        inputs[node] = fact
        new_out = problem.transfer(node).apply(fact)
        if new_out != outputs[node]:
            outputs[node] = new_out
            for dep in dependents(node):
                if not queued[dep]:
                    queued[dep] = True
                    worklist.append(dep)
    if forward:
        return DataflowSolution(
            before=inputs, after=outputs, iterations=iterations
        )
    return DataflowSolution(before=outputs, after=inputs, iterations=iterations)
