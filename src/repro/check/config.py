"""What the checker needs to know about a design point.

A :class:`CheckConfig` is the four memory-model axes that carry
correctness obligations — address space, coherence, consistency, and
(optionally) the locality scheme. It is deliberately smaller than a
:class:`~repro.core.design_point.DesignPoint` so the checker can be fed
from a case study (no locality axis), a bare address-space kind
(Figure 7's ideal-communication sweep), or a full design point alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.taxonomy import (
    AddressSpaceKind,
    CoherenceKind,
    ConsistencyModel,
    LocalityPolicy,
    LocalityScheme,
)

__all__ = ["CheckConfig"]

#: Coherence story each space gets when only the space kind is known
#: (Figure 7 checks): PAS runs its ownership protocol, ADSM its runtime,
#: a unified space is presumed hardware-coherent, disjoint needs nothing.
_DEFAULT_COHERENCE = {
    AddressSpaceKind.PARTIALLY_SHARED: CoherenceKind.OWNERSHIP,
    AddressSpaceKind.ADSM: CoherenceKind.SOFTWARE_RUNTIME,
    AddressSpaceKind.UNIFIED: CoherenceKind.HARDWARE_DIRECTORY,
    AddressSpaceKind.DISJOINT: CoherenceKind.NONE,
}


@dataclass(frozen=True)
class CheckConfig:
    """The axes of a design point that impose correctness obligations."""

    address_space: AddressSpaceKind
    coherence: CoherenceKind = CoherenceKind.NONE
    consistency: ConsistencyModel = ConsistencyModel.WEAK
    locality: Optional[LocalityScheme] = None
    name: str = ""
    #: Byte ranges (half-open ``(lo, hi)``) the program declared it writes
    #: (``declareAccess(..., write)``). ``None`` means the program carries
    #: no declarations at all, and the COH rules stay inactive.
    declared_writes: Optional[Tuple[Tuple[int, int], ...]] = None
    #: Byte ranges declared ``reduce``: per-PU partials that a later merge
    #: step combines. Concurrent writes inside one are the *intended*
    #: pattern (no RACE finding), but a missing merge is COH002.
    reduce_ranges: Optional[Tuple[Tuple[int, int], ...]] = None

    @classmethod
    def from_case_study(cls, case: "CaseStudy") -> "CheckConfig":
        """The obligations of one of the §V-A case-study systems."""
        return cls(
            address_space=case.address_space,
            coherence=case.coherence,
            consistency=case.consistency,
            name=case.name,
        )

    @classmethod
    def from_design_point(cls, point: "DesignPoint") -> "CheckConfig":
        """The obligations of a full design point (locality included)."""
        return cls(
            address_space=point.address_space,
            coherence=point.coherence,
            consistency=point.consistency,
            locality=point.locality,
            name=point.label,
        )

    @classmethod
    def from_space(cls, space: AddressSpaceKind) -> "CheckConfig":
        """Obligations implied by the space kind alone (Figure 7 sweep)."""
        return cls(
            address_space=space,
            coherence=_DEFAULT_COHERENCE[space],
            consistency=ConsistencyModel.WEAK,
            name=space.short,
        )

    @property
    def label(self) -> str:
        return self.name or self.address_space.short

    @property
    def has_shared_window(self) -> bool:
        """Whether overlapping virtual ranges can denote the same memory."""
        return self.address_space.has_shared_window

    @property
    def ownership_control(self) -> bool:
        """Whether the PAS acquire/release discipline applies (§II-A3)."""
        return (
            self.address_space is AddressSpaceKind.PARTIALLY_SHARED
            and self.coherence is CoherenceKind.OWNERSHIP
        )

    @property
    def explicit_transfers(self) -> bool:
        """Whether data must be copied between spaces before use (§II-A2)."""
        return self.address_space is AddressSpaceKind.DISJOINT

    @property
    def explicit_shared_locality(self) -> bool:
        """Whether the shared level is explicitly managed (push required)."""
        return (
            self.locality is not None
            and self.locality.shared_policy is LocalityPolicy.EXPLICIT
        )

    @property
    def has_declarations(self) -> bool:
        """Whether the program declared its access modes (COH rules active)."""
        return self.declared_writes is not None or self.reduce_ranges is not None

    @property
    def weak_consistency(self) -> bool:
        """Any model of the weak family (everything but strong, Table I)."""
        return self.consistency is not ConsistencyModel.STRONG

    def __str__(self) -> str:
        return self.label
