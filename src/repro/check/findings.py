"""Typed findings and the report the checker returns.

A :class:`Finding` pins one rule violation to a phase (and, when the rule
is segment-level, a segment) of a kernel trace; a :class:`CheckReport`
aggregates the findings of one (trace, configuration) pair and exports
them as text, JSON, or :class:`~repro.obs.metrics.MetricSnapshot` samples
so they flow through the same observability spine as every other stat.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.obs.metrics import MetricSnapshot

__all__ = ["Severity", "Finding", "CheckReport", "merge_reports"]


class Severity(enum.Enum):
    """How bad a finding is: errors gate simulation, warnings inform."""

    ERROR = "error"
    WARNING = "warning"

    @property
    def rank(self) -> int:
        """Sort key: errors first."""
        return 0 if self is Severity.ERROR else 1

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls(text.strip().lower())
        except ValueError:
            raise ConfigError(
                f"unknown severity {text!r}; use one of "
                + ", ".join(s.value for s in cls)
            ) from None

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation, located in the trace.

    ``confirmed`` carries the litmus cross-validation verdict where one was
    run: ``True`` means the operational consistency executor proved the bad
    outcome reachable under the configured model; ``None`` means the rule
    is structural and no litmus program applies.

    The optimization rules (``OPT*``) additionally estimate their payoff:
    ``bytes_saved`` is the transfer traffic dropping the flagged phase
    would remove, and ``space`` names the destination space it lands in
    (``"host"``/``"device"``); both stay zero/empty for correctness rules.
    """

    rule: str
    severity: Severity
    message: str
    trace: str
    phase_index: int
    phase_label: str = ""
    segment: str = ""
    fix_hint: str = ""
    confirmed: Optional[bool] = None
    bytes_saved: int = 0
    space: str = ""

    @property
    def location(self) -> str:
        """``trace@phase[i](label)``, with the segment when known."""
        label = f"({self.phase_label})" if self.phase_label else ""
        where = f"{self.trace}@phase[{self.phase_index}]{label}"
        if self.segment:
            where += f"/{self.segment}"
        return where

    def line(self) -> str:
        """One human-readable report line."""
        parts = [f"{self.severity.value.upper():7s} {self.rule} {self.location}: {self.message}"]
        if self.confirmed is True:
            parts.append(" [confirmed by litmus executor]")
        elif self.confirmed is False:
            parts.append(" [not reproducible under this model]")
        if self.fix_hint:
            parts.append(f" (fix: {self.fix_hint})")
        return "".join(parts)

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "trace": self.trace,
            "phase_index": self.phase_index,
            "phase_label": self.phase_label,
            "segment": self.segment,
            "fix_hint": self.fix_hint,
            "confirmed": self.confirmed,
            "bytes_saved": self.bytes_saved,
            "space": self.space,
        }


@dataclass(frozen=True)
class CheckReport:
    """Findings of one trace under one configuration, sorted errors-first."""

    trace: str
    config: str
    findings: Tuple[Finding, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(
                self.findings,
                key=lambda f: (f.severity.rank, f.phase_index, f.rule),
            )
        )
        object.__setattr__(self, "findings", ordered)

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.ERROR)

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.WARNING)

    @property
    def ok(self) -> bool:
        return not self.findings

    def filtered(
        self,
        rule: Optional[str] = None,
        severity: Optional[Severity] = None,
    ) -> "CheckReport":
        """A report keeping only findings matching the filters."""
        kept = tuple(
            f
            for f in self.findings
            if (rule is None or f.rule == rule)
            and (severity is None or f.severity is severity)
        )
        return CheckReport(trace=self.trace, config=self.config, findings=kept)

    def format_text(self) -> str:
        """The CLI's per-pair block: a headline plus one line per finding."""
        status = "ok" if self.ok else (
            f"{len(self.findings)} finding{'s' if len(self.findings) != 1 else ''} "
            f"({self.errors} errors, {self.warnings} warnings)"
        )
        lines = [f"{self.trace} x {self.config}: {status}"]
        lines.extend(f"  {f.line()}" for f in self.findings)
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        """JSON-facing form, byte-stable across runs: findings are emitted
        in (rule, phase_index, segment) order — a total order independent
        of discovery order — so exported reports diff cleanly in CI."""
        serialized = sorted(
            self.findings, key=lambda f: (f.rule, f.phase_index, f.segment)
        )
        return {
            "trace": self.trace,
            "config": self.config,
            "errors": self.errors,
            "warnings": self.warnings,
            "findings": [f.as_dict() for f in serialized],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def to_metrics(self) -> MetricSnapshot:
        """``check.*`` samples: totals plus a per-rule breakdown."""
        samples: Dict[str, float] = {
            "check.findings": float(len(self.findings)),
            "check.errors": float(self.errors),
            "check.warnings": float(self.warnings),
        }
        for finding in self.findings:
            key = f"check.rule.{finding.rule}"
            samples[key] = samples.get(key, 0.0) + 1.0
            if finding.bytes_saved:
                saved = f"check.opt.bytes_saved.{finding.space or 'unknown'}"
                samples[saved] = samples.get(saved, 0.0) + float(
                    finding.bytes_saved
                )
        return MetricSnapshot(samples)


def merge_reports(reports: Sequence[CheckReport]) -> MetricSnapshot:
    """One flat metrics sample set over a batch of reports."""
    merged = MetricSnapshot(
        {"check.findings": 0.0, "check.errors": 0.0, "check.warnings": 0.0}
    )
    for report in reports:
        merged = merged.merged(report.to_metrics())
    return merged
