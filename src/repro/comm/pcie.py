"""Synchronous PCI-E memcpy (the ``api-pci`` special instruction).

Table IV: latency = 33250 cycles + bytes / 16 GB/s (PCI-E 2.0). The whole
cost is exposed — the CUDA-style ``Memcpy`` of Figure 3(a) blocks.
"""

from __future__ import annotations

from repro.comm.base import CommChannel, TransferResult
from repro.taxonomy import CommMechanism
from repro.trace.phase import CommPhase

__all__ = ["PcieChannel"]


class PcieChannel(CommChannel):
    """Blocking PCI-E copies, one ``api-pci`` per communication phase."""

    mechanism = CommMechanism.PCIE

    def _timing(self, phase: CommPhase, overlap_window: float) -> TransferResult:
        seconds = self.params.api_pci_seconds(phase.num_bytes)
        return TransferResult(total=seconds, exposed=seconds)
