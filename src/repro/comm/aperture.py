"""The LRB PCI-aperture channel (paper §V-A).

"For LRB, if data is already located in the shared address space,
transferring is not required. It still has the overhead of communication
when data is initially transferred from CPUs. It also generates page faults
if data in the shared space is first-time accessed."

Cost model per communication phase:

- one ownership action (``api-acq``, 1000 cycles) always — the
  release-on-one-side/acquire-on-the-other handshake is a single action in
  Table IV's accounting;
- one data-transfer call (``api-tr``, 7000 cycles) per object moved into
  the window (host-to-device direction only: device-to-host data is
  already in the shared space);
- first-touch faults (``lib-pf``, 42000 cycles): by default one per data
  *object* (the runtime maps the whole object when its first page faults,
  as GMAC-style runtimes do); set ``fault_granularity="page"`` for a
  naive per-page runtime — the ablation benchmark sweeps both.
"""

from __future__ import annotations

from repro.comm.base import CommChannel, TransferResult
from repro.config.comm import CommParams
from repro.errors import CommunicationError
from repro.taxonomy import CommMechanism
from repro.trace.phase import CommPhase, Direction
from repro.units import ceil_div

__all__ = ["ApertureChannel"]


class ApertureChannel(CommChannel):
    """Partially shared window over a PCI aperture with ownership."""

    mechanism = CommMechanism.PCI_APERTURE

    def __init__(
        self,
        params: "CommParams | None" = None,
        page_bytes: int = 4096,
        fault_granularity: str = "object",
    ) -> None:
        super().__init__(params)
        if page_bytes <= 0 or page_bytes & (page_bytes - 1):
            raise CommunicationError("page size must be a positive power of two")
        if fault_granularity not in ("object", "page"):
            raise CommunicationError(
                f"fault_granularity must be 'object' or 'page', got {fault_granularity!r}"
            )
        self.page_bytes = page_bytes
        self.fault_granularity = fault_granularity
        self._page_faults = self.metrics.counter(
            "page_faults", unit="faults", description="first-touch faults in the window"
        )
        self._ownership_actions = self.metrics.counter(
            "ownership_actions", unit="actions", description="acquire/release handshakes"
        )
        self._transfer_calls = self.metrics.counter(
            "transfer_calls", unit="calls", description="api-tr calls issued"
        )

    def _timing(self, phase: CommPhase, overlap_window: float) -> TransferResult:
        cycles = self.params.api_acq_cycles
        self._ownership_actions.inc()
        if phase.direction is Direction.H2D:
            cycles += phase.num_objects * self.params.api_tr_cycles
            self._transfer_calls.inc(phase.num_objects)
            if phase.first_touch and phase.num_bytes > 0:
                if self.fault_granularity == "object":
                    faults = phase.num_objects
                else:
                    faults = ceil_div(phase.num_bytes, self.page_bytes)
                cycles += faults * self.params.lib_pf_cycles
                self._page_faults.inc(faults)
        seconds = self.params.cpu_frequency.cycles_to_seconds(cycles)
        return TransferResult(total=seconds, exposed=seconds)

    @property
    def page_faults(self) -> int:
        return self._page_faults.value

    @property
    def ownership_actions(self) -> int:
        return self._ownership_actions.value

    @property
    def transfer_calls(self) -> int:
        return self._transfer_calls.value
