"""Hardware communication mechanisms between PUs.

One channel class per mechanism the paper discusses (Table I's connection
column and the §V-A case studies):

- :class:`~repro.comm.pcie.PcieChannel` — synchronous PCI-E memcpy
  (``api-pci``: 33250 cycles + bytes / 16 GB/s);
- :class:`~repro.comm.aperture.ApertureChannel` — LRB's PCI-aperture
  shared window (``api-acq``/``api-tr``/``lib-pf``);
- :class:`~repro.comm.dma.AsyncDmaChannel` — GMAC's asynchronous copies
  that overlap computation;
- :class:`~repro.comm.memctrl.MemCtrlChannel` — Fusion's path through the
  memory controllers (transfers become DRAM traffic);
- :class:`~repro.comm.interconnect.InterconnectChannel` — an on-chip
  network between PUs;
- :class:`~repro.comm.base.IdealChannel` — zero-cost (IDEAL-HETERO).

All channels consume a :class:`repro.trace.CommPhase` and return a
:class:`~repro.comm.base.TransferResult` splitting total time into exposed
(critical-path) and overlapped parts.
"""

from repro.comm.base import CommChannel, IdealChannel, TransferResult, make_channel
from repro.comm.pcie import PcieChannel
from repro.comm.aperture import ApertureChannel
from repro.comm.dma import AsyncDmaChannel
from repro.comm.memctrl import MemCtrlChannel
from repro.comm.interconnect import InterconnectChannel

__all__ = [
    "CommChannel",
    "TransferResult",
    "IdealChannel",
    "PcieChannel",
    "ApertureChannel",
    "AsyncDmaChannel",
    "MemCtrlChannel",
    "InterconnectChannel",
    "make_channel",
]
