"""Asynchronous DMA copies over PCI-E (GMAC, paper §V-A).

"For GMAC, asynchronous copies are performed during computation, so the
communication cost can be easily hidden." The copy still takes full PCI-E
time, but only the part that does not fit under the adjacent computation
window — plus the unhideable initiation latency — lands on the critical
path.
"""

from __future__ import annotations

from repro.comm.base import CommChannel, TransferResult
from repro.taxonomy import CommMechanism
from repro.trace.phase import CommPhase

__all__ = ["AsyncDmaChannel"]


class AsyncDmaChannel(CommChannel):
    """PCI-E with copy/compute overlap."""

    mechanism = CommMechanism.DMA_ASYNC

    def _timing(self, phase: CommPhase, overlap_window: float) -> TransferResult:
        total = self.params.api_pci_seconds(phase.num_bytes)
        initiation = self.params.cpu_frequency.cycles_to_seconds(
            self.params.api_pci_base_cycles
        )
        hideable = total - initiation
        exposed = initiation + max(0.0, hideable - overlap_window)
        return TransferResult(total=total, exposed=exposed)
