"""Communication over an on-chip interconnection network.

The connection used by COMIC, Rigel, and IBM Cell in Table I: PUs exchange
data as messages on the on-chip network, paying per-hop latency plus link
serialization — cheaper than DRAM round trips for small transfers and far
cheaper than PCI-E for everything.
"""

from __future__ import annotations

from repro.comm.base import CommChannel, TransferResult
from repro.config.comm import CommParams
from repro.config.system import SystemConfig
from repro.taxonomy import CommMechanism
from repro.trace.phase import CommPhase
from repro.units import ceil_div

__all__ = ["InterconnectChannel"]

#: Hops between the two PUs' ring stops in the baseline floorplan.
PU_TO_PU_HOPS = 2


class InterconnectChannel(CommChannel):
    """Message-passing transfers on the ring-bus network."""

    mechanism = CommMechanism.INTERCONNECT

    def __init__(
        self,
        params: "CommParams | None" = None,
        system: "SystemConfig | None" = None,
    ) -> None:
        super().__init__(params)
        self.system = system or SystemConfig()
        self._messages = self.metrics.counter(
            "messages", unit="messages", description="on-chip network messages"
        )

    def _timing(self, phase: CommPhase, overlap_window: float) -> TransferResult:
        icn = self.system.interconnect
        hop_cycles = PU_TO_PU_HOPS * icn.hop_latency
        ser_cycles = ceil_div(max(phase.num_bytes, 1), icn.link_bytes_per_cycle)
        self._messages.inc()
        seconds = icn.frequency.cycles_to_seconds(hop_cycles + ser_cycles)
        return TransferResult(total=seconds, exposed=seconds)

    @property
    def messages(self) -> int:
        return self._messages.value
