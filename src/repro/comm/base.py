"""Communication-channel interface and the ideal (zero-cost) channel."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional

from repro.config.comm import CommParams
from repro.config.system import SystemConfig
from repro.errors import CommunicationError
from repro.obs.metrics import MetricRegistry
from repro.taxonomy import CommMechanism
from repro.trace.phase import CommPhase

__all__ = ["TransferResult", "CommChannel", "IdealChannel", "make_channel"]


@dataclass(frozen=True)
class TransferResult:
    """Timing of one inter-PU transfer.

    ``exposed`` is the part on the critical path; ``overlapped`` was hidden
    under computation (asynchronous mechanisms). ``total = exposed +
    overlapped`` always holds.
    """

    total: float
    exposed: float

    def __post_init__(self) -> None:
        if self.total < 0 or self.exposed < 0:
            raise CommunicationError("transfer times must be non-negative")
        if self.exposed > self.total + 1e-12:
            raise CommunicationError("exposed time cannot exceed total time")

    @property
    def overlapped(self) -> float:
        return self.total - self.exposed


class CommChannel(abc.ABC):
    """A mechanism for moving a :class:`CommPhase`'s data between PUs."""

    mechanism: CommMechanism

    def __init__(self, params: Optional[CommParams] = None) -> None:
        self.params = params or CommParams()
        mechanism = getattr(self, "mechanism", None)
        self.metrics = MetricRegistry(f"comm.{mechanism}" if mechanism else "comm")
        self._transfers = self.metrics.counter(
            "transfers", unit="transfers", description="communication phases serviced"
        )
        self._bytes_moved = self.metrics.counter(
            "bytes_moved", unit="bytes", description="payload bytes transferred"
        )
        self._total_seconds = self.metrics.counter(
            "total_seconds", unit="s", description="total transfer time (incl. hidden)"
        )
        self._exposed_seconds = self.metrics.counter(
            "exposed_seconds", unit="s", description="transfer time on the critical path"
        )

    @abc.abstractmethod
    def _timing(self, phase: CommPhase, overlap_window: float) -> TransferResult:
        """Mechanism-specific cost model."""

    def transfer(self, phase: CommPhase, overlap_window: float = 0.0) -> TransferResult:
        """Move one communication phase's data.

        ``overlap_window`` is the amount of adjacent computation time an
        asynchronous mechanism could hide the copy under; synchronous
        mechanisms ignore it.
        """
        if overlap_window < 0:
            raise CommunicationError("overlap window must be non-negative")
        result = self._timing(phase, overlap_window)
        self._transfers.inc()
        self._bytes_moved.inc(phase.num_bytes)
        self._total_seconds.inc(result.total)
        self._exposed_seconds.inc(result.exposed)
        return result

    @property
    def transfers(self) -> int:
        return self._transfers.value

    @property
    def bytes_moved(self) -> int:
        return self._bytes_moved.value

    @property
    def total_seconds(self) -> float:
        return self._total_seconds.value

    @property
    def exposed_seconds(self) -> float:
        return self._exposed_seconds.value

    def stats(self) -> Dict[str, float]:
        """Every declared metric, including subclass-specific counters."""
        return self.metrics.as_dict()

    def reset_stats(self) -> None:
        self.metrics.reset()


class IdealChannel(CommChannel):
    """Zero-cost communication: the IDEAL-HETERO upper bound."""

    mechanism = CommMechanism.IDEAL

    def _timing(self, phase: CommPhase, overlap_window: float) -> TransferResult:
        return TransferResult(total=0.0, exposed=0.0)


def make_channel(
    mechanism: CommMechanism,
    params: Optional[CommParams] = None,
    system: Optional[SystemConfig] = None,
    async_overlap: bool = False,
) -> CommChannel:
    """Build the channel for a mechanism.

    ``async_overlap`` upgrades a PCI-E channel to the asynchronous DMA
    variant (GMAC).
    """
    from repro.comm.aperture import ApertureChannel
    from repro.comm.dma import AsyncDmaChannel
    from repro.comm.interconnect import InterconnectChannel
    from repro.comm.memctrl import MemCtrlChannel
    from repro.comm.pcie import PcieChannel

    system = system or SystemConfig()
    if mechanism is CommMechanism.IDEAL:
        return IdealChannel(params)
    if mechanism is CommMechanism.PCIE:
        if async_overlap:
            return AsyncDmaChannel(params)
        return PcieChannel(params)
    if mechanism is CommMechanism.DMA_ASYNC:
        return AsyncDmaChannel(params)
    if mechanism is CommMechanism.PCI_APERTURE:
        return ApertureChannel(params, page_bytes=system.page_bytes_cpu)
    if mechanism is CommMechanism.MEMORY_CONTROLLER:
        return MemCtrlChannel(params, system=system)
    if mechanism is CommMechanism.INTERCONNECT:
        return InterconnectChannel(params, system=system)
    raise CommunicationError(f"no channel model for mechanism {mechanism}")
