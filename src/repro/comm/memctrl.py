"""Communication through the memory controllers (Fusion, paper §V-A).

"For Fusion, the communication is through memory controllers, so it
generates memory accesses for all data transfer between CPUs and GPUs.
However, the memory access cost is also very small compared to that of
PCI-e." There is no copy over an external link: the consumer reads the
producer's data through shared DRAM, so the communication cost is the
DRAM traffic for the transferred bytes plus a small driver/doorbell
overhead.
"""

from __future__ import annotations

from repro.comm.base import CommChannel, TransferResult
from repro.config.comm import CommParams
from repro.config.system import SystemConfig
from repro.taxonomy import CommMechanism
from repro.trace.phase import CommPhase

__all__ = ["MemCtrlChannel"]

#: Doorbell/driver handshake cost, in CPU cycles. Far below any Table IV
#: API cost: this is an on-chip signal, not a runtime call.
SIGNAL_CYCLES = 200


class MemCtrlChannel(CommChannel):
    """Zero-copy transfers as DRAM traffic."""

    mechanism = CommMechanism.MEMORY_CONTROLLER

    def __init__(
        self,
        params: "CommParams | None" = None,
        system: "SystemConfig | None" = None,
    ) -> None:
        super().__init__(params)
        self.system = system or SystemConfig()
        self._dram_accesses = self.metrics.counter(
            "dram_accesses", unit="accesses", description="line-sized DRAM transfers"
        )

    def _timing(self, phase: CommPhase, overlap_window: float) -> TransferResult:
        dram = self.system.dram
        traffic_seconds = dram.bandwidth.seconds_for(phase.num_bytes)
        signal_seconds = self.params.cpu_frequency.cycles_to_seconds(SIGNAL_CYCLES)
        self._dram_accesses.inc(max(phase.num_bytes // 64, 1))
        seconds = traffic_seconds + signal_seconds
        return TransferResult(total=seconds, exposed=seconds)

    @property
    def dram_accesses(self) -> int:
        return self._dram_accesses.value
