"""Typed metrics and the registry that snapshots, diffs, and serializes them.

Components declare their statistics once, with a name, unit, and
description::

    registry = MetricRegistry("cache.l1d")
    hits = registry.counter("hits", unit="accesses", description="demand hits")
    hits.inc()

and every consumer — CLI exports, parity tests, the metrics-diff report —
reads the same :class:`MetricSnapshot` instead of poking at per-component
dicts. Increments stay a single attribute addition, so registry-backed
counters are cheap enough for the detailed simulator's per-access hot path.
"""

from __future__ import annotations

import csv
import io
import json
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.errors import ConfigError

__all__ = [
    "Metric",
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricRegistry",
    "MetricSnapshot",
    "write_metrics_csv",
    "write_metrics_json",
]


class Metric:
    """A named, typed statistic with a unit and a description."""

    kind = "metric"
    __slots__ = ("name", "unit", "description")

    def __init__(self, name: str, unit: str = "", description: str = "") -> None:
        if not name:
            raise ConfigError("metric name must be non-empty")
        self.name = name
        self.unit = unit
        self.description = description

    def values(self) -> Dict[str, float]:
        """The metric's exported samples, keyed by sample name.

        A scalar metric exports one sample under its own name; composite
        metrics (histograms, timers) export several suffixed samples.
        """
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        samples = ", ".join(f"{k}={v}" for k, v in self.values().items())
        return f"<{type(self).__name__} {samples}>"


class Counter(Metric):
    """A monotonically increasing count (events, bytes, accesses)."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, name: str, unit: str = "", description: str = "") -> None:
        super().__init__(name, unit, description)
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ConfigError(f"counter {self.name} cannot decrease")
        self.value += amount

    def values(self) -> Dict[str, float]:
        return {self.name: self.value}

    def reset(self) -> None:
        self.value = 0


class Gauge(Metric):
    """A point-in-time level that can move both ways (queue depth, budget)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self, name: str, unit: str = "", description: str = "") -> None:
        super().__init__(name, unit, description)
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount

    def values(self) -> Dict[str, float]:
        return {self.name: self.value}

    def reset(self) -> None:
        self.value = 0.0


class Histogram(Metric):
    """A distribution summary: count, sum, min, max, mean.

    Kept deliberately bucket-free so a per-request ``observe`` stays a
    handful of float operations — cheap enough for DRAM queueing delays in
    the detailed simulator's inner loop.
    """

    kind = "histogram"
    __slots__ = ("count", "total", "min", "max")

    def __init__(self, name: str, unit: str = "", description: str = "") -> None:
        super().__init__(name, unit, description)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def values(self) -> Dict[str, float]:
        return {
            f"{self.name}.count": self.count,
            f"{self.name}.sum": self.total,
            f"{self.name}.min": self.min if self.min is not None else 0.0,
            f"{self.name}.max": self.max if self.max is not None else 0.0,
            f"{self.name}.mean": self.mean,
        }

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None


class Timer(Metric):
    """Accumulated wall-clock time, usable as a context manager.

    Repeated timings of the same name accumulate; ``seconds`` is the total.
    """

    kind = "timer"
    __slots__ = ("count", "seconds")

    def __init__(self, name: str, unit: str = "s", description: str = "") -> None:
        super().__init__(name, unit, description)
        self.count = 0
        self.seconds = 0.0

    @contextmanager
    def time(self) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(time.perf_counter() - start)

    def record(self, seconds: float) -> None:
        self.count += 1
        self.seconds += seconds

    def values(self) -> Dict[str, float]:
        return {self.name: self.seconds, f"{self.name}.count": self.count}

    def reset(self) -> None:
        self.count = 0
        self.seconds = 0.0


class MetricSnapshot(Mapping[str, float]):
    """An immutable, hashable point-in-time view of metric samples.

    Behaves like a read-only mapping (so existing ``stats()['hits']``
    consumers keep working), compares equal to plain dicts with the same
    items, and adds :meth:`diff`, :meth:`to_json`, and :meth:`to_csv`.
    Immutability is what lets a :class:`~repro.sim.results.SimulationResult`
    stay frozen-hashable while carrying counters across result-cache hits.
    """

    __slots__ = ("_items", "_index", "_hash")

    def __init__(self, samples: Optional[Mapping[str, float]] = None) -> None:
        items = tuple(sorted((samples or {}).items()))
        object.__setattr__(self, "_items", items)
        object.__setattr__(self, "_index", dict(items))
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("MetricSnapshot is immutable")

    def __reduce__(self) -> "tuple[type, tuple[Dict[str, float]]]":
        # Slots + blocked __setattr__ break default pickling; rebuild
        # through the constructor (results cross process-pool boundaries).
        return (MetricSnapshot, (dict(self._items),))

    def __getitem__(self, key: str) -> float:
        return self._index[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._index)

    def __len__(self) -> int:
        return len(self._items)

    def __hash__(self) -> int:
        if self._hash is None:
            object.__setattr__(self, "_hash", hash(self._items))
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MetricSnapshot):
            return self._items == other._items
        if isinstance(other, Mapping):
            return dict(self._items) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"MetricSnapshot({dict(self._items)!r})"

    def diff(self, before: "Mapping[str, float]") -> "MetricSnapshot":
        """Per-sample delta ``self - before`` over the union of names."""
        deltas = {
            name: self.get(name, 0.0) - before.get(name, 0.0)
            for name in set(self) | set(before)
        }
        return MetricSnapshot(deltas)

    def prefixed(self, prefix: str) -> "MetricSnapshot":
        """A copy with every sample name prefixed (component scoping)."""
        return MetricSnapshot({f"{prefix}{name}": v for name, v in self.items()})

    def merged(self, other: "Mapping[str, float]") -> "MetricSnapshot":
        """Union of two snapshots; colliding names sum."""
        merged = dict(self._items)
        for name, value in other.items():
            merged[name] = merged.get(name, 0.0) + value
        return MetricSnapshot(merged)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(dict(self._items), indent=indent, sort_keys=True)

    def to_csv(self) -> str:
        """``metric,value`` rows with a header line."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["metric", "value"])
        for name, value in self._items:
            writer.writerow([name, value])
        return buffer.getvalue()


class MetricRegistry:
    """The declared metrics of one component (or an aggregation of many)."""

    def __init__(self, component: str = "") -> None:
        self.component = component
        self._metrics: "Dict[str, Metric]" = {}

    # -- declaration -------------------------------------------------------

    def register(self, metric: Metric) -> Metric:
        if metric.name in self._metrics:
            raise ConfigError(
                f"metric {metric.name!r} already declared on {self.component!r}"
            )
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, unit: str = "", description: str = "") -> Counter:
        return self.register(Counter(name, unit, description))  # type: ignore[return-value]

    def gauge(self, name: str, unit: str = "", description: str = "") -> Gauge:
        return self.register(Gauge(name, unit, description))  # type: ignore[return-value]

    def histogram(self, name: str, unit: str = "", description: str = "") -> Histogram:
        return self.register(Histogram(name, unit, description))  # type: ignore[return-value]

    def timer(self, name: str, unit: str = "s", description: str = "") -> Timer:
        return self.register(Timer(name, unit, description))  # type: ignore[return-value]

    # -- access ------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str) -> Metric:
        return self._metrics[name]

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    # -- snapshot / reset / serialize ---------------------------------------

    def as_dict(self) -> Dict[str, float]:
        """Flat ``{sample name: value}`` of every declared metric."""
        data: Dict[str, float] = {}
        for metric in self._metrics.values():
            data.update(metric.values())
        return data

    def snapshot(self) -> MetricSnapshot:
        return MetricSnapshot(self.as_dict())

    def reset(self) -> None:
        for metric in self._metrics.values():
            metric.reset()

    def describe(self) -> List[Tuple[str, str, str, str]]:
        """``(name, kind, unit, description)`` rows for documentation/export."""
        return [
            (m.name, m.kind, m.unit, m.description) for m in self._metrics.values()
        ]


def write_metrics_json(path: str, samples: Mapping[str, float]) -> str:
    """Write a flat metrics mapping as sorted JSON; returns the path."""
    snapshot = samples if isinstance(samples, MetricSnapshot) else MetricSnapshot(samples)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(snapshot.to_json(indent=2))
        handle.write("\n")
    return path


def write_metrics_csv(path: str, samples: Mapping[str, float]) -> str:
    """Write a flat metrics mapping as ``metric,value`` CSV; returns the path."""
    snapshot = samples if isinstance(samples, MetricSnapshot) else MetricSnapshot(samples)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(snapshot.to_csv())
    return path
