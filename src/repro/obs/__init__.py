"""Unified observability spine: metrics, tracing, and structured logging.

Every component that used to keep an ad-hoc ``stats()`` dict now *declares*
typed metrics (:class:`Counter`, :class:`Gauge`, :class:`Histogram`,
:class:`Timer`) on a :class:`MetricRegistry`; the registry snapshots,
diffs, resets, and serializes them uniformly. A lightweight
:class:`Tracer` records spans and counter samples per clock-domain track
and emits Chrome ``trace_event`` JSON that loads directly in Perfetto;
:data:`NULL_TRACER` makes the disabled path near-zero overhead.

The three sub-modules:

- :mod:`repro.obs.metrics` — typed metric declarations and snapshots;
- :mod:`repro.obs.tracing` — span/event tracer + Chrome trace export;
- :mod:`repro.obs.log` — structured :mod:`logging` helpers replacing
  bare prints in library code.
"""

from repro.obs.log import configure_logging, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricRegistry,
    MetricSnapshot,
    Timer,
    write_metrics_csv,
    write_metrics_json,
)
from repro.obs.tracing import (
    NULL_TRACER,
    TraceEvent,
    Tracer,
    trace_from_results,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricRegistry",
    "MetricSnapshot",
    "Timer",
    "write_metrics_csv",
    "write_metrics_json",
    "Tracer",
    "TraceEvent",
    "NULL_TRACER",
    "trace_from_results",
    "get_logger",
    "configure_logging",
]
