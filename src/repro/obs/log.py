"""Structured logging for library code and the CLI.

Library modules report progress through ``get_logger(__name__)`` instead
of bare ``print()``; nothing is emitted unless a handler is installed, so
importing the library stays silent. The CLI installs a stdout handler via
:func:`configure_logging` with a verbosity knob:

- ``-1`` (``--quiet``): errors only;
- ``0`` (default): info — status lines like ``[run] ...`` / ``wrote ...``;
- ``1`` (``-v``): library debug detail (runner fallbacks, cache traffic).

The handler writes plain messages to *stdout* (status output is part of
the CLI contract and tests capture it there); the format adds no prefix so
default CLI output stays byte-identical to the historical ``print()``s.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

__all__ = ["get_logger", "configure_logging", "ROOT_LOGGER_NAME"]

ROOT_LOGGER_NAME = "repro"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """The library logger for ``name`` (a module path or component name)."""
    if not name or name == ROOT_LOGGER_NAME:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name.startswith(f"{ROOT_LOGGER_NAME}."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure_logging(verbosity: int = 0, stream=None) -> logging.Logger:
    """Install (or replace) the CLI handler on the ``repro`` logger.

    Safe to call once per CLI invocation: existing handlers are replaced,
    so repeated in-process ``main()`` calls (tests) never write to a stale
    captured stream.
    """
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stdout)
    handler.setFormatter(logging.Formatter("%(message)s"))
    logger.addHandler(handler)
    if verbosity < 0:
        logger.setLevel(logging.ERROR)
    elif verbosity == 0:
        logger.setLevel(logging.INFO)
    else:
        logger.setLevel(logging.DEBUG)
    logger.propagate = False
    return logger
