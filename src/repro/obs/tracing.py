"""Span/event tracing with Chrome ``trace_event`` JSON export.

A :class:`Tracer` records *complete* spans ('X'), instants ('i'), and
counter samples ('C') onto named tracks. A track is a ``(process,
thread)`` pair — one process per simulation run (or the exploration
runtime), one thread per clock domain (CPU core, GPU core, L3, ring, DRAM
channels, comm link, DMA engine) — so the export opens directly in
Perfetto / ``chrome://tracing`` with each domain on its own row.

Timestamps are microseconds. Simulators pass *simulated* time; the
exploration runtime passes wall-clock time relative to the tracer's epoch
(the two live in different processes/tracks, so mixing units per track is
fine — Chrome traces have no global unit).

The disabled path is near-zero overhead: every emit method returns after a
single ``self.enabled`` check, and hot callers can guard on the public
``enabled`` flag to skip argument construction entirely.
:data:`NULL_TRACER` is the shared disabled instance.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = ["TraceEvent", "Tracer", "NULL_TRACER", "trace_from_results"]

#: A Chrome trace event is just its JSON dict.
TraceEvent = Dict[str, object]


class Tracer:
    """Collects trace events; serializes to Chrome ``trace_event`` JSON."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: List[TraceEvent] = []
        self._tracks: Dict[Tuple[str, str], Tuple[int, int]] = {}
        self._pids: Dict[str, int] = {}
        self._epoch = time.perf_counter()

    # -- track management ---------------------------------------------------

    def track(self, process: str, thread: str) -> Tuple[int, int]:
        """The ``(pid, tid)`` for a track, creating it (and its metadata
        naming events) on first use."""
        key = (process, thread)
        ids = self._tracks.get(key)
        if ids is not None:
            return ids
        pid = self._pids.get(process)
        if pid is None:
            pid = len(self._pids) + 1
            self._pids[process] = pid
            self._events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "ts": 0,
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": process},
                }
            )
        tid = sum(1 for (p, _t) in self._tracks if p == process) + 1
        self._tracks[key] = (pid, tid)
        self._events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": tid,
                "args": {"name": thread},
            }
        )
        return pid, tid

    @property
    def track_count(self) -> int:
        """Distinct (process, thread) tracks created so far."""
        return len(self._tracks)

    # -- emission -----------------------------------------------------------

    def complete(
        self,
        process: str,
        thread: str,
        name: str,
        start_us: float,
        duration_us: float,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """A complete span ('X'): ``duration_us`` starting at ``start_us``."""
        if not self.enabled:
            return
        pid, tid = self.track(process, thread)
        event: TraceEvent = {
            "name": name,
            "ph": "X",
            "ts": start_us,
            "dur": duration_us,
            "pid": pid,
            "tid": tid,
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def instant(
        self,
        process: str,
        thread: str,
        name: str,
        ts_us: float,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        if not self.enabled:
            return
        pid, tid = self.track(process, thread)
        event: TraceEvent = {
            "name": name,
            "ph": "i",
            "ts": ts_us,
            "s": "t",
            "pid": pid,
            "tid": tid,
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def counter(
        self,
        process: str,
        thread: str,
        name: str,
        ts_us: float,
        values: Dict[str, float],
    ) -> None:
        """A counter sample ('C') — renders as a counter track in Perfetto."""
        if not self.enabled:
            return
        pid, tid = self.track(process, thread)
        self._events.append(
            {
                "name": name,
                "ph": "C",
                "ts": ts_us,
                "pid": pid,
                "tid": tid,
                "args": dict(values),
            }
        )

    @contextmanager
    def span(
        self,
        process: str,
        thread: str,
        name: str,
        args: Optional[Dict[str, object]] = None,
    ) -> Iterator[None]:
        """Wall-clock span relative to the tracer's epoch."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            end = time.perf_counter()
            self.complete(
                process,
                thread,
                name,
                start_us=(start - self._epoch) * 1e6,
                duration_us=(end - start) * 1e6,
                args=args,
            )

    # -- export -------------------------------------------------------------

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def to_chrome(self) -> Dict[str, object]:
        """The Chrome ``trace_event`` JSON object (Perfetto-loadable)."""
        return {"traceEvents": list(self._events), "displayTimeUnit": "ms"}

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_chrome(), indent=indent)

    def write(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")
        return path

    def clear(self) -> None:
        self._events.clear()
        self._tracks.clear()
        self._pids.clear()


#: The shared disabled tracer: every emit method is a single-flag no-op.
NULL_TRACER = Tracer(enabled=False)


def trace_from_results(
    results: Iterable["SimulationResult"],  # noqa: F821 - circular-import hint only
    run_stats: Optional["RunStats"] = None,  # noqa: F821
    tracer: Optional[Tracer] = None,
) -> Tracer:
    """Synthesize a per-clock-domain trace from finished simulation results.

    Parallel exploration runs simulate in worker processes, where live
    tracer state cannot be captured; every :class:`SimulationResult`
    already carries its full per-phase timeline, so the trace is rebuilt
    losslessly after the fact. One Chrome *process* per run (named
    ``kernel @ system``), one *thread* per clock domain, spans in
    simulated microseconds. ``run_stats`` adds an ``exploration-runtime``
    process with the wall-clock stage timers.
    """
    tracer = tracer or Tracer()
    for result in results:
        process = f"{result.kernel} @ {result.system}"
        now_us = 0.0
        for phase in result.phases:
            dur_us = phase.seconds * 1e6
            if phase.kind == "sequential":
                tracer.complete(process, "cpu-core", phase.label, now_us, dur_us)
            elif phase.kind == "parallel":
                tracer.complete(
                    process, "cpu-core", phase.label, now_us, phase.cpu_seconds * 1e6
                )
                tracer.complete(
                    process, "gpu-core", phase.label, now_us, phase.gpu_seconds * 1e6
                )
            else:
                tracer.complete(
                    process,
                    "comm-link",
                    phase.label,
                    now_us,
                    dur_us,
                    args={"overlapped_us": phase.overlapped_seconds * 1e6},
                )
            now_us += dur_us
        if result.counters:
            tracer.counter(
                process,
                "comm-link",
                "counters",
                now_us,
                {k: v for k, v in result.counters.items() if isinstance(v, (int, float))},
            )
    if run_stats is not None:
        now_us = 0.0
        for stage, seconds in run_stats.stage_seconds.items():
            tracer.complete(
                "exploration-runtime",
                "runner",
                stage,
                now_us,
                seconds * 1e6,
                args={"wall_seconds": seconds},
            )
            now_us += seconds * 1e6
    return tracer
