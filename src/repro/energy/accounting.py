"""Whole-run energy estimates.

Two paths mirror the two simulator fidelities:

- :func:`trace_energy` prices a trace analytically (streaming miss model,
  same assumptions as :mod:`repro.sim.analytic`) for a case study — used by
  the energy ablation benchmark over all kernels x systems;
- :func:`machine_energy` converts a detailed run's exact hit/miss/request
  counters into energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.config.presets import CaseStudy
from repro.config.system import SystemConfig
from repro.energy.model import EnergyModel, EnergyParams
from repro.sim.system import Machine
from repro.taxonomy import CommMechanism, ProcessingUnit
from repro.trace.phase import CommPhase, ParallelPhase, Segment, SequentialPhase
from repro.trace.stream import KernelTrace

__all__ = ["EnergyReport", "trace_energy", "machine_energy"]


@dataclass(frozen=True)
class EnergyReport:
    """Energy split by where it was spent (nanojoules)."""

    core_nj: float
    cache_nj: float
    dram_nj: float
    comm_nj: float

    @property
    def total_nj(self) -> float:
        return self.core_nj + self.cache_nj + self.dram_nj + self.comm_nj

    @property
    def total_uj(self) -> float:
        return self.total_nj / 1000.0

    @property
    def comm_fraction(self) -> float:
        return self.comm_nj / self.total_nj if self.total_nj else 0.0

    def __add__(self, other: "EnergyReport") -> "EnergyReport":
        if not isinstance(other, EnergyReport):
            return NotImplemented
        return EnergyReport(
            core_nj=self.core_nj + other.core_nj,
            cache_nj=self.cache_nj + other.cache_nj,
            dram_nj=self.dram_nj + other.dram_nj,
            comm_nj=self.comm_nj + other.comm_nj,
        )

    def to_metrics(self) -> "MetricSnapshot":
        """The report as ``energy.*`` samples, including derived totals."""
        from repro.obs.metrics import MetricSnapshot

        return MetricSnapshot(
            {
                "energy.core_nj": self.core_nj,
                "energy.cache_nj": self.cache_nj,
                "energy.dram_nj": self.dram_nj,
                "energy.comm_nj": self.comm_nj,
                "energy.total_nj": self.total_nj,
                "energy.comm_fraction": self.comm_fraction,
            }
        )


def _segment_memory_energy(model: EnergyModel, segment: Segment) -> "tuple[float, float]":
    """(cache_nj, dram_nj) for one segment under the streaming miss model."""
    system = model.system
    mem_ops = segment.mix.memory_ops
    if mem_ops == 0:
        return 0.0, 0.0
    line = system.l3.line_bytes
    streaming_miss = segment.elem_bytes / line
    footprint = segment.footprint_bytes

    cache_nj = mem_ops * model.l1_access_nj(segment.pu)
    dram_nj = 0.0
    if footprint <= (
        system.cpu.l1d.size_bytes
        if segment.pu is ProcessingUnit.CPU
        else system.gpu.l1d.size_bytes
    ):
        return cache_nj, dram_nj

    misses = mem_ops * streaming_miss
    if segment.pu is ProcessingUnit.CPU and footprint <= system.cpu.l2.size_bytes:
        cache_nj += misses * model.l2_access_nj()
    elif footprint <= system.l3.size_bytes:
        if segment.pu is ProcessingUnit.CPU:
            cache_nj += misses * model.l2_access_nj()
        cache_nj += misses * model.l3_access_nj()
    else:
        if segment.pu is ProcessingUnit.CPU:
            cache_nj += misses * model.l2_access_nj()
        cache_nj += misses * model.l3_access_nj()
        dram_nj += misses * model.dram_access_nj()
    return cache_nj, dram_nj


def trace_energy(
    trace: KernelTrace,
    case: CaseStudy,
    system: Optional[SystemConfig] = None,
    params: Optional[EnergyParams] = None,
) -> EnergyReport:
    """Analytic energy estimate for one run."""
    model = EnergyModel(system, params)
    core = cache = dram = comm = 0.0
    for phase in trace.phases:
        if isinstance(phase, SequentialPhase):
            segments = [phase.segment]
        elif isinstance(phase, ParallelPhase):
            segments = [phase.cpu, phase.gpu]
        elif isinstance(phase, CommPhase):
            comm += model.transfer_nj(phase.num_bytes, case.comm)
            continue
        else:
            continue
        for segment in segments:
            core += model.core_energy_nj(segment.mix, segment.pu)
            c, d = _segment_memory_energy(model, segment)
            cache += c
            dram += d
    return EnergyReport(core_nj=core, cache_nj=cache, dram_nj=dram, comm_nj=comm)


def machine_energy(
    machine: Machine,
    comm_bytes: int = 0,
    comm_mechanism: CommMechanism = CommMechanism.IDEAL,
    params: Optional[EnergyParams] = None,
) -> EnergyReport:
    """Exact energy from a detailed machine's counters after a run."""
    model = EnergyModel(machine.config, params)
    cpu_instr = machine.cpu_core.instructions_retired
    gpu_instr = machine.gpu_core.instructions_retired
    core = (
        cpu_instr * model.params.cpu_pj_per_instruction
        + gpu_instr * model.params.gpu_pj_per_instruction
    ) / 1000.0

    cache = (
        machine.cpu_l1d.accesses * model.l1_access_nj(ProcessingUnit.CPU)
        + machine.gpu_l1d.accesses * model.l1_access_nj(ProcessingUnit.GPU)
        + machine.cpu_l2.accesses * model.l2_access_nj()
        + machine.l3.accesses * model.l3_access_nj()
    )
    dram = machine.dram.stats().get("requests", 0) * model.dram_access_nj()
    comm = model.transfer_nj(comm_bytes, comm_mechanism)
    return EnergyReport(core_nj=core, cache_nj=cache, dram_nj=dram, comm_nj=comm)
