"""Per-event energy costs.

Constants follow widely used rules of thumb for a 32nm-class node (the
paper's Sandy-Bridge / Fermi generation): an out-of-order core spends a few
hundred pJ per instruction (most of it scheduling overhead), an in-order
SIMD lane amortizes to well under that, SRAM access energy grows with
sqrt(capacity) (taken from :mod:`repro.mem.cacti`), DRAM costs tens of nJ
per line, and moving a byte off chip costs an order of magnitude more than
moving it across the die.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.config.system import SystemConfig
from repro.mem.cacti import DEFAULT_CACTI
from repro.taxonomy import CommMechanism, ProcessingUnit
from repro.trace.mix import InstructionMix

__all__ = ["EnergyParams", "EnergyModel"]


@dataclass(frozen=True)
class EnergyParams:
    """Tunable per-event energies."""

    cpu_pj_per_instruction: float = 300.0
    gpu_pj_per_instruction: float = 120.0
    dram_nj_per_line: float = 35.0
    offchip_pj_per_byte: float = 40.0  # PCI-E SerDes + board traces
    onchip_pj_per_byte: float = 1.2  # ring / memory-controller path
    ideal_pj_per_byte: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "cpu_pj_per_instruction",
            "gpu_pj_per_instruction",
            "dram_nj_per_line",
            "offchip_pj_per_byte",
            "onchip_pj_per_byte",
            "ideal_pj_per_byte",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")


class EnergyModel:
    """Prices events in nanojoules for one system configuration."""

    def __init__(
        self,
        system: "SystemConfig | None" = None,
        params: "EnergyParams | None" = None,
    ) -> None:
        self.system = system or SystemConfig()
        self.params = params or EnergyParams()

    # -- cores ---------------------------------------------------------------

    def core_energy_nj(self, mix: InstructionMix, pu: ProcessingUnit) -> float:
        """Energy to execute a mix on one PU's core (pipeline only; the
        memory hierarchy is charged separately)."""
        per_instr_pj = (
            self.params.cpu_pj_per_instruction
            if pu is ProcessingUnit.CPU
            else self.params.gpu_pj_per_instruction
        )
        return mix.total * per_instr_pj / 1000.0

    # -- memory hierarchy -----------------------------------------------------

    def cache_access_nj(self, capacity_bytes: int, line_bytes: int = 64) -> float:
        """Per-access SRAM energy from the CACTI-like model."""
        return DEFAULT_CACTI.dynamic_energy_nj(capacity_bytes, line_bytes)

    def l1_access_nj(self, pu: ProcessingUnit) -> float:
        l1 = self.system.cpu.l1d if pu is ProcessingUnit.CPU else self.system.gpu.l1d
        return self.cache_access_nj(l1.size_bytes, l1.line_bytes)

    def l2_access_nj(self) -> float:
        return self.cache_access_nj(
            self.system.cpu.l2.size_bytes, self.system.cpu.l2.line_bytes
        )

    def l3_access_nj(self) -> float:
        # Tiled: one tile is accessed per request.
        tile = self.system.l3.size_bytes // self.system.l3.tiles
        return self.cache_access_nj(tile, self.system.l3.line_bytes)

    def dram_access_nj(self) -> float:
        return self.params.dram_nj_per_line

    # -- data movement -----------------------------------------------------------

    def transfer_nj(self, num_bytes: int, mechanism: CommMechanism) -> float:
        """Energy to move ``num_bytes`` between PUs over a mechanism.

        Endpoint DRAM traffic is part of the copy's energy: an off-chip
        copy reads the source memory and writes the destination memory
        (two DRAM touches per line) on top of the link energy, whereas the
        zero-copy memory-controller path only pays the consumer's single
        DRAM read, and an on-chip interconnect moves data cache-to-cache.
        """
        if num_bytes < 0:
            raise ConfigError("byte count must be non-negative")
        lines = num_bytes / 64.0
        if mechanism is CommMechanism.IDEAL:
            return num_bytes * self.params.ideal_pj_per_byte / 1000.0
        if mechanism.off_chip:
            link = num_bytes * self.params.offchip_pj_per_byte / 1000.0
            return link + 2.0 * lines * self.dram_access_nj()
        if mechanism is CommMechanism.MEMORY_CONTROLLER:
            onchip = num_bytes * self.params.onchip_pj_per_byte / 1000.0
            return onchip + lines * self.dram_access_nj()
        # On-chip interconnect: cache-to-cache message passing.
        return num_bytes * self.params.onchip_pj_per_byte / 1000.0
