"""Energy accounting for memory-model design points.

The paper's conclusion argues the partially shared space "can provide
opportunities to optimize hardware and save power/energy", and its future
work calls for "metrics to measure the efficiency of design options". This
package supplies the energy side of that metric:

- :mod:`repro.energy.model` — per-event energies (core ops, cache accesses
  via the CACTI-like model, DRAM accesses, on-/off-chip byte movement);
- :mod:`repro.energy.accounting` — estimates a whole run's energy either
  analytically from a trace + case study (fast path) or exactly from a
  detailed machine's counters.
"""

from repro.energy.model import EnergyParams, EnergyModel
from repro.energy.accounting import EnergyReport, machine_energy, trace_energy

__all__ = [
    "EnergyParams",
    "EnergyModel",
    "EnergyReport",
    "trace_energy",
    "machine_energy",
]
