"""The locality-scheme taxonomy and its feasibility per address space.

Section II-B discusses which locality-management combinations make sense
for each address space:

- the **disjoint** space "naturally has only private caches", so every
  shared-space scheme is infeasible there;
- for the **unified** space, implicit-private/explicit-shared "is not
  desirable since it needs explicit management for shared data structures"
  (potentially the whole memory), while explicit-private/implicit-shared
  "can easily" be had;
- the **partially shared** space supports every scheme, including the
  §II-B5 hybrid second-level cache — "the partially shared address space
  provides the most options to control the locality of caches";
- under **ADSM** the shared space is managed by the CPU-side runtime, so
  programmer-explicit shared management is possible but awkward (GMAC
  itself is explicit-private/implicit-shared in Table I).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import LocalityError
from repro.taxonomy import AddressSpaceKind, LocalityPolicy, LocalityScheme

__all__ = [
    "Feasibility",
    "SchemeDescriptor",
    "describe",
    "feasibility",
    "feasible_schemes",
    "option_counts",
]


class Feasibility(enum.Enum):
    """Whether a (scheme, address space) pair makes sense."""

    YES = "yes"
    UNDESIRABLE = "undesirable"  # possible but the paper argues against it
    NO = "no"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class SchemeDescriptor:
    """Structural description of one locality scheme."""

    scheme: LocalityScheme
    cpu_private: Optional[LocalityPolicy]
    gpu_private: Optional[LocalityPolicy]
    shared: Optional[LocalityPolicy]  # None = no shared space or hybrid
    hybrid_shared: bool
    paper_section: str
    summary: str


_DESCRIPTORS: Dict[LocalityScheme, SchemeDescriptor] = {
    d.scheme: d
    for d in (
        SchemeDescriptor(
            LocalityScheme.IMPLICIT_PRIVATE_IMPLICIT_SHARED,
            LocalityPolicy.IMPLICIT,
            LocalityPolicy.IMPLICIT,
            LocalityPolicy.IMPLICIT,
            hybrid_shared=False,
            paper_section="II-B",
            summary="hardware caches everywhere; no programmer control",
        ),
        SchemeDescriptor(
            LocalityScheme.IMPLICIT_PRIVATE_EXPLICIT_SHARED,
            LocalityPolicy.IMPLICIT,
            LocalityPolicy.IMPLICIT,
            LocalityPolicy.EXPLICIT,
            hybrid_shared=False,
            paper_section="II-B1",
            summary="hardware private caches; programmer pushes shared data",
        ),
        SchemeDescriptor(
            LocalityScheme.EXPLICIT_PRIVATE_IMPLICIT_SHARED,
            LocalityPolicy.EXPLICIT,
            LocalityPolicy.EXPLICIT,
            LocalityPolicy.IMPLICIT,
            hybrid_shared=False,
            paper_section="II-B2",
            summary="scratchpad private storage; hardware-managed shared cache",
        ),
        SchemeDescriptor(
            LocalityScheme.EXPLICIT_PRIVATE_EXPLICIT_SHARED,
            LocalityPolicy.EXPLICIT,
            LocalityPolicy.EXPLICIT,
            LocalityPolicy.EXPLICIT,
            hybrid_shared=False,
            paper_section="II-B",
            summary="fully programmer-managed locality (Sequoia-style)",
        ),
        SchemeDescriptor(
            LocalityScheme.MIXED_PRIVATE_EXPLICIT_SHARED,
            LocalityPolicy.IMPLICIT,
            LocalityPolicy.EXPLICIT,
            LocalityPolicy.EXPLICIT,
            hybrid_shared=False,
            paper_section="II-B3",
            summary="per-PU private policies; explicit shared management",
        ),
        SchemeDescriptor(
            LocalityScheme.MIXED_PRIVATE_IMPLICIT_SHARED,
            LocalityPolicy.IMPLICIT,
            LocalityPolicy.EXPLICIT,
            LocalityPolicy.IMPLICIT,
            hybrid_shared=False,
            paper_section="II-B4",
            summary="per-PU private policies; hardware-managed shared cache",
        ),
        SchemeDescriptor(
            LocalityScheme.HYBRID_SHARED,
            LocalityPolicy.IMPLICIT,
            LocalityPolicy.EXPLICIT,
            None,
            hybrid_shared=True,
            paper_section="II-B5",
            summary=(
                "shared cache serves both policies; implicit fills cannot "
                "evict explicit blocks"
            ),
        ),
        SchemeDescriptor(
            LocalityScheme.PRIVATE_ONLY,
            LocalityPolicy.IMPLICIT,
            LocalityPolicy.EXPLICIT,
            None,
            hybrid_shared=False,
            paper_section="II-B (excluded case)",
            summary="no shared space; each PU manages only its own caches",
        ),
    )
}


def describe(scheme: LocalityScheme) -> SchemeDescriptor:
    """Descriptor for a scheme."""
    return _DESCRIPTORS[scheme]


def feasibility(scheme: LocalityScheme, space: AddressSpaceKind) -> Feasibility:
    """The paper's verdict for a (scheme, address space) pair."""
    if space is AddressSpaceKind.DISJOINT:
        # "Naturally it has only private caches."
        return Feasibility.YES if scheme is LocalityScheme.PRIVATE_ONLY else Feasibility.NO
    if scheme is LocalityScheme.PRIVATE_ONLY:
        return Feasibility.NO  # these spaces do have a shared window

    explicit_shared = describe(scheme).shared is LocalityPolicy.EXPLICIT or describe(
        scheme
    ).hybrid_shared
    if space is AddressSpaceKind.UNIFIED and explicit_shared:
        # §II-B1: "potentially all the memory space can belong to the
        # shared memory space ... this option is not desirable".
        return Feasibility.UNDESIRABLE
    if space is AddressSpaceKind.ADSM and explicit_shared:
        # The ADSM window is runtime-managed from the CPU side; programmer
        # pushes into it fight the runtime's coherence bookkeeping.
        return Feasibility.UNDESIRABLE
    return Feasibility.YES


def feasible_schemes(
    space: AddressSpaceKind, include_undesirable: bool = False
) -> Tuple[LocalityScheme, ...]:
    """Schemes usable under ``space``."""
    allowed = (Feasibility.YES, Feasibility.UNDESIRABLE) if include_undesirable else (
        Feasibility.YES,
    )
    return tuple(s for s in _DESCRIPTORS if feasibility(s, space) in allowed)


def option_counts() -> Dict[AddressSpaceKind, int]:
    """Feasible-scheme count per address space.

    The paper's conclusion 3: the partially shared space has the most.
    """
    return {space: len(feasible_schemes(space)) for space in AddressSpaceKind}
