"""Applies a locality scheme to a machine and executes ``push`` operations.

Hardware side of §II-B5: "the tag storage has one bit to indicate the
locality information to be compared in the replacement logic" — that bit is
:attr:`repro.mem.cache.block.CacheBlock.explicit`, and this manager is what
sets it, by routing the program-level ``push(data, level)`` statements to
the right storage structure:

- ``GPU.P`` — the GPU's 16 KB software-managed cache;
- ``CPU.P`` — the CPU's private caches (explicit placement via line pins);
- ``S``    — the shared second-level cache (explicit lines protected by the
  hybrid replacement policy).
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.errors import LocalityError
from repro.locality.schemes import Feasibility, describe, feasibility
from repro.mem.cache.cache import Cache
from repro.mem.cache.replacement import HybridLocalityPolicy
from repro.sim.system import Machine
from repro.taxonomy import AddressSpaceKind, LocalityPolicy, LocalityScheme

__all__ = ["LocalityManager"]

#: Program-level names for push targets.
LEVELS = ("CPU.P", "GPU.P", "S")


class LocalityManager:
    """Executes explicit locality control on a detailed machine."""

    def __init__(
        self,
        machine: Machine,
        scheme: LocalityScheme,
        space: AddressSpaceKind,
    ) -> None:
        verdict = feasibility(scheme, space)
        if verdict is Feasibility.NO:
            raise LocalityError(
                f"scheme {scheme} is infeasible under the {space.short} space"
            )
        self.machine = machine
        self.scheme = scheme
        self.space = space
        self.descriptor = describe(scheme)
        self.pushes: Dict[str, int] = {level: 0 for level in LEVELS}
        self._explicit_ranges: Set[Tuple[int, int]] = set()
        if self.descriptor.hybrid_shared and not isinstance(
            machine.l3.policy, HybridLocalityPolicy
        ):
            raise LocalityError(
                "the hybrid scheme requires the shared cache to be built "
                "with a HybridLocalityPolicy (pass l3_policy to build_machine)"
            )

    # -- push -----------------------------------------------------------------

    def push(self, base: int, size: int, level: str) -> None:
        """Execute ``push(data, level)``."""
        if level not in LEVELS:
            raise LocalityError(f"unknown push level {level!r}; use one of {LEVELS}")
        if size <= 0:
            raise LocalityError("pushed region must have positive size")
        self._check_level_allows_push(level)
        self.pushes[level] += 1
        if level == "GPU.P":
            self.machine.gpu_core.push(base, size)
            return
        cache = self.machine.cpu_l1d if level == "CPU.P" else self.machine.l3
        line = cache.config.line_bytes
        for addr in range(base, base + size, line):
            cache.push_line(addr)
        self._explicit_ranges.add((base, size))

    def _check_level_allows_push(self, level: str) -> None:
        d = self.descriptor
        if level == "CPU.P" and d.cpu_private is not LocalityPolicy.EXPLICIT:
            raise LocalityError(
                f"{self.scheme}: the CPU's private caches are implicitly managed"
            )
        if level == "GPU.P" and d.gpu_private is not LocalityPolicy.EXPLICIT:
            raise LocalityError(
                f"{self.scheme}: the GPU's private storage is implicitly managed"
            )
        if level == "S":
            shared_explicit = d.shared is LocalityPolicy.EXPLICIT or d.hybrid_shared
            if not shared_explicit:
                raise LocalityError(
                    f"{self.scheme}: the shared cache is implicitly managed"
                )

    # -- queries ----------------------------------------------------------------

    def is_explicit(self, addr: int) -> bool:
        """Whether ``addr`` lies in a pushed (explicitly managed) region."""
        return any(base <= addr < base + size for base, size in self._explicit_ranges)

    def stats(self) -> Dict[str, int]:
        return {f"pushes_{level}": count for level, count in self.pushes.items()}
