"""Locality management for the shared memory space (paper §II-B).

- :mod:`repro.locality.schemes` — the taxonomy of §II-B (who manages each
  level implicitly/explicitly) and its feasibility rules per address space;
  counting feasible schemes per space reproduces the paper's conclusion
  that the partially shared space "allows the most number [of] locality
  management options";
- :mod:`repro.locality.manager` — applies a scheme to a machine: installs
  the §II-B5 hybrid replacement policy in the shared cache and routes
  ``push`` operations to the right storage (GPU scratchpad or shared L3).
"""

from repro.locality.schemes import (
    Feasibility,
    SchemeDescriptor,
    describe,
    feasibility,
    feasible_schemes,
    option_counts,
)
from repro.locality.manager import LocalityManager

__all__ = [
    "Feasibility",
    "SchemeDescriptor",
    "describe",
    "feasibility",
    "feasible_schemes",
    "option_counts",
    "LocalityManager",
]
