"""Analytic core/memory timing used by the fast simulator.

The fast simulator never expands instructions; it prices a
:class:`~repro.trace.phase.Segment` from its mix and footprint:

- **CPU**: dependency-limited issue at ``ISSUE_EFFICIENCY`` of the issue
  width, gshare mispredictions at a fixed streaming-code rate, and memory
  stalls from a footprint-based miss model with OoO miss overlap (MLP);
- **GPU**: CPI 1 in-order issue, a stall on every branch, and memory
  stalls divided by the warp count.

The miss model classifies a segment by where its footprint fits (L1, L2,
L3, DRAM) and charges streaming-style miss rates (one miss per cache line
of new data) — the six kernels are all streaming workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.system import SystemConfig
from repro.errors import SimulationError
from repro.trace.phase import Segment
from repro.taxonomy import ProcessingUnit

__all__ = ["AnalyticTiming", "multicore_speedup"]

#: Fraction of peak issue width an OoO core sustains on these kernels.
ISSUE_EFFICIENCY = 0.55
#: gshare misprediction rate on streaming loop code.
MISPREDICT_RATE = 0.05
#: OoO memory-level parallelism (outstanding-miss overlap divisor).
CPU_MLP = 4.0
#: Extra CPU cycles for a ring traversal to the L3 and back.
RING_ROUND_TRIP_CYCLES = 8
#: Unloaded DRAM access latency in nanoseconds (activate+CAS+burst).
DRAM_LATENCY_NS = 50.0
#: Per-extra-core synchronization/imbalance overhead for multi-core
#: scaling (the paper fixes one core per PU, footnote 4; this governs the
#: extension sweep): speedup(n) = n / (1 + SYNC_FRACTION * (n - 1)).
SYNC_FRACTION = 0.05


def multicore_speedup(num_cores: int) -> float:
    """Sublinear parallel speedup of a data-parallel segment on n cores."""
    if num_cores < 1:
        raise SimulationError(f"need at least one core, got {num_cores}")
    return num_cores / (1.0 + SYNC_FRACTION * (num_cores - 1))


@dataclass(frozen=True)
class _MissProfile:
    """Per-memory-op miss behaviour for one segment."""

    miss_rate: float
    miss_penalty_seconds: float


class AnalyticTiming:
    """Prices segments in seconds for a given system configuration."""

    def __init__(self, system: "SystemConfig | None" = None) -> None:
        self.system = system or SystemConfig()

    # -- memory model -------------------------------------------------------

    def _miss_profile(self, segment: Segment, pu: ProcessingUnit) -> _MissProfile:
        system = self.system
        line = system.l3.line_bytes
        footprint = segment.footprint_bytes
        cpu_freq = system.cpu.frequency
        streaming_miss = segment.elem_bytes / line

        if pu is ProcessingUnit.CPU:
            l1 = system.cpu.l1d
            l1_lat = cpu_freq.cycles_to_seconds(l1.latency)
            l2_lat = cpu_freq.cycles_to_seconds(system.cpu.l2.latency)
            l3_lat = cpu_freq.cycles_to_seconds(
                system.l3.latency + RING_ROUND_TRIP_CYCLES
            )
        else:
            l1 = system.gpu.l1d
            gpu_freq = system.gpu.frequency
            l1_lat = gpu_freq.cycles_to_seconds(l1.latency)
            # The GPU has no L2; its misses go straight over the ring to
            # the shared L3 (latencies below are wall-clock, so the clock
            # domains mix correctly).
            l2_lat = None
            l3_lat = cpu_freq.cycles_to_seconds(
                system.l3.latency + RING_ROUND_TRIP_CYCLES
            )
        dram_lat = DRAM_LATENCY_NS * 1e-9

        if footprint <= l1.size_bytes:
            # Fits in L1: only cold misses.
            return _MissProfile(miss_rate=0.01, miss_penalty_seconds=l3_lat - l1_lat)
        if pu is ProcessingUnit.CPU and footprint <= self.system.cpu.l2.size_bytes:
            return _MissProfile(
                miss_rate=streaming_miss, miss_penalty_seconds=l2_lat - l1_lat
            )
        if footprint <= self.system.l3.size_bytes:
            return _MissProfile(
                miss_rate=streaming_miss, miss_penalty_seconds=l3_lat - l1_lat
            )
        return _MissProfile(
            miss_rate=streaming_miss, miss_penalty_seconds=l3_lat + dram_lat - l1_lat
        )

    # -- per-PU segment pricing ---------------------------------------------

    def cpu_segment_seconds(self, segment: Segment, parallel: bool = True) -> float:
        """Wall-clock time of a CPU segment.

        ``parallel`` segments (the kernel halves of parallel phases) scale
        across ``num_cores``; sequential segments always run on one core.
        """
        if segment.pu is not ProcessingUnit.CPU:
            raise SimulationError("cpu_segment_seconds requires a CPU segment")
        cpu = self.system.cpu
        mix = segment.mix
        issue_cycles = mix.total / (cpu.issue_width * ISSUE_EFFICIENCY)
        branch_cycles = mix.branches * MISPREDICT_RATE * cpu.branch_mispredict_penalty
        profile = self._miss_profile(segment, ProcessingUnit.CPU)
        misses = mix.memory_ops * profile.miss_rate
        stall_seconds = misses * profile.miss_penalty_seconds / CPU_MLP
        seconds = (
            cpu.frequency.cycles_to_seconds(issue_cycles + branch_cycles)
            + stall_seconds
        )
        if parallel and cpu.num_cores > 1:
            seconds /= multicore_speedup(cpu.num_cores)
        return seconds

    def gpu_segment_seconds(self, segment: Segment, parallel: bool = True) -> float:
        """Wall-clock time of a GPU segment (scales across GPU cores)."""
        if segment.pu is not ProcessingUnit.GPU:
            raise SimulationError("gpu_segment_seconds requires a GPU segment")
        gpu = self.system.gpu
        mix = segment.mix
        issue_cycles = float(mix.total)
        branch_cycles = mix.branches * (
            gpu.branch_stall_cycles if gpu.stall_on_branch else 0
        )
        profile = self._miss_profile(segment, ProcessingUnit.GPU)
        misses = mix.memory_ops * profile.miss_rate
        stall_seconds = misses * profile.miss_penalty_seconds / gpu.warps_per_core
        seconds = (
            gpu.frequency.cycles_to_seconds(issue_cycles + branch_cycles)
            + stall_seconds
        )
        if parallel and gpu.num_cores > 1:
            seconds /= multicore_speedup(gpu.num_cores)
        return seconds

    def segment_seconds(self, segment: Segment) -> float:
        """Wall-clock time of any segment (dispatch on its PU)."""
        if segment.pu is ProcessingUnit.CPU:
            return self.cpu_segment_seconds(segment)
        return self.gpu_segment_seconds(segment)

    def estimated_memory_counters(self, segment: Segment) -> "tuple[float, float, float]":
        """``(memory_ops, estimated_misses, estimated_dram_accesses)``.

        The same streaming miss model the pricing uses, exported as event
        counts so the fast simulator can publish cache/DRAM metrics
        alongside its timing (the detailed simulator reports exact ones).
        """
        mem_ops = float(segment.mix.memory_ops)
        profile = self._miss_profile(segment, segment.pu)
        misses = mem_ops * profile.miss_rate
        dram = (
            misses if segment.footprint_bytes > self.system.l3.size_bytes else 0.0
        )
        return mem_ops, misses, dram
