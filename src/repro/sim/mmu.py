"""Address translation for the detailed simulator.

§II-A1 notes that per-PU page-table formats "complicate TLB designs and
memory management units"; this module makes those costs visible:

- :class:`TranslationFront` wraps a PU's top memory level with a TLB and
  the PU's page table from a real :class:`~repro.addrspace.base.AddressSpace`
  model. TLB misses pay a page-walk latency; first touches of unmapped
  pages pay an OS fault cost; and **reachability is enforced** — a PU
  touching an address its space forbids raises
  :class:`~repro.errors.AccessViolationError`, exactly as the model demands;
- :func:`stage_trace` rewrites a kernel trace's segment base addresses into
  regions each PU may legally reach under a given address space (what the
  runtime's allocation + transfer calls accomplish in a real system);
- :func:`stage_shared_trace` rebases the data an address space *shares*
  into the shared window, so a coherence protocol over that window sees
  the sharing the space actually exposes (the coherence-overhead
  experiment's staging).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.addrspace.base import AddressSpace
from repro.addrspace.layout import CPU_PRIVATE_BASE, GPU_PRIVATE_BASE, SHARED_BASE
from repro.addrspace.tlb import TLB
from repro.errors import SimulationError
from repro.mem.level import MemoryLevel
from repro.mem.request import AccessResult, MemRequest
from repro.taxonomy import AddressSpaceKind, ProcessingUnit
from repro.trace.phase import CommPhase, ParallelPhase, Phase, Segment, SequentialPhase
from repro.trace.stream import KernelTrace

__all__ = ["TranslationFront", "stage_trace", "stage_shared_trace"]

#: Page-table-walk latency (two-level walk hitting the cache hierarchy).
DEFAULT_WALK_SECONDS = 30e-9
#: OS cost of servicing a minor page fault.
DEFAULT_FAULT_SECONDS = 1e-6


class TranslationFront(MemoryLevel):
    """TLB + page-table translation in front of a PU's cache hierarchy."""

    def __init__(
        self,
        pu: ProcessingUnit,
        space: AddressSpace,
        below: MemoryLevel,
        tlb_entries: int = 64,
        walk_seconds: float = DEFAULT_WALK_SECONDS,
        fault_seconds: float = DEFAULT_FAULT_SECONDS,
    ) -> None:
        if walk_seconds < 0 or fault_seconds < 0:
            raise SimulationError("walk/fault latencies must be non-negative")
        self.pu = pu
        self.space = space
        self.below = below
        self.page_table = space.page_tables[pu]
        self.tlb = TLB(tlb_entries, self.page_table.page_bytes)
        self.walk_seconds = walk_seconds
        self.fault_seconds = fault_seconds
        self.name = f"mmu[{pu}]"
        self.walks = 0
        self.faults_serviced = 0
        self.translation_latency = 0.0

    def access(self, request: MemRequest) -> AccessResult:
        extra = 0.0
        frame = self.tlb.lookup(request.addr)
        if frame is None:
            # Walk the page table; reachability is checked by the space.
            self.walks += 1
            extra += self.walk_seconds
            faults_before = self.page_table.page_faults
            self.space.translate(self.pu, request.addr, on_demand=True)
            if self.page_table.page_faults > faults_before:
                self.faults_serviced += 1
                extra += self.fault_seconds
            frame = self.page_table.translate(request.addr) // self.page_table.page_bytes
            self.tlb.install(request.addr, frame)
        self.translation_latency += extra
        below = self.below.access(request.with_time(request.issue_time + extra))
        if extra == 0.0:
            return below
        return AccessResult(
            latency=below.latency + extra,
            hit_level=below.hit_level,
            was_hit=below.was_hit,
        )

    def stats(self) -> Dict[str, float]:
        data: Dict[str, float] = dict(self.tlb.stats())
        data["walks"] = self.walks
        data["faults_serviced"] = self.faults_serviced
        data["translation_latency_s"] = self.translation_latency
        return data


def _gpu_placement(kind: AddressSpaceKind) -> "tuple[ProcessingUnit, bool]":
    """(home PU, shared?) for data the GPU computes on, per address space.

    Mirrors what the programming model's allocation calls do: a disjoint
    space stages GPU data in GPU-private memory; PAS and ADSM put it in the
    shared window; a unified space can leave it anywhere (we home it on the
    GPU as the locality hint).
    """
    if kind in (AddressSpaceKind.PARTIALLY_SHARED, AddressSpaceKind.ADSM):
        return ProcessingUnit.GPU, True
    return ProcessingUnit.GPU, False


def stage_trace(trace: KernelTrace, space: AddressSpace) -> KernelTrace:
    """Rebase every segment into a region its PU may reach under ``space``.

    CPU and sequential segments land in CPU-private memory; GPU segments
    land where the space's programming model would stage them (see
    :func:`_gpu_placement`). Buffers are deduplicated by original base
    address, so a region touched by several phases is allocated once.
    """
    placements: Dict[int, int] = {}
    counter = [0]

    def rebase(segment: Segment) -> Segment:
        if segment.footprint_bytes == 0:
            return segment
        key = segment.base_addr
        if key not in placements:
            counter[0] += 1
            name = f"stage-{counter[0]}-{segment.label or 'buf'}"
            if segment.pu is ProcessingUnit.GPU:
                home, shared = _gpu_placement(space.kind)
            else:
                home, shared = ProcessingUnit.CPU, False
            allocation = space.alloc(
                name, segment.footprint_bytes, pu=home, shared=shared
            )
            placements[key] = allocation.addr
        return Segment(
            pu=segment.pu,
            mix=segment.mix,
            base_addr=placements[key],
            footprint_bytes=segment.footprint_bytes,
            elem_bytes=segment.elem_bytes,
            label=segment.label,
        )

    phases: List[Phase] = []
    for phase in trace.phases:
        if isinstance(phase, SequentialPhase):
            phases.append(SequentialPhase(label=phase.label, segment=rebase(phase.segment)))
        elif isinstance(phase, ParallelPhase):
            phases.append(
                ParallelPhase(label=phase.label, cpu=rebase(phase.cpu), gpu=rebase(phase.gpu))
            )
        else:
            phases.append(phase)
    return KernelTrace(name=trace.name, phases=tuple(phases))


def stage_shared_trace(trace: KernelTrace, kind: AddressSpaceKind) -> KernelTrace:
    """Rebase the data ``kind`` shares between the PUs into the shared window.

    The raw kernel traces keep their buffers in the private regions, so a
    coherence protocol watching the shared window (see
    :class:`~repro.sim.system.CoherentFront`) never fires on them. This
    staging expresses how much of the working set each address space
    actually exposes to coherent sharing:

    - **unified** — every address is reachable by every PU, so the whole
      trace moves into the shared window (hardware coherence over a
      unified space covers all data);
    - **partially shared / ADSM** — the kernel-phase buffers live in the
      shared window (that is where the programming model stages GPU data);
      serial-phase CPU work stays private;
    - **disjoint** — nothing is shared; the trace is returned unchanged,
      and a protocol over it measures zero traffic.

    The rebase is a pure offset shift (``addr - CPU_PRIVATE_BASE +
    SHARED_BASE``), so segments that overlapped in the private layout —
    the CPU and GPU halves of a parallel phase working the same array —
    overlap identically in the shared window, which is exactly what the
    protocol's invalidation traffic measures.

    One producer-consumer rule on top of the shift: in a shared space a
    sequential phase that works on a *result* buffer (the raw trace keeps
    those in the output region) consumes the GPU's data **in place** —
    that is the point of coherent shared memory; the disjoint path's
    explicit copy-out is what makes such a phase private. Those segments
    rebase onto the most recent parallel GPU segment's staged base, so the
    CPU's merge/update work hits lines the GPU holds Modified — the
    migratory sharing that drives the protocols' invalidation and
    downgrade traffic.
    """
    if kind is AddressSpaceKind.DISJOINT:
        return trace
    share_serial = kind is AddressSpaceKind.UNIFIED

    def rebase(segment: Segment) -> Segment:
        if segment.footprint_bytes == 0 or segment.base_addr >= SHARED_BASE:
            return segment
        return Segment(
            pu=segment.pu,
            mix=segment.mix,
            base_addr=segment.base_addr - CPU_PRIVATE_BASE + SHARED_BASE,
            footprint_bytes=segment.footprint_bytes,
            elem_bytes=segment.elem_bytes,
            label=segment.label,
        )

    phases: List[Phase] = []
    last_gpu_base: Optional[int] = None
    for phase in trace.phases:
        if isinstance(phase, SequentialPhase):
            segment = phase.segment
            consumes_results = (
                last_gpu_base is not None
                and segment.footprint_bytes > 0
                and GPU_PRIVATE_BASE <= segment.base_addr < SHARED_BASE
            )
            if consumes_results:
                segment = Segment(
                    pu=segment.pu,
                    mix=segment.mix,
                    base_addr=last_gpu_base,
                    footprint_bytes=segment.footprint_bytes,
                    elem_bytes=segment.elem_bytes,
                    label=segment.label,
                )
            elif share_serial:
                segment = rebase(segment)
            phases.append(SequentialPhase(label=phase.label, segment=segment))
        elif isinstance(phase, ParallelPhase):
            cpu = rebase(phase.cpu)
            gpu = rebase(phase.gpu)
            if gpu.footprint_bytes > 0:
                last_gpu_base = gpu.base_addr
            phases.append(ParallelPhase(label=phase.label, cpu=cpu, gpu=gpu))
        else:
            phases.append(phase)
    return KernelTrace(name=trace.name, phases=tuple(phases))
