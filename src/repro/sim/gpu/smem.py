"""The GPU's 16 KB software-managed cache (scratchpad).

Explicitly managed locality on the GPU side: the program ``push``-es data
in, after which loads/stores to those addresses hit at scratchpad latency
and never touch the demand hierarchy. Capacity is enforced: pushing past
16 KB evicts the oldest region (the programmer overcommitted).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Tuple

from repro.errors import LocalityError

__all__ = ["Scratchpad"]


class Scratchpad:
    """Address-range-tracked software-managed memory."""

    def __init__(self, capacity_bytes: int, latency_cycles: int = 2) -> None:
        if capacity_bytes < 0:
            raise LocalityError("scratchpad capacity must be non-negative")
        if latency_cycles < 1:
            raise LocalityError("scratchpad latency must be >= 1 cycle")
        self.capacity_bytes = capacity_bytes
        self.latency_cycles = latency_cycles
        self._regions: "OrderedDict[int, int]" = OrderedDict()  # base -> size
        self.pushes = 0
        self.evicted_regions = 0
        self.hits = 0

    @property
    def used_bytes(self) -> int:
        return sum(self._regions.values())

    def push(self, base: int, size: int) -> None:
        """Place ``[base, base+size)`` into the scratchpad."""
        if size <= 0:
            raise LocalityError("pushed region must have positive size")
        if size > self.capacity_bytes:
            raise LocalityError(
                f"region of {size} bytes exceeds scratchpad capacity "
                f"{self.capacity_bytes}"
            )
        self._regions.pop(base, None)
        while self.used_bytes + size > self.capacity_bytes:
            self._regions.popitem(last=False)
            self.evicted_regions += 1
        self._regions[base] = size
        self.pushes += 1

    def contains(self, addr: int) -> bool:
        for base, size in self._regions.items():
            if base <= addr < base + size:
                return True
        return False

    def access(self, addr: int) -> "int | None":
        """Latency in cycles if resident, else None."""
        if self.contains(addr):
            self.hits += 1
            return self.latency_cycles
        return None

    def clear(self) -> None:
        self._regions.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "pushes": self.pushes,
            "evicted_regions": self.evicted_regions,
            "hits": self.hits,
            "used_bytes": self.used_bytes,
        }
