"""The in-order SIMD GPU core model (Table II, GPU column)."""

from repro.sim.gpu.core import GpuCore
from repro.sim.gpu.smem import Scratchpad

__all__ = ["GpuCore", "Scratchpad"]
