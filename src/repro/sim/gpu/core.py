"""In-order SIMD GPU core timing model.

A Fermi-like streaming multiprocessor reduced to its timing essentials:

- one instruction per cycle, in order;
- no branch predictor — the core stalls on every branch (Table II:
  "N/A (stall on branch)");
- memory operations first check the 16 KB software-managed cache; demand
  accesses go through the L1 and on to the shared hierarchy, with miss
  latency divided by the warp count — multithreading is the GPU's latency
  tolerance mechanism.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.config.system import GpuConfig
from repro.errors import SimulationError
from repro.mem.cache.cache import Cache
from repro.mem.level import MemoryLevel
from repro.mem.request import MemRequest
from repro.perf.compiled import EV_COMPUTE_RUN, EV_MEMORY, CompiledSegment
from repro.sim.gpu.smem import Scratchpad
from repro.taxonomy import ProcessingUnit

__all__ = ["GpuCore", "run_compiled_batch"]


class GpuCore:
    """One in-order SIMD core with warp-level latency hiding.

    Two scheduling modes:

    - ``"heuristic"`` (default): a single instruction stream whose memory
      stalls are divided by the warp count — cheap and adequate for the
      streaming kernels;
    - ``"warp"``: an actual greedy warp scheduler — ``warps`` contexts pull
      instructions from the stream, a stalled warp parks until its memory
      request returns, and the issue slot goes to the earliest-ready warp.
      Latency hiding *emerges* instead of being assumed; see
      ``tests/sim/test_warp_mode.py`` for the cross-check between modes.
    """

    def __init__(
        self,
        config: GpuConfig,
        memory: MemoryLevel,
        latency_hiding_warps: Optional[int] = None,
        mode: str = "heuristic",
    ) -> None:
        if mode not in ("heuristic", "warp"):
            raise SimulationError(f"unknown GPU scheduling mode {mode!r}")
        self.config = config
        self.memory = memory
        self.mode = mode
        self.scratchpad = Scratchpad(config.smem_bytes, config.smem_latency)
        if latency_hiding_warps is None:
            latency_hiding_warps = config.warps_per_core
        if latency_hiding_warps < 1:
            raise SimulationError("need at least one warp for latency hiding")
        self.warps = latency_hiding_warps
        self.instructions_retired = 0
        self.memory_stall_cycles = 0.0
        self.branch_stall_cycles = 0
        self.scratchpad_hits = 0

    def run_stepwise(
        self,
        instructions: Iterable,
        start_seconds: float = 0.0,
        explicit_addrs: Optional[object] = None,
    ) -> Iterator[float]:
        """Execute instructions one at a time, yielding cumulative cycles.

        See :meth:`repro.sim.cpu.core.CpuCore.run_stepwise` for the
        stepping protocol used by the interleaving engine. A
        :class:`~repro.perf.compiled.CompiledSegment` may be passed in
        place of the instruction iterable.
        """
        if isinstance(instructions, CompiledSegment):
            yield from self.step_compiled(instructions, start_seconds, explicit_addrs)
            return
        if self.mode == "warp":
            yield from self._run_stepwise_warp(
                instructions, start_seconds, explicit_addrs
            )
            return
        freq = self.config.frequency
        branch_stall = self.config.branch_stall_cycles if self.config.stall_on_branch else 0
        hit_latency = freq.cycles_to_seconds(self.config.l1d.latency)

        cycles = 0.0
        count = 0
        for inst in instructions:
            count += 1
            cycles += 1
            opcode = inst.opcode
            if opcode.is_memory:
                smem = self.scratchpad.access(inst.addr)
                if smem is not None:
                    self.scratchpad_hits += 1
                    cycles += max(smem - 1, 0)
                    yield cycles
                    continue
                explicit = bool(explicit_addrs and explicit_addrs(inst.addr))
                request = MemRequest(
                    addr=inst.addr,
                    size=inst.size,
                    is_write=opcode.is_store,
                    pu=ProcessingUnit.GPU,
                    explicit=explicit,
                    issue_time=start_seconds + freq.cycles_to_seconds(int(cycles)),
                )
                result = self.memory.access(request)
                if result.latency > hit_latency:
                    stall = (result.latency - hit_latency) / self.warps
                    stall_cycles = stall * freq.hertz
                    cycles += stall_cycles
                    self.memory_stall_cycles += stall_cycles
            elif opcode.value == "branch":
                cycles += branch_stall
                self.branch_stall_cycles += branch_stall
            yield cycles
        self.instructions_retired += count
        yield cycles

    def _run_stepwise_warp(
        self,
        instructions: Iterable,
        start_seconds: float = 0.0,
        explicit_addrs: Optional[object] = None,
    ) -> Iterator[float]:
        """Greedy warp scheduling: the issue slot goes to the earliest-ready
        warp; memory latency parks the issuing warp, not the core."""
        freq = self.config.frequency
        branch_stall = self.config.branch_stall_cycles if self.config.stall_on_branch else 0
        hit_latency_cycles = float(self.config.l1d.latency)

        ready = [0.0] * self.warps
        cycle = 0.0
        count = 0
        stream = iter(instructions)
        for inst in stream:
            count += 1
            # Earliest-ready warp takes the next instruction; the core
            # issues at most one instruction per cycle.
            warp = min(range(self.warps), key=ready.__getitem__)
            issue_at = max(cycle, ready[warp]) + 1
            if issue_at > cycle + 1:
                # All other warps were parked too: exposed stall.
                self.memory_stall_cycles += issue_at - (cycle + 1)
            cycle = issue_at
            opcode = inst.opcode
            if opcode.is_memory:
                smem = self.scratchpad.access(inst.addr)
                if smem is not None:
                    self.scratchpad_hits += 1
                    ready[warp] = cycle + max(smem - 1, 0)
                    yield cycle
                    continue
                explicit = bool(explicit_addrs and explicit_addrs(inst.addr))
                request = MemRequest(
                    addr=inst.addr,
                    size=inst.size,
                    is_write=opcode.is_store,
                    pu=ProcessingUnit.GPU,
                    explicit=explicit,
                    issue_time=start_seconds + freq.cycles_to_seconds(int(cycle)),
                )
                result = self.memory.access(request)
                latency_cycles = result.latency * freq.hertz
                ready[warp] = cycle + max(latency_cycles - hit_latency_cycles, 0.0)
            elif opcode.value == "branch":
                ready[warp] = cycle + branch_stall
                self.branch_stall_cycles += branch_stall
            else:
                ready[warp] = cycle
            yield cycle
        # Drain: the segment finishes when the last warp's work lands.
        cycle = max([cycle] + ready)
        self.instructions_retired += count
        yield cycle

    def run_compiled(
        self,
        compiled: CompiledSegment,
        start_seconds: float = 0.0,
        explicit_addrs: Optional[object] = None,
    ) -> int:
        """Batched fast path over a compiled segment; returns GPU cycles.

        Heuristic mode only — warp mode keeps its scheduler and simply
        decodes the compiled stream (latency hiding there depends on
        per-instruction warp state). Cycle accounting matches the legacy
        loop exactly; see :meth:`repro.sim.cpu.core.CpuCore.run_compiled`
        for the float-exactness rules.
        """
        if self.mode == "warp":
            cycles = 0.0
            for cycles in self._run_stepwise_warp(
                compiled.instructions(), start_seconds, explicit_addrs
            ):
                pass
            return int(cycles)
        freq = self.config.frequency
        hertz = freq.hertz
        branch_stall = self.config.branch_stall_cycles if self.config.stall_on_branch else 0
        hit_latency = freq.cycles_to_seconds(self.config.l1d.latency)
        warps = self.warps
        access_latency = self.memory.access_latency
        scratchpad_access = self.scratchpad.access
        pu = ProcessingUnit.GPU

        cycles = 0.0
        for kind, a, b, c in compiled.events:
            if kind == EV_COMPUTE_RUN:
                if cycles.is_integer():
                    cycles += a
                else:
                    for _ in range(a):
                        cycles += 1.0
            elif kind == EV_MEMORY:
                cycles += 1.0
                smem = scratchpad_access(a)
                if smem is not None:
                    self.scratchpad_hits += 1
                    cycles += max(smem - 1, 0)
                    continue
                explicit = bool(explicit_addrs is not None and explicit_addrs(a))
                latency = access_latency(
                    a,
                    b,
                    bool(c),
                    pu,
                    explicit,
                    False,
                    start_seconds + int(cycles) / hertz,
                )
                if latency > hit_latency:
                    stall = (latency - hit_latency) / warps
                    stall_cycles = stall * hertz
                    cycles += stall_cycles
                    self.memory_stall_cycles += stall_cycles
            else:  # EV_BRANCH
                cycles += 1.0
                cycles += branch_stall
                self.branch_stall_cycles += branch_stall
        self.instructions_retired += compiled.length
        return int(cycles)

    def step_compiled(
        self,
        compiled: CompiledSegment,
        start_seconds: float = 0.0,
        explicit_addrs: Optional[object] = None,
    ) -> Iterator[float]:
        """Per-instruction stepper over a compiled segment.

        Yield-for-yield identical to :meth:`run_stepwise` on the decoded
        stream; warp mode decodes into its scheduler unchanged.
        """
        if self.mode == "warp":
            yield from self._run_stepwise_warp(
                compiled.instructions(), start_seconds, explicit_addrs
            )
            return
        freq = self.config.frequency
        hertz = freq.hertz
        branch_stall = self.config.branch_stall_cycles if self.config.stall_on_branch else 0
        hit_latency = freq.cycles_to_seconds(self.config.l1d.latency)
        warps = self.warps
        access_latency = self.memory.access_latency
        scratchpad_access = self.scratchpad.access
        pu = ProcessingUnit.GPU

        cycles = 0.0
        for kind, a, b, c in compiled.events:
            if kind == EV_COMPUTE_RUN:
                for _ in range(a):
                    cycles += 1.0
                    yield cycles
                continue
            cycles += 1.0
            if kind == EV_MEMORY:
                smem = scratchpad_access(a)
                if smem is not None:
                    self.scratchpad_hits += 1
                    cycles += max(smem - 1, 0)
                    yield cycles
                    continue
                explicit = bool(explicit_addrs is not None and explicit_addrs(a))
                latency = access_latency(
                    a,
                    b,
                    bool(c),
                    pu,
                    explicit,
                    False,
                    start_seconds + int(cycles) / hertz,
                )
                if latency > hit_latency:
                    stall = (latency - hit_latency) / warps
                    stall_cycles = stall * hertz
                    cycles += stall_cycles
                    self.memory_stall_cycles += stall_cycles
            else:  # EV_BRANCH
                cycles += branch_stall
                self.branch_stall_cycles += branch_stall
            yield cycles
        self.instructions_retired += compiled.length
        yield cycles

    def run_segment(
        self,
        instructions: Iterable,
        start_seconds: float = 0.0,
        explicit_addrs: Optional[object] = None,
    ) -> int:
        """Execute a whole stream; returns GPU cycles consumed.

        Accepts either an iterable of instructions or a
        :class:`~repro.perf.compiled.CompiledSegment` (batched fast path).
        """
        if isinstance(instructions, CompiledSegment):
            return self.run_compiled(instructions, start_seconds, explicit_addrs)
        cycles = 0.0
        for cycles in self.run_stepwise(instructions, start_seconds, explicit_addrs):
            pass
        return int(cycles)

    def push(self, base: int, size: int) -> None:
        """Explicitly place a region into the software-managed cache."""
        self.scratchpad.push(base, size)

    def stats(self) -> Dict[str, float]:
        data = {
            "instructions": self.instructions_retired,
            "memory_stall_cycles": self.memory_stall_cycles,
            "branch_stall_cycles": self.branch_stall_cycles,
            "scratchpad_hits": self.scratchpad_hits,
        }
        for key, value in self.scratchpad.stats().items():
            data[f"smem_{key}"] = value
        return data


def run_compiled_batch(
    cores: Sequence[GpuCore],
    compiled: CompiledSegment,
    start_seconds: Sequence[float],
    explicit_addrs: Optional[Sequence[Optional[object]]] = None,
) -> List[int]:
    """Run one compiled event stream through N GPU cores in a single pass.

    The GPU side of the design-point axis: event records are decoded once
    and applied to every per-point core state. Heuristic-mode accounting is
    operation-for-operation :meth:`GpuCore.run_compiled`; any core in warp
    mode makes the whole batch fall back to per-core execution (warp
    latency hiding depends on per-instruction scheduler state that cannot
    share a decode pass). Shared ``(index, tag)`` cache probing mirrors
    :func:`repro.sim.cpu.core.run_compiled_batch`.

    Returns each core's cycle count, in core order.
    """
    n = len(cores)
    if len(start_seconds) != n:
        raise SimulationError(
            f"need one start time per core: {n} cores, {len(start_seconds)} times"
        )
    if explicit_addrs is None:
        explicit_addrs = [None] * n
    if n == 1 or any(core.mode == "warp" for core in cores):
        return [
            core.run_compiled(compiled, start_seconds[i], explicit_addrs[i])
            for i, core in enumerate(cores)
        ]

    hertz = [core.config.frequency.hertz for core in cores]
    branch_stall = [
        core.config.branch_stall_cycles if core.config.stall_on_branch else 0
        for core in cores
    ]
    hit_latency = [
        core.config.frequency.cycles_to_seconds(core.config.l1d.latency)
        for core in cores
    ]
    warps = [core.warps for core in cores]
    memories = [core.memory for core in cores]
    access = [memory.access_latency for memory in memories]
    scratchpad = [core.scratchpad.access for core in cores]
    pu = ProcessingUnit.GPU

    located = None
    if all(type(memory) is Cache for memory in memories):
        geometries = {memory.geometry for memory in memories}
        if len(geometries) == 1:
            line_bytes, num_sets = geometries.pop()
            located = [memory.access_latency_located for memory in memories]

    cycles = [0.0] * n
    for kind, a, b, c in compiled.events:
        if kind == EV_COMPUTE_RUN:
            for i in range(n):
                cy = cycles[i]
                if cy.is_integer():
                    cycles[i] = cy + a
                else:
                    for _ in range(a):
                        cy += 1.0
                    cycles[i] = cy
        elif kind == EV_MEMORY:
            is_write = bool(c)
            if located is not None:
                line = a // line_bytes
                index = line % num_sets
                tag = line // num_sets
            for i in range(n):
                cy = cycles[i] + 1.0
                smem = scratchpad[i](a)
                if smem is not None:
                    cores[i].scratchpad_hits += 1
                    cy += max(smem - 1, 0)
                    cycles[i] = cy
                    continue
                marker = explicit_addrs[i]
                explicit = bool(marker is not None and marker(a))
                issue_time = start_seconds[i] + int(cy) / hertz[i]
                if located is not None:
                    latency = located[i](
                        index, tag, a, b, is_write, pu, explicit, False, issue_time
                    )
                else:
                    latency = access[i](
                        a, b, is_write, pu, explicit, False, issue_time
                    )
                hit = hit_latency[i]
                if latency > hit:
                    stall = (latency - hit) / warps[i]
                    stall_cycles = stall * hertz[i]
                    cy += stall_cycles
                    cores[i].memory_stall_cycles += stall_cycles
                cycles[i] = cy
        else:  # EV_BRANCH
            for i in range(n):
                cycles[i] += 1.0
                cycles[i] += branch_stall[i]
                cores[i].branch_stall_cycles += branch_stall[i]
    out: List[int] = []
    for i in range(n):
        cores[i].instructions_retired += compiled.length
        out.append(int(cycles[i]))
    return out
