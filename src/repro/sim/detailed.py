"""The detailed (cycle-approximate) simulator.

Expands every segment into concrete instructions and drives them through
the branch predictor, cache hierarchy, ring, optional directory, and DRAM
of :func:`repro.sim.system.build_machine`. Full Table III traces reach
millions of instructions, so callers normally pass ``scale`` to shrink the
compute phases (communication sizes are preserved — see
:meth:`repro.trace.KernelTrace.scaled`); ablation C cross-checks this
model against the fast simulator.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.addrspace.base import AddressSpace, make_address_space
from repro.config.comm import CommParams
from repro.config.presets import CaseStudy
from repro.config.system import SystemConfig
from repro.errors import SimulationError
from repro.comm.base import CommChannel, make_channel
from repro.mem.cache.replacement import ReplacementPolicy
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.perf.compiled import SHARED_COMPILE_CACHE, SegmentCompileCache
from repro.sim.engine import run_parallel_interleaved
from repro.sim.mmu import TranslationFront, stage_trace
from repro.sim.results import PhaseTiming, SimulationResult, TimeBreakdown
from repro.sim.system import Machine, build_machine
from repro.taxonomy import AddressSpaceKind, CoherenceKind, ProcessingUnit
from repro.trace.phase import CommPhase, Direction, ParallelPhase, SequentialPhase
from repro.trace.stream import KernelTrace

__all__ = ["DetailedSimulator"]


class DetailedSimulator:
    """Instruction-by-instruction trace simulation on the Table II machine."""

    def __init__(
        self,
        system: Optional[SystemConfig] = None,
        comm_params: Optional[CommParams] = None,
        l3_policy: Optional[ReplacementPolicy] = None,
        interleave_parallel: bool = True,
        l1_prefetch: bool = False,
        gpu_mode: str = "heuristic",
        tracer: Tracer = NULL_TRACER,
        compiled: bool = True,
        interleave_quantum: int = 1,
        compile_cache: Optional[SegmentCompileCache] = None,
    ) -> None:
        self.system = system or SystemConfig()
        self.comm_params = comm_params or CommParams()
        self.l3_policy = l3_policy
        #: Attach next-line prefetchers to both L1 data caches.
        self.l1_prefetch = l1_prefetch
        #: GPU scheduler: "heuristic" (warp-divided stalls) or "warp" (a
        #: real greedy warp scheduler).
        self.gpu_mode = gpu_mode
        #: Whether parallel phases run the two cores in timestamp order
        #: (contention-aware) or back-to-back (no cross-PU contention).
        self.interleave_parallel = interleave_parallel
        #: Span tracer (disabled by default; near-zero overhead when off).
        self.tracer = tracer
        #: Execute segments through the compiled hot path
        #: (:mod:`repro.perf.compiled`). Bit-identical to the legacy
        #: generator path; ``False`` forces the legacy expansion (used by
        #: the parity suite and the perf harness baseline).
        self.compiled = compiled
        #: Interleave granularity for parallel phases; 1 is exact, larger
        #: values are a documented approximation (see
        #: :func:`repro.sim.engine.run_parallel_interleaved`).
        if interleave_quantum < 1:
            raise SimulationError(
                f"interleave quantum must be >= 1, got {interleave_quantum}"
            )
        self.interleave_quantum = interleave_quantum
        #: Segment-compilation memo; defaults to the process-wide cache so
        #: design points sharing a trace compile each segment once.
        self.compile_cache = compile_cache or SHARED_COMPILE_CACHE
        self.last_machine: Optional[Machine] = None
        self.last_mmus: "Optional[Dict[ProcessingUnit, TranslationFront]]" = None

    def run(
        self,
        trace: KernelTrace,
        case: Optional[CaseStudy] = None,
        channel: Optional[CommChannel] = None,
        scale: float = 1.0,
        system_name: Optional[str] = None,
        address_space: "AddressSpaceKind | AddressSpace | None" = None,
        coherence: "str | CoherenceKind | None" = None,
    ) -> SimulationResult:
        """Simulate ``trace`` (optionally scaled down) in detail.

        A fresh machine is built per run (caches start cold, as in the
        paper's per-benchmark simulations); it remains inspectable on
        ``self.last_machine`` afterwards.

        With ``address_space`` set (a kind or a prebuilt model), every
        memory access translates through a per-PU TLB and page table: the
        trace is first staged into regions each PU may legally reach (see
        :func:`repro.sim.mmu.stage_trace`), TLB misses pay page walks,
        first touches pay faults, and reachability violations raise.

        ``coherence`` overrides the protocol variant over the shared
        window (``"none" | "snoop" | "directory"`` or a
        :class:`~repro.taxonomy.CoherenceKind`); when omitted it derives
        from the case study's coherence kind, which keeps the historical
        behaviour (only hardware kinds build a protocol).
        """
        if case is None and channel is None:
            raise SimulationError("provide a case study or a channel")
        if channel is None:
            channel = make_channel(
                case.comm,
                params=self.comm_params,
                system=self.system,
                async_overlap=case.async_overlap,
            )
        name = system_name or (case.name if case else str(channel.mechanism))
        if scale != 1.0:
            trace = trace.scaled(scale)

        space: Optional[AddressSpace] = None
        if address_space is not None:
            space = (
                address_space
                if isinstance(address_space, AddressSpace)
                else make_address_space(address_space, self.system)
            )
            trace = stage_trace(trace, space)

        if coherence is None and case is not None:
            coherence = case.coherence
        machine = build_machine(
            self.system,
            l3_policy=self.l3_policy,
            coherence=coherence,
            l1_prefetch=self.l1_prefetch,
            gpu_mode=self.gpu_mode,
        )
        self.last_machine = machine
        self.last_mmus = None
        if space is not None:
            cpu_mmu = TranslationFront(ProcessingUnit.CPU, space, machine.cpu_core.memory)
            gpu_mmu = TranslationFront(ProcessingUnit.GPU, space, machine.gpu_core.memory)
            machine.cpu_core.memory = cpu_mmu
            machine.gpu_core.memory = gpu_mmu
            self.last_mmus = {ProcessingUnit.CPU: cpu_mmu, ProcessingUnit.GPU: gpu_mmu}

        cpu_freq = self.system.cpu.frequency
        gpu_freq = self.system.gpu.frequency

        sequential = parallel = communication = 0.0
        now = 0.0
        last_parallel_seconds = 0.0
        pending_h2d: List[CommPhase] = []
        phase_timings: List[PhaseTiming] = []

        # Hoisted tracing state: with the NULL tracer the per-phase cost is
        # a single falsy check — no track label, no timestamp math, no
        # sample dict allocations.
        tracer = self.tracer
        tracing = tracer.enabled
        track = f"{trace.name} @ {name}" if tracing else ""
        compiled = self.compiled
        compile_get = self.compile_cache.get

        def sample_memory(at_seconds: float) -> None:
            """Emit memory-hierarchy 'C' counter samples at ``at_seconds``."""
            ts = at_seconds * 1e6
            tracer.counter(
                track, "l3", "l3", ts,
                {"hits": machine.l3.hits, "misses": machine.l3.misses},
            )
            tracer.counter(track, "ring", "ring", ts, {"messages": machine.ring.messages})
            tracer.counter(
                track, "dram", "dram", ts,
                {"requests": machine.dram.stats().get("requests", 0.0)},
            )

        def resolve_pending(window: float) -> None:
            nonlocal communication, now
            for comm in pending_h2d:
                result = channel.transfer(comm, overlap_window=window)
                if tracing:
                    tracer.complete(
                        track,
                        "comm-link",
                        comm.label,
                        now * 1e6,
                        result.exposed * 1e6,
                        args={"overlapped_us": result.overlapped * 1e6},
                    )
                communication += result.exposed
                now += result.exposed
                phase_timings.append(
                    PhaseTiming(
                        label=comm.label,
                        kind="communication",
                        seconds=result.exposed,
                        overlapped_seconds=result.overlapped,
                    )
                )
            pending_h2d.clear()

        for phase in trace.phases:
            if isinstance(phase, SequentialPhase):
                cycles = machine.cpu_core.run_segment(
                    compile_get(phase.segment)
                    if compiled
                    else phase.segment.instructions(),
                    start_seconds=now,
                )
                seconds = cpu_freq.cycles_to_seconds(cycles)
                if tracing:
                    tracer.complete(track, "cpu-core", phase.label, now * 1e6, seconds * 1e6)
                sequential += seconds
                now += seconds
                if tracing:
                    sample_memory(now)
                phase_timings.append(
                    PhaseTiming(
                        label=phase.label,
                        kind="sequential",
                        seconds=seconds,
                        cpu_seconds=seconds,
                    )
                )
            elif isinstance(phase, ParallelPhase):
                if self.interleave_parallel:
                    outcome = run_parallel_interleaved(
                        machine.cpu_core,
                        machine.gpu_core,
                        compile_get(phase.cpu) if compiled else phase.cpu,
                        compile_get(phase.gpu) if compiled else phase.gpu,
                        start_seconds=now,
                        quantum=self.interleave_quantum,
                    )
                    cpu_seconds = outcome.cpu_seconds
                    gpu_seconds = outcome.gpu_seconds
                else:
                    cpu_cycles = machine.cpu_core.run_segment(
                        compile_get(phase.cpu)
                        if compiled
                        else phase.cpu.instructions(),
                        start_seconds=now,
                    )
                    gpu_cycles = machine.gpu_core.run_segment(
                        compile_get(phase.gpu)
                        if compiled
                        else phase.gpu.instructions(),
                        start_seconds=now,
                    )
                    cpu_seconds = cpu_freq.cycles_to_seconds(cpu_cycles)
                    gpu_seconds = gpu_freq.cycles_to_seconds(gpu_cycles)
                seconds = max(cpu_seconds, gpu_seconds)
                # Any deferred H2D copies overlapped with this phase.
                resolve_pending(seconds)
                if tracing:
                    tracer.complete(track, "cpu-core", phase.label, now * 1e6, cpu_seconds * 1e6)
                    tracer.complete(track, "gpu-core", phase.label, now * 1e6, gpu_seconds * 1e6)
                parallel += seconds
                now += seconds
                if tracing:
                    sample_memory(now)
                last_parallel_seconds = seconds
                phase_timings.append(
                    PhaseTiming(
                        label=phase.label,
                        kind="parallel",
                        seconds=seconds,
                        cpu_seconds=cpu_seconds,
                        gpu_seconds=gpu_seconds,
                    )
                )
            elif isinstance(phase, CommPhase):
                if phase.direction is Direction.H2D:
                    # Defer: an async channel overlaps with the phase that
                    # *follows* the copy.
                    pending_h2d.append(phase)
                    continue
                result = channel.transfer(phase, overlap_window=last_parallel_seconds)
                if tracing:
                    tracer.complete(
                        track,
                        "comm-link",
                        phase.label,
                        now * 1e6,
                        result.exposed * 1e6,
                        args={"overlapped_us": result.overlapped * 1e6},
                    )
                communication += result.exposed
                now += result.exposed
                phase_timings.append(
                    PhaseTiming(
                        label=phase.label,
                        kind="communication",
                        seconds=result.exposed,
                        overlapped_seconds=result.overlapped,
                    )
                )
            else:
                raise SimulationError(f"unknown phase type {type(phase).__name__}")
        resolve_pending(0.0)

        counters: Dict[str, float] = dict(channel.stats())
        for component, stats in machine.stats().items():
            for key, value in stats.items():
                counters[f"{component}.{key}"] = value
        if self.last_mmus is not None:
            for pu, mmu in self.last_mmus.items():
                for key, value in mmu.stats().items():
                    counters[f"mmu.{pu}.{key}"] = value
        return SimulationResult(
            kernel=trace.name,
            system=name,
            breakdown=TimeBreakdown(
                sequential=sequential,
                parallel=parallel,
                communication=communication,
            ),
            phases=tuple(phase_timings),
            counters=counters,
        )
