"""Builds the full detailed machine from a :class:`SystemConfig`.

Topology (Table II): each PU's private hierarchy reaches the shared,
tiled L3 over the ring; the L3 reaches the DRAM controllers over the ring;
a coherence protocol (optional — the ``none | snoop | directory`` axis)
keeps shared-window data coherent between the PUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Union

from repro.config.system import SystemConfig
from repro.errors import SimulationError
from repro.addrspace.layout import SHARED_BASE
from repro.mem.cache.cache import Cache
from repro.mem.cache.hierarchy import build_cpu_hierarchy, build_gpu_hierarchy
from repro.mem.cache.replacement import HybridLocalityPolicy, ReplacementPolicy
from repro.mem.coherence.api import CoherenceProtocol, protocol_for, resolve_protocol_kind
from repro.mem.coherence.directory import Directory
from repro.mem.coherence.protocol import set_block_state
from repro.mem.dram.controller import DramSystem
from repro.mem.interconnect.ring import RingNetwork, RingPath
from repro.mem.level import MemoryLevel
from repro.mem.request import AccessResult, MemRequest
from repro.sim.cpu.core import CpuCore
from repro.sim.gpu.core import GpuCore
from repro.taxonomy import CoherenceKind, ProcessingUnit

__all__ = ["Machine", "CoherentFront", "build_machine"]


class CoherentFront(MemoryLevel):
    """Per-PU front-end enforcing protocol coherence on shared addresses.

    Wraps a PU's top-level cache: accesses to the shared window consult the
    coherence protocol (directory or snoop bus) first; when the peer holds
    a conflicting copy, its private caches are invalidated and the protocol
    messages are charged as ring traversals on the critical path. The
    protocol's per-line MESI state is mirrored onto the local L1's
    :class:`~repro.mem.cache.block.CacheBlock` after each access.
    """

    def __init__(
        self,
        pu: ProcessingUnit,
        below: MemoryLevel,
        protocol: CoherenceProtocol,
        ring: RingNetwork,
        peer_caches: "list[Cache]",
        shared_predicate: Callable[[int], bool],
    ) -> None:
        self.pu = pu
        self.below = below
        self.protocol = protocol
        self.ring = ring
        self.peer_caches = peer_caches
        self.shared_predicate = shared_predicate
        self.name = f"coherent-front[{pu}]"
        self.coherence_latency = 0.0
        #: The local L1's block lookup, when the wrapped level exposes one
        #: (it always does in the standard topology).
        self._block_for = getattr(below, "block_for", None)

    def access(self, request: MemRequest) -> AccessResult:
        extra = 0.0
        shared = self.shared_predicate(request.addr)
        if shared:
            action = self.protocol.access(request.addr, self.pu, request.is_write)
            if action.invalidate_peer:
                for cache in self.peer_caches:
                    cache.invalidate_line(request.addr)
            if action.extra_latency_messages:
                extra = action.extra_latency_messages * self.ring.transit_seconds(
                    str(self.pu), str(self.pu.other), 16
                )
                self.coherence_latency += extra
        below = self.below.access(request)
        if shared and self._block_for is not None:
            block = self._block_for(request.addr)
            if block is not None:
                set_block_state(block, self.protocol.state_of(request.addr, self.pu))
        if extra == 0.0:
            return below
        return AccessResult(
            latency=below.latency + extra,
            hit_level=below.hit_level,
            was_hit=below.was_hit,
        )

    def stats(self) -> Dict[str, float]:
        data = dict(self.protocol.stats())
        data["coherence_latency_s"] = self.coherence_latency
        return data


@dataclass
class Machine:
    """The assembled detailed machine."""

    config: SystemConfig
    dram: DramSystem
    ring: RingNetwork
    l3: Cache
    cpu_l1d: Cache
    cpu_l2: Cache
    gpu_l1d: Cache
    cpu_core: CpuCore
    gpu_core: GpuCore
    directory: Optional[Directory] = None
    #: The active coherence protocol — the :attr:`directory` when the
    #: machine runs the directory variant, a
    #: :class:`~repro.mem.coherence.snoop.SnoopBus` for the snoop variant,
    #: ``None`` for ``coherence="none"``.
    protocol: Optional[CoherenceProtocol] = None

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Per-component counters, keyed by component name."""
        data: Dict[str, Dict[str, float]] = {
            "cpu_core": self.cpu_core.stats(),
            "gpu_core": self.gpu_core.stats(),
            "cpu.l1d": self.cpu_l1d.stats(),
            "cpu.l2": self.cpu_l2.stats(),
            "gpu.l1d": self.gpu_l1d.stats(),
            "l3": self.l3.stats(),
            "ring": self.ring.stats(),
            "dram": self.dram.stats(),
        }
        if self.directory is not None:
            data["directory"] = self.directory.stats()
        elif self.protocol is not None:
            data[self.protocol.kind] = self.protocol.stats()
        return data


def _is_shared_addr(addr: int) -> bool:
    return addr >= SHARED_BASE


def build_machine(
    config: Optional[SystemConfig] = None,
    l3_policy: Optional[ReplacementPolicy] = None,
    hardware_coherence: bool = False,
    shared_predicate: Callable[[int], bool] = _is_shared_addr,
    l1_prefetch: bool = False,
    gpu_mode: str = "heuristic",
    coherence: "Union[str, CoherenceKind, None]" = None,
) -> Machine:
    """Assemble the Table II machine.

    ``l3_policy`` installs a custom shared-cache replacement policy (pass a
    :class:`HybridLocalityPolicy` for the §II-B5 hybrid scheme);
    ``coherence`` selects the protocol variant over the shared window
    (``"none"``, ``"snoop"``, ``"directory"``, or a
    :class:`~repro.taxonomy.CoherenceKind`); ``hardware_coherence`` is the
    legacy boolean spelling of ``coherence="directory"`` (``coherence``
    wins when both are given); ``l1_prefetch`` attaches next-line
    prefetchers to both L1 data caches; ``gpu_mode`` selects the GPU
    scheduler (``"heuristic"`` or ``"warp"``).
    """
    from repro.mem.cache.prefetch import NextLinePrefetcher

    config = config or SystemConfig()
    dram = DramSystem(config.dram, line_bytes=config.l3.line_bytes)
    ring = RingNetwork(config.interconnect, ["cpu", "gpu", "l3", "mc"])
    l3_below = RingPath(ring, "l3", "mc", dram, payload_bytes=config.l3.line_bytes)
    l3 = Cache(config.l3, config.cpu.frequency, next_level=l3_below, policy=l3_policy)

    cpu_path = RingPath(ring, "cpu", "l3", l3, payload_bytes=config.l3.line_bytes)
    cpu_l1d, cpu_l2 = build_cpu_hierarchy(
        config.cpu,
        cpu_path,
        l1_prefetcher=NextLinePrefetcher() if l1_prefetch else None,
    )
    gpu_path = RingPath(ring, "gpu", "l3", l3, payload_bytes=config.l3.line_bytes)
    gpu_l1d = build_gpu_hierarchy(
        config.gpu,
        gpu_path,
        l1_prefetcher=NextLinePrefetcher() if l1_prefetch else None,
    )

    if coherence is None:
        protocol_kind = "directory" if hardware_coherence else "none"
    else:
        protocol_kind = resolve_protocol_kind(coherence)
    protocol = protocol_for(protocol_kind, config.l3.line_bytes)
    cpu_top: MemoryLevel = cpu_l1d
    gpu_top: MemoryLevel = gpu_l1d
    if protocol is not None:
        cpu_top = CoherentFront(
            ProcessingUnit.CPU, cpu_l1d, protocol, ring, [gpu_l1d], shared_predicate
        )
        gpu_top = CoherentFront(
            ProcessingUnit.GPU, gpu_l1d, protocol, ring, [cpu_l1d, cpu_l2], shared_predicate
        )

    cpu_core = CpuCore(config.cpu, cpu_top)
    gpu_core = GpuCore(config.gpu, gpu_top, mode=gpu_mode)
    return Machine(
        config=config,
        dram=dram,
        ring=ring,
        l3=l3,
        cpu_l1d=cpu_l1d,
        cpu_l2=cpu_l2,
        gpu_l1d=gpu_l1d,
        cpu_core=cpu_core,
        gpu_core=gpu_core,
        directory=protocol if isinstance(protocol, Directory) else None,
        protocol=protocol,
    )
