"""The fast (segment-analytic) simulator.

Reproduces the paper's quantitative methodology directly: compute phases
are priced by the analytic core models; communication phases are priced by
the case study's channel with the Table IV latencies; asynchronous
channels may hide copy time under the adjacent parallel phase (GMAC).

Optionally, an :class:`~repro.taxonomy.AddressSpaceKind` adds the *extra
instructions* each address space needs around communications (the §V-B
experiment, Figure 7): a handful of API instructions per communication,
which is exactly why that figure is flat.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.addrspace.layout import SHARED_BASE
from repro.config.comm import CommParams
from repro.config.presets import CaseStudy
from repro.config.system import SystemConfig
from repro.errors import SimulationError
from repro.comm.base import CommChannel, make_channel
from repro.mem.coherence.api import resolve_protocol_kind
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.sim.analytic import AnalyticTiming
from repro.sim.results import PhaseTiming, SimulationResult, TimeBreakdown
from repro.taxonomy import AddressSpaceKind, CoherenceKind, CommMechanism
from repro.trace.phase import CommPhase, ParallelPhase, Segment, SequentialPhase
from repro.trace.stream import KernelTrace

__all__ = ["FastSimulator", "SPACE_OVERHEAD_INSTRUCTIONS"]

#: Extra CPU instructions per communication to manage the address space —
#: the Figure 7 experiment's knob. Roughly Table V's per-space comm lines
#: times ~10 machine instructions per source line; "very small compared to
#: the amount of computation" (§V-B).
SPACE_OVERHEAD_INSTRUCTIONS: Dict[AddressSpaceKind, int] = {
    AddressSpaceKind.UNIFIED: 0,
    AddressSpaceKind.PARTIALLY_SHARED: 30,
    AddressSpaceKind.ADSM: 50,
    AddressSpaceKind.DISJOINT: 80,
}


class FastSimulator:
    """Segment-analytic trace simulator."""

    def __init__(
        self,
        system: Optional[SystemConfig] = None,
        comm_params: Optional[CommParams] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.system = system or SystemConfig()
        self.comm_params = comm_params or CommParams()
        self.timing = AnalyticTiming(self.system)
        #: Span tracer (disabled by default; near-zero overhead when off).
        self.tracer = tracer

    # -- channel selection ----------------------------------------------------

    def _channel_for(self, case: CaseStudy) -> CommChannel:
        return make_channel(
            case.comm,
            params=self.comm_params,
            system=self.system,
            async_overlap=case.async_overlap,
        )

    # -- main entry point -------------------------------------------------------

    def run(
        self,
        trace: KernelTrace,
        case: Optional[CaseStudy] = None,
        channel: Optional[CommChannel] = None,
        address_space: Optional[AddressSpaceKind] = None,
        system_name: Optional[str] = None,
        coherence: "str | CoherenceKind | None" = None,
    ) -> SimulationResult:
        """Simulate ``trace`` on a case-study system (or explicit channel).

        Exactly one of ``case``/``channel`` selects the communication
        mechanism; ``address_space`` adds the per-communication space
        management instructions (Figure 7 experiment).

        ``coherence`` publishes analytic invalidation-traffic estimates
        (``coherence.estimated_*`` counters) for the requested protocol
        variant so metrics-diffing fast against detailed runs stays
        meaningful on coherent design points. It must be requested
        explicitly — unlike the detailed simulator, the case study's
        coherence kind is deliberately *not* consulted, so every
        historical fast-path figure stays byte-identical.
        """
        if case is None and channel is None:
            raise SimulationError("provide a case study or a channel")
        if channel is None:
            channel = self._channel_for(case)
        name = system_name or (case.name if case else str(channel.mechanism))

        # Pass 1: price every compute phase.
        compute_seconds: Dict[int, Tuple[float, float]] = {}
        for index, phase in enumerate(trace.phases):
            if isinstance(phase, SequentialPhase):
                # Serial code runs on one core regardless of num_cores.
                t = self.timing.cpu_segment_seconds(phase.segment, parallel=False)
                compute_seconds[index] = (t, 0.0)
            elif isinstance(phase, ParallelPhase):
                cpu_t = self.timing.cpu_segment_seconds(phase.cpu)
                gpu_t = self.timing.gpu_segment_seconds(phase.gpu)
                compute_seconds[index] = (cpu_t, gpu_t)

        # Pass 2: price communications, offering adjacent parallel phases
        # as overlap windows to asynchronous channels. Each parallel phase
        # has a finite overlap budget (its own duration): an H2D copy before
        # it and a D2H copy after it draw from the *same* budget, so the
        # total communication hidden under one phase can never exceed the
        # time that phase actually runs.
        overlap_budget: Dict[int, float] = {
            index: max(cpu_t, gpu_t)
            for index, (cpu_t, gpu_t) in compute_seconds.items()
            if isinstance(trace.phases[index], ParallelPhase)
        }
        sequential = parallel = communication = 0.0
        phase_timings: List[PhaseTiming] = []
        # Analytic memory-event estimates published alongside the timing.
        mem_ops = est_misses = est_dram = 0.0
        tracer = self.tracer
        track = f"{trace.name} @ {name}" if tracer.enabled else ""
        comm_track = (
            "dma-engine" if channel.mechanism is CommMechanism.DMA_ASYNC else "comm-link"
        )
        now = 0.0
        for index, phase in enumerate(trace.phases):
            if isinstance(phase, SequentialPhase):
                t, _ = compute_seconds[index]
                sequential += t
                phase_timings.append(
                    PhaseTiming(label=phase.label, kind="sequential", seconds=t, cpu_seconds=t)
                )
                o, m, d = self.timing.estimated_memory_counters(phase.segment)
                mem_ops += o
                est_misses += m
                est_dram += d
                if tracer.enabled:
                    tracer.complete(track, "cpu-core", phase.label, now * 1e6, t * 1e6)
                now += t
            elif isinstance(phase, ParallelPhase):
                cpu_t, gpu_t = compute_seconds[index]
                t = max(cpu_t, gpu_t)
                parallel += t
                phase_timings.append(
                    PhaseTiming(
                        label=phase.label,
                        kind="parallel",
                        seconds=t,
                        cpu_seconds=cpu_t,
                        gpu_seconds=gpu_t,
                    )
                )
                for segment in (phase.cpu, phase.gpu):
                    o, m, d = self.timing.estimated_memory_counters(segment)
                    mem_ops += o
                    est_misses += m
                    est_dram += d
                if tracer.enabled:
                    tracer.complete(track, "cpu-core", phase.label, now * 1e6, cpu_t * 1e6)
                    tracer.complete(track, "gpu-core", phase.label, now * 1e6, gpu_t * 1e6)
                now += t
            elif isinstance(phase, CommPhase):
                target = self._overlap_phase_index(trace, index)
                window = overlap_budget.get(target, 0.0) if target is not None else 0.0
                result = channel.transfer(phase, overlap_window=window)
                if target is not None and result.overlapped > 0.0:
                    overlap_budget[target] = max(
                        0.0, overlap_budget[target] - result.overlapped
                    )
                communication += result.exposed
                phase_timings.append(
                    PhaseTiming(
                        label=phase.label,
                        kind="communication",
                        seconds=result.exposed,
                        overlapped_seconds=result.overlapped,
                    )
                )
                if tracer.enabled:
                    tracer.complete(
                        track,
                        comm_track,
                        phase.label,
                        now * 1e6,
                        result.exposed * 1e6,
                        args={"overlapped_us": result.overlapped * 1e6},
                    )
                now += result.exposed
            else:
                raise SimulationError(f"unknown phase type {type(phase).__name__}")

        # Address-space management instructions (Figure 7 experiment).
        if address_space is not None:
            extra = SPACE_OVERHEAD_INSTRUCTIONS[address_space] * trace.num_communications
            extra_seconds = self.system.cpu.frequency.cycles_to_seconds(extra)
            sequential += extra_seconds

        counters: Dict[str, float] = dict(channel.stats())
        counters["cache.memory_ops"] = mem_ops
        counters["cache.estimated_misses"] = est_misses
        counters["dram.estimated_accesses"] = est_dram
        if coherence is not None:
            kind = resolve_protocol_kind(coherence)
            if kind != "none":
                counters.update(self.estimated_coherence_counters(trace, kind))
        return SimulationResult(
            kernel=trace.name,
            system=name,
            breakdown=TimeBreakdown(
                sequential=sequential,
                parallel=parallel,
                communication=communication,
            ),
            phases=tuple(phase_timings),
            counters=counters,
        )

    # -- analytic coherence-traffic estimate ----------------------------------

    def estimated_coherence_counters(
        self, trace: KernelTrace, kind: str
    ) -> Dict[str, float]:
        """Analytic invalidation-traffic estimate for protocol ``kind``.

        Mirrors the streaming-miss philosophy of
        :meth:`AnalyticTiming.estimated_memory_counters`: each parallel
        phase's shared-window segments (``base_addr`` inside the shared
        window) cold-fill one protocol consultation per cache line of
        footprint, and where the two PUs' footprints overlap, every
        writing PU invalidates the peer once per co-resident line. Message
        counts follow the variants' cost models — a snoop invalidation
        rides the upgrade broadcast (1 message), a directory invalidation
        is a lookup + inv + ack exchange (3 messages).
        """
        line = float(self.system.l3.line_bytes)
        shared_lines = invalidations = messages = 0.0
        for phase in trace.phases:
            if not isinstance(phase, ParallelPhase):
                continue
            cpu, gpu = phase.cpu, phase.gpu
            cpu_lines = self._shared_lines(cpu, line)
            gpu_lines = self._shared_lines(gpu, line)
            shared_lines += cpu_lines + gpu_lines
            # One consultation (snoop broadcast / directory lookup) per
            # cold fill of a shared line.
            messages += cpu_lines + gpu_lines
            if cpu_lines == 0.0 or gpu_lines == 0.0:
                continue
            lo = max(cpu.base_addr, gpu.base_addr)
            hi = min(
                cpu.base_addr + cpu.footprint_bytes,
                gpu.base_addr + gpu.footprint_bytes,
            )
            co_lines = max(0.0, (hi - lo) / line)
            writers = (cpu.mix.store_ops > 0) + (gpu.mix.store_ops > 0)
            inv = co_lines * writers
            invalidations += inv
            messages += inv * (1.0 if kind == "snoop" else 3.0)
        return {
            "coherence.estimated_shared_lines": shared_lines,
            "coherence.estimated_invalidations": invalidations,
            "coherence.estimated_messages": messages,
        }

    @staticmethod
    def _shared_lines(segment: Segment, line: float) -> float:
        """Cache lines of shared-window footprint a segment touches."""
        if segment.base_addr < SHARED_BASE or segment.mix.memory_ops == 0:
            return 0.0
        return segment.footprint_bytes / line

    @staticmethod
    def _overlap_phase_index(trace: KernelTrace, comm_index: int) -> Optional[int]:
        """The parallel phase an async copy at ``comm_index`` hides under.

        Host-to-device copies overlap the *following* parallel phase
        (double buffering: the kernel starts on early chunks while later
        chunks stream in); device-to-host copies overlap the *preceding*
        one (results stream out as they finish). How much time the copy may
        actually claim is that phase's remaining overlap budget, tracked by
        :meth:`run`.
        """
        phases = trace.phases
        # Look forward for H2D, backward for D2H.
        from repro.trace.phase import Direction

        comm = phases[comm_index]
        assert isinstance(comm, CommPhase)
        indices = (
            range(comm_index + 1, len(phases))
            if comm.direction is Direction.H2D
            else range(comm_index - 1, -1, -1)
        )
        for j in indices:
            if isinstance(phases[j], ParallelPhase):
                return j
            if isinstance(phases[j], CommPhase):
                break
        return None
