"""Trace-driven simulators.

Two fidelities share the same inputs (a :class:`repro.trace.KernelTrace`
plus a system description) and the same output
(:class:`~repro.sim.results.SimulationResult` with the paper's
sequential/parallel/communication breakdown):

- :class:`~repro.sim.fast.FastSimulator` — segment-analytic; what the
  figure-regeneration benchmarks use (full Table III instruction counts in
  microseconds of host time);
- :class:`~repro.sim.detailed.DetailedSimulator` — cycle-approximate,
  drives every instruction through the branch predictors, cache hierarchy,
  ring, directory, and DRAM; used on scaled traces and cross-checked
  against the fast model (ablation C).
"""

from repro.sim.clock import ClockDomain
from repro.sim.results import PhaseTiming, SimulationResult, TimeBreakdown
from repro.sim.fast import FastSimulator
from repro.sim.detailed import DetailedSimulator

__all__ = [
    "ClockDomain",
    "TimeBreakdown",
    "PhaseTiming",
    "SimulationResult",
    "FastSimulator",
    "DetailedSimulator",
]
