"""The interleaving engine for contention-aware parallel phases.

Running the two cores back-to-back would let the CPU's entire phase hit
the shared L3 and DRAM before the GPU's first access — no contention, and
cache state polluted in the wrong order. The engine instead advances
whichever core is *behind in wall-clock time*, so concurrent requests
reach the shared hierarchy (ring, L3, FR-FCFS controllers) in timestamp
order, and the DRAM bus backlog each core sees includes the other core's
traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Union

from repro.errors import SimulationError
from repro.perf.compiled import CompiledSegment
from repro.sim.cpu.core import CpuCore
from repro.sim.gpu.core import GpuCore
from repro.trace.phase import Segment

__all__ = ["ParallelOutcome", "run_parallel_interleaved"]


@dataclass(frozen=True)
class ParallelOutcome:
    """Per-side wall-clock durations of one parallel phase."""

    cpu_seconds: float
    gpu_seconds: float

    @property
    def seconds(self) -> float:
        return max(self.cpu_seconds, self.gpu_seconds)


def _stepper(
    core,
    segment: "Union[Segment, CompiledSegment]",
    start_seconds: float,
    explicit_addrs: Optional[object],
) -> Iterator[float]:
    """A per-instruction cycle stepper for either segment representation."""
    if isinstance(segment, CompiledSegment):
        return core.step_compiled(segment, start_seconds, explicit_addrs)
    return core.run_stepwise(segment.instructions(), start_seconds, explicit_addrs)


def _thinned(steps: Iterator[float], quantum: int) -> Iterator[float]:
    """Yield every ``quantum``-th step, always including the final one."""
    count = 0
    last = 0.0
    for last in steps:
        count += 1
        if count % quantum == 0:
            yield last
    if count % quantum:
        yield last


def run_parallel_interleaved(
    cpu_core: CpuCore,
    gpu_core: GpuCore,
    cpu_segment: "Union[Segment, CompiledSegment]",
    gpu_segment: "Union[Segment, CompiledSegment]",
    start_seconds: float = 0.0,
    explicit_addrs: Optional[object] = None,
    quantum: int = 1,
) -> ParallelOutcome:
    """Run both sides of a parallel phase with timestamp-ordered accesses.

    Segments may be given as plain :class:`~repro.trace.phase.Segment`
    objects (expanded through the legacy generator) or pre-compiled
    :class:`~repro.perf.compiled.CompiledSegment` streams (the fast path).

    ``quantum`` is the interleave granularity in instructions: 1 (the
    default) re-compares wall-clock time after every instruction and is
    exact; a larger quantum advances a core up to ``quantum`` instructions
    between comparisons, a documented approximation that coarsens the
    contention ordering (and therefore perturbs shared-hierarchy timing)
    in exchange for fewer generator switches.
    """
    if quantum < 1:
        raise SimulationError(f"interleave quantum must be >= 1, got {quantum}")
    cpu_to_seconds = cpu_core.config.frequency.cycles_to_seconds
    gpu_to_seconds = gpu_core.config.frequency.cycles_to_seconds
    cpu_steps = _stepper(cpu_core, cpu_segment, start_seconds, explicit_addrs)
    gpu_steps = _stepper(gpu_core, gpu_segment, start_seconds, explicit_addrs)
    if quantum > 1:
        cpu_steps = _thinned(cpu_steps, quantum)
        gpu_steps = _thinned(gpu_steps, quantum)

    cpu_t = gpu_t = 0.0
    cpu_done = gpu_done = False
    while not (cpu_done and gpu_done):
        advance_cpu = not cpu_done and (gpu_done or cpu_t <= gpu_t)
        if advance_cpu:
            try:
                cpu_t = cpu_to_seconds(next(cpu_steps))
            except StopIteration:
                cpu_done = True
        else:
            try:
                gpu_t = gpu_to_seconds(next(gpu_steps))
            except StopIteration:
                gpu_done = True
    return ParallelOutcome(cpu_seconds=cpu_t, gpu_seconds=gpu_t)
