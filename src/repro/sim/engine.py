"""The interleaving engine for contention-aware parallel phases.

Running the two cores back-to-back would let the CPU's entire phase hit
the shared L3 and DRAM before the GPU's first access — no contention, and
cache state polluted in the wrong order. The engine instead advances
whichever core is *behind in wall-clock time*, so concurrent requests
reach the shared hierarchy (ring, L3, FR-FCFS controllers) in timestamp
order, and the DRAM bus backlog each core sees includes the other core's
traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.cpu.core import CpuCore
from repro.sim.gpu.core import GpuCore
from repro.trace.phase import Segment

__all__ = ["ParallelOutcome", "run_parallel_interleaved"]


@dataclass(frozen=True)
class ParallelOutcome:
    """Per-side wall-clock durations of one parallel phase."""

    cpu_seconds: float
    gpu_seconds: float

    @property
    def seconds(self) -> float:
        return max(self.cpu_seconds, self.gpu_seconds)


def run_parallel_interleaved(
    cpu_core: CpuCore,
    gpu_core: GpuCore,
    cpu_segment: Segment,
    gpu_segment: Segment,
    start_seconds: float = 0.0,
    explicit_addrs: Optional[object] = None,
) -> ParallelOutcome:
    """Run both sides of a parallel phase with timestamp-ordered accesses."""
    cpu_freq = cpu_core.config.frequency
    gpu_freq = gpu_core.config.frequency
    cpu_steps = cpu_core.run_stepwise(
        cpu_segment.instructions(), start_seconds, explicit_addrs
    )
    gpu_steps = gpu_core.run_stepwise(
        gpu_segment.instructions(), start_seconds, explicit_addrs
    )

    cpu_t = gpu_t = 0.0
    cpu_done = gpu_done = False
    while not (cpu_done and gpu_done):
        advance_cpu = not cpu_done and (gpu_done or cpu_t <= gpu_t)
        if advance_cpu:
            try:
                cpu_t = cpu_freq.cycles_to_seconds(next(cpu_steps))
            except StopIteration:
                cpu_done = True
        else:
            try:
                gpu_t = gpu_freq.cycles_to_seconds(next(gpu_steps))
            except StopIteration:
                gpu_done = True
    return ParallelOutcome(cpu_seconds=cpu_t, gpu_seconds=gpu_t)
