"""Clock domains for the heterogeneous system.

The CPU runs at 3.5 GHz and the GPU at 1.5 GHz (Table II); each core model
accumulates its own cycles and converts to wall-clock seconds only at phase
boundaries, where the domains meet.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.units import Frequency

__all__ = ["ClockDomain"]


@dataclass
class ClockDomain:
    """A named clock accumulating cycles."""

    name: str
    frequency: Frequency
    cycles: int = 0

    def advance(self, cycles: int) -> None:
        """Advance the domain by a non-negative cycle count."""
        if cycles < 0:
            raise SimulationError(f"{self.name}: cannot advance by {cycles} cycles")
        self.cycles += cycles

    @property
    def seconds(self) -> float:
        """Wall-clock time accumulated in this domain."""
        return self.frequency.cycles_to_seconds(self.cycles)

    def reset(self) -> None:
        self.cycles = 0
