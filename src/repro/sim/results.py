"""Simulation results: the sequential/parallel/communication breakdown.

The paper's Figure 5 divides execution time into exactly these three
categories; Figure 6 shows the communication component alone. Every
simulator in this package produces a :class:`SimulationResult` carrying the
breakdown plus per-phase detail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Tuple

from repro.errors import SimulationError
from repro.obs.metrics import MetricSnapshot

__all__ = ["TimeBreakdown", "PhaseTiming", "SimulationResult"]


@dataclass(frozen=True)
class TimeBreakdown:
    """Seconds spent per Figure 5 category."""

    sequential: float = 0.0
    parallel: float = 0.0
    communication: float = 0.0

    def __post_init__(self) -> None:
        for name in ("sequential", "parallel", "communication"):
            if getattr(self, name) < 0:
                raise SimulationError(f"{name} time must be non-negative")

    @property
    def total(self) -> float:
        return self.sequential + self.parallel + self.communication

    @property
    def communication_fraction(self) -> float:
        """Share of total time spent communicating (Figure 6's quantity,
        normalized)."""
        return self.communication / self.total if self.total else 0.0

    def __add__(self, other: "TimeBreakdown") -> "TimeBreakdown":
        if not isinstance(other, TimeBreakdown):
            return NotImplemented
        return TimeBreakdown(
            sequential=self.sequential + other.sequential,
            parallel=self.parallel + other.parallel,
            communication=self.communication + other.communication,
        )

    def normalized_to(self, reference: "TimeBreakdown") -> Tuple[float, float, float]:
        """(seq, par, comm) scaled so that ``reference.total`` is 1.0 —
        how Figure 5 plots its bars."""
        if reference.total <= 0:
            raise SimulationError("reference breakdown has zero total time")
        return (
            self.sequential / reference.total,
            self.parallel / reference.total,
            self.communication / reference.total,
        )


@dataclass(frozen=True)
class PhaseTiming:
    """Timing detail for one trace phase."""

    label: str
    kind: str
    seconds: float
    cpu_seconds: float = 0.0
    gpu_seconds: float = 0.0
    overlapped_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise SimulationError("phase time must be non-negative")


@dataclass(frozen=True)
class SimulationResult:
    """Everything a run produced.

    ``counters`` is an immutable :class:`~repro.obs.metrics.MetricSnapshot`
    (plain dicts passed by callers are converted on construction), so a
    result is fully hashable and can be shared across
    :class:`~repro.exec.cache.ResultCache` hits without aliasing risks.

    ``degraded`` marks a result produced by a fallback simulator — the
    detailed machine failed and the fast model answered instead (see
    :func:`~repro.exec.job.run_sim_job`).
    """

    kernel: str
    system: str
    breakdown: TimeBreakdown
    phases: Tuple[PhaseTiming, ...] = ()
    counters: Mapping[str, float] = field(default_factory=MetricSnapshot)
    degraded: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.counters, MetricSnapshot):
            object.__setattr__(self, "counters", MetricSnapshot(self.counters))

    @property
    def total_seconds(self) -> float:
        return self.breakdown.total

    def speedup_over(self, other: "SimulationResult") -> float:
        """How much faster this run is than ``other`` (>1 means faster)."""
        if self.total_seconds <= 0:
            raise SimulationError("cannot compute speedup of a zero-time run")
        return other.total_seconds / self.total_seconds

    def summary(self) -> str:
        """One-line human-readable summary."""
        b = self.breakdown
        return (
            f"{self.kernel} on {self.system}: {b.total * 1e6:.1f} us "
            f"(seq {b.sequential * 1e6:.1f}, par {b.parallel * 1e6:.1f}, "
            f"comm {b.communication * 1e6:.1f}; comm {b.communication_fraction:.1%})"
            + (" [degraded]" if self.degraded else "")
        )
