"""A gshare branch predictor (the paper's CPU predictor).

Classic gshare: the global history register XORed with the branch PC
indexes a table of 2-bit saturating counters.
"""

from __future__ import annotations

from typing import Dict, List

from repro.config.system import BranchPredictorConfig

__all__ = ["GsharePredictor"]


class GsharePredictor:
    """2-bit-counter gshare."""

    def __init__(self, config: "BranchPredictorConfig | None" = None) -> None:
        self.config = config or BranchPredictorConfig()
        self._table: List[int] = [2] * self.config.table_entries  # weakly taken
        self._history = 0
        self._history_mask = (1 << self.config.history_bits) - 1
        self._index_mask = self.config.table_entries - 1
        self.predictions = 0
        self.mispredictions = 0

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict the branch at ``pc``; train on the actual outcome.

        Returns True when the prediction was correct.
        """
        index = (pc ^ self._history) & self._index_mask
        counter = self._table[index]
        prediction = counter >= 2
        correct = prediction == taken
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        # Train the counter and shift the history.
        if taken and counter < 3:
            self._table[index] = counter + 1
        elif not taken and counter > 0:
            self._table[index] = counter - 1
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        return correct

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.predictions if self.predictions else 0.0

    def stats(self) -> Dict[str, int]:
        return {
            "predictions": self.predictions,
            "mispredictions": self.mispredictions,
        }
