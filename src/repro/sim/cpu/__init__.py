"""The out-of-order CPU core model (Table II, CPU column)."""

from repro.sim.cpu.branch import GsharePredictor
from repro.sim.cpu.core import CpuCore

__all__ = ["GsharePredictor", "CpuCore"]
