"""Out-of-order CPU core timing model.

A trace-driven approximation of a Sandy-Bridge-class core:

- up to ``issue_width`` instructions issue per cycle;
- branches run through a real gshare predictor; each misprediction costs
  the pipeline-refill penalty;
- loads/stores access the cache hierarchy; L1 hits are considered fully
  pipelined, while miss latency is divided by an MLP factor — the
  out-of-order window keeps several misses in flight, so the visible stall
  per miss is a fraction of the raw latency.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional

from repro.config.system import CpuConfig
from repro.errors import SimulationError
from repro.mem.level import MemoryLevel
from repro.mem.request import MemRequest
from repro.sim.cpu.branch import GsharePredictor
from repro.taxonomy import ProcessingUnit

__all__ = ["CpuCore"]

#: Memory-level parallelism the OoO window sustains on streaming code.
DEFAULT_MLP = 4.0


class CpuCore:
    """One out-of-order core attached to a data-cache hierarchy."""

    def __init__(
        self,
        config: CpuConfig,
        memory: MemoryLevel,
        mlp: float = DEFAULT_MLP,
    ) -> None:
        if mlp < 1.0:
            raise SimulationError("MLP factor must be >= 1")
        self.config = config
        self.memory = memory
        self.mlp = mlp
        self.predictor = GsharePredictor(config.branch_predictor)
        self.instructions_retired = 0
        self.memory_stall_cycles = 0.0
        self.branch_stall_cycles = 0

    def run_stepwise(
        self,
        instructions: Iterable,
        start_seconds: float = 0.0,
        explicit_addrs: Optional[object] = None,
    ) -> Iterator[float]:
        """Execute instructions one at a time, yielding cumulative cycles.

        The interleaving engine alternates between the two cores' steppers
        so that concurrent accesses reach the shared L3/DRAM in timestamp
        order (contention-aware parallel phases). The last yielded value is
        the segment's final cycle count, including the trailing partial
        issue group.

        ``explicit_addrs`` is an optional predicate ``addr -> bool`` that
        marks accesses to explicitly managed data (sets the locality bit in
        the caches).
        """
        freq = self.config.frequency
        issue_width = self.config.issue_width
        penalty = self.config.branch_mispredict_penalty
        hit_latency = freq.cycles_to_seconds(self.config.l1d.latency)

        cycles = 0.0
        slot = 0
        count = 0
        pc = 0x400000
        for inst in instructions:
            count += 1
            pc += 4
            slot += 1
            if slot >= issue_width:
                cycles += 1
                slot = 0
            opcode = inst.opcode
            if opcode.is_memory:
                explicit = bool(explicit_addrs and explicit_addrs(inst.addr))
                request = MemRequest(
                    addr=inst.addr,
                    size=inst.size,
                    is_write=opcode.is_store,
                    pu=ProcessingUnit.CPU,
                    explicit=explicit,
                    issue_time=start_seconds + freq.cycles_to_seconds(int(cycles)),
                )
                result = self.memory.access(request)
                if result.latency > hit_latency:
                    stall = (result.latency - hit_latency) / self.mlp
                    stall_cycles = stall * freq.hertz
                    cycles += stall_cycles
                    self.memory_stall_cycles += stall_cycles
            elif opcode.value == "branch":
                if not self.predictor.predict_and_update(pc, inst.taken):
                    cycles += penalty
                    self.branch_stall_cycles += penalty
                    slot = 0
            yield cycles
        if slot:
            cycles += 1
        self.instructions_retired += count
        yield cycles

    def run_segment(
        self,
        instructions: Iterable,
        start_seconds: float = 0.0,
        explicit_addrs: Optional[object] = None,
    ) -> int:
        """Execute a whole stream; returns cycles consumed."""
        cycles = 0.0
        for cycles in self.run_stepwise(instructions, start_seconds, explicit_addrs):
            pass
        return int(cycles)

    @property
    def ipc(self) -> float:
        """Retired instructions per cycle so far (approximate)."""
        total_cycles = (
            self.instructions_retired / self.config.issue_width
            + self.memory_stall_cycles
            + self.branch_stall_cycles
        )
        return self.instructions_retired / total_cycles if total_cycles else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "instructions": self.instructions_retired,
            "memory_stall_cycles": self.memory_stall_cycles,
            "branch_stall_cycles": self.branch_stall_cycles,
            "branch_mispredictions": self.predictor.mispredictions,
        }
