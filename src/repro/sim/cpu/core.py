"""Out-of-order CPU core timing model.

A trace-driven approximation of a Sandy-Bridge-class core:

- up to ``issue_width`` instructions issue per cycle;
- branches run through a real gshare predictor; each misprediction costs
  the pipeline-refill penalty;
- loads/stores access the cache hierarchy; L1 hits are considered fully
  pipelined, while miss latency is divided by an MLP factor — the
  out-of-order window keeps several misses in flight, so the visible stall
  per miss is a fraction of the raw latency.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.config.system import CpuConfig
from repro.errors import SimulationError
from repro.mem.cache.cache import Cache
from repro.mem.level import MemoryLevel
from repro.mem.request import MemRequest
from repro.perf.compiled import EV_COMPUTE_RUN, EV_MEMORY, CompiledSegment
from repro.sim.cpu.branch import GsharePredictor
from repro.taxonomy import ProcessingUnit

__all__ = ["CpuCore", "run_compiled_batch"]

#: Memory-level parallelism the OoO window sustains on streaming code.
DEFAULT_MLP = 4.0


class CpuCore:
    """One out-of-order core attached to a data-cache hierarchy."""

    def __init__(
        self,
        config: CpuConfig,
        memory: MemoryLevel,
        mlp: float = DEFAULT_MLP,
    ) -> None:
        if mlp < 1.0:
            raise SimulationError("MLP factor must be >= 1")
        self.config = config
        self.memory = memory
        self.mlp = mlp
        self.predictor = GsharePredictor(config.branch_predictor)
        self.instructions_retired = 0
        self.memory_stall_cycles = 0.0
        self.branch_stall_cycles = 0

    def run_stepwise(
        self,
        instructions: Iterable,
        start_seconds: float = 0.0,
        explicit_addrs: Optional[object] = None,
    ) -> Iterator[float]:
        """Execute instructions one at a time, yielding cumulative cycles.

        The interleaving engine alternates between the two cores' steppers
        so that concurrent accesses reach the shared L3/DRAM in timestamp
        order (contention-aware parallel phases). The last yielded value is
        the segment's final cycle count, including the trailing partial
        issue group.

        ``explicit_addrs`` is an optional predicate ``addr -> bool`` that
        marks accesses to explicitly managed data (sets the locality bit in
        the caches).

        A :class:`~repro.perf.compiled.CompiledSegment` may be passed in
        place of the instruction iterable; it is stepped through the
        batched decoder (:meth:`step_compiled`), with identical yields.
        """
        if isinstance(instructions, CompiledSegment):
            yield from self.step_compiled(instructions, start_seconds, explicit_addrs)
            return
        freq = self.config.frequency
        issue_width = self.config.issue_width
        penalty = self.config.branch_mispredict_penalty
        hit_latency = freq.cycles_to_seconds(self.config.l1d.latency)

        cycles = 0.0
        slot = 0
        count = 0
        pc = 0x400000
        for inst in instructions:
            count += 1
            pc += 4
            slot += 1
            if slot >= issue_width:
                cycles += 1
                slot = 0
            opcode = inst.opcode
            if opcode.is_memory:
                explicit = bool(explicit_addrs and explicit_addrs(inst.addr))
                request = MemRequest(
                    addr=inst.addr,
                    size=inst.size,
                    is_write=opcode.is_store,
                    pu=ProcessingUnit.CPU,
                    explicit=explicit,
                    issue_time=start_seconds + freq.cycles_to_seconds(int(cycles)),
                )
                result = self.memory.access(request)
                if result.latency > hit_latency:
                    stall = (result.latency - hit_latency) / self.mlp
                    stall_cycles = stall * freq.hertz
                    cycles += stall_cycles
                    self.memory_stall_cycles += stall_cycles
            elif opcode.value == "branch":
                if not self.predictor.predict_and_update(pc, inst.taken):
                    cycles += penalty
                    self.branch_stall_cycles += penalty
                    slot = 0
            yield cycles
        if slot:
            cycles += 1
        self.instructions_retired += count
        yield cycles

    def run_compiled(
        self,
        compiled: CompiledSegment,
        start_seconds: float = 0.0,
        explicit_addrs: Optional[object] = None,
    ) -> int:
        """Batched fast path over a compiled segment; returns cycles.

        Cycle-for-cycle identical to draining :meth:`run_stepwise` on the
        segment's instruction stream (the ``tests/perf`` parity suite pins
        this), but executes whole compute runs per event record and never
        constructs an :class:`~repro.trace.instruction.Instruction` or
        (on an L1 hit) a :class:`~repro.mem.request.MemRequest`.

        Exactness notes: issue-group wraps are added one ``+= 1.0`` at a
        time whenever ``cycles`` carries a fractional part (float addition
        is not associative, and the legacy loop adds sequentially); when
        ``cycles`` is integer-valued the batched add is exact. Stalls
        accumulate onto the instance attributes per miss, in stream order,
        exactly like the legacy loop.
        """
        freq = self.config.frequency
        hertz = freq.hertz
        issue_width = self.config.issue_width
        penalty = self.config.branch_mispredict_penalty
        hit_latency = freq.cycles_to_seconds(self.config.l1d.latency)
        mlp = self.mlp
        access_latency = self.memory.access_latency
        predict_and_update = self.predictor.predict_and_update
        pu = ProcessingUnit.CPU

        cycles = 0.0
        slot = 0
        for kind, a, b, c in compiled.events:
            if kind == EV_COMPUTE_RUN:
                slot += a
                wraps = slot // issue_width
                slot -= wraps * issue_width
                if wraps:
                    if cycles.is_integer():
                        cycles += wraps
                    else:
                        for _ in range(wraps):
                            cycles += 1.0
            elif kind == EV_MEMORY:
                slot += 1
                if slot >= issue_width:
                    cycles += 1.0
                    slot = 0
                explicit = bool(explicit_addrs is not None and explicit_addrs(a))
                latency = access_latency(
                    a,
                    b,
                    bool(c),
                    pu,
                    explicit,
                    False,
                    start_seconds + int(cycles) / hertz,
                )
                if latency > hit_latency:
                    stall = (latency - hit_latency) / mlp
                    stall_cycles = stall * hertz
                    cycles += stall_cycles
                    self.memory_stall_cycles += stall_cycles
            else:  # EV_BRANCH
                slot += 1
                if slot >= issue_width:
                    cycles += 1.0
                    slot = 0
                if not predict_and_update(b, bool(a)):
                    cycles += penalty
                    self.branch_stall_cycles += penalty
                    slot = 0
        if slot:
            cycles += 1
        self.instructions_retired += compiled.length
        return int(cycles)

    def step_compiled(
        self,
        compiled: CompiledSegment,
        start_seconds: float = 0.0,
        explicit_addrs: Optional[object] = None,
    ) -> Iterator[float]:
        """Per-instruction stepper over a compiled segment.

        Yield-for-yield identical to :meth:`run_stepwise` on the decoded
        stream — the interleaving engine needs the per-instruction
        granularity — but skips Instruction decoding and hit-path request
        objects.
        """
        freq = self.config.frequency
        hertz = freq.hertz
        issue_width = self.config.issue_width
        penalty = self.config.branch_mispredict_penalty
        hit_latency = freq.cycles_to_seconds(self.config.l1d.latency)
        mlp = self.mlp
        access_latency = self.memory.access_latency
        predict_and_update = self.predictor.predict_and_update
        pu = ProcessingUnit.CPU

        cycles = 0.0
        slot = 0
        for kind, a, b, c in compiled.events:
            if kind == EV_COMPUTE_RUN:
                for _ in range(a):
                    slot += 1
                    if slot >= issue_width:
                        cycles += 1.0
                        slot = 0
                    yield cycles
                continue
            slot += 1
            if slot >= issue_width:
                cycles += 1.0
                slot = 0
            if kind == EV_MEMORY:
                explicit = bool(explicit_addrs is not None and explicit_addrs(a))
                latency = access_latency(
                    a,
                    b,
                    bool(c),
                    pu,
                    explicit,
                    False,
                    start_seconds + int(cycles) / hertz,
                )
                if latency > hit_latency:
                    stall = (latency - hit_latency) / mlp
                    stall_cycles = stall * hertz
                    cycles += stall_cycles
                    self.memory_stall_cycles += stall_cycles
            else:  # EV_BRANCH
                if not predict_and_update(b, bool(a)):
                    cycles += penalty
                    self.branch_stall_cycles += penalty
                    slot = 0
            yield cycles
        if slot:
            cycles += 1
        self.instructions_retired += compiled.length
        yield cycles

    def run_segment(
        self,
        instructions: Iterable,
        start_seconds: float = 0.0,
        explicit_addrs: Optional[object] = None,
    ) -> int:
        """Execute a whole stream; returns cycles consumed.

        Accepts either an iterable of instructions (the legacy generator
        path) or a :class:`~repro.perf.compiled.CompiledSegment` (the
        batched fast path).
        """
        if isinstance(instructions, CompiledSegment):
            return self.run_compiled(instructions, start_seconds, explicit_addrs)
        cycles = 0.0
        for cycles in self.run_stepwise(instructions, start_seconds, explicit_addrs):
            pass
        return int(cycles)

    @property
    def ipc(self) -> float:
        """Retired instructions per cycle so far (approximate)."""
        total_cycles = (
            self.instructions_retired / self.config.issue_width
            + self.memory_stall_cycles
            + self.branch_stall_cycles
        )
        return self.instructions_retired / total_cycles if total_cycles else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "instructions": self.instructions_retired,
            "memory_stall_cycles": self.memory_stall_cycles,
            "branch_stall_cycles": self.branch_stall_cycles,
            "branch_mispredictions": self.predictor.mispredictions,
        }


def run_compiled_batch(
    cores: Sequence[CpuCore],
    compiled: CompiledSegment,
    start_seconds: Sequence[float],
    explicit_addrs: Optional[Sequence[Optional[object]]] = None,
) -> List[int]:
    """Run one compiled event stream through N cores in a single pass.

    The design-point axis of the compiled hot path: each core belongs to a
    different design point's machine, and the batch loop decodes every
    event record exactly once, applying it to all N per-point states
    (cycles, issue slot, predictor, memory hierarchy). Per point, the
    arithmetic is operation-for-operation the same sequence as
    :meth:`CpuCore.run_compiled`, so results are bit-identical to running
    the cores one at a time — ``tests/perf/test_sweep.py`` pins this.

    When every core's memory is a bare :class:`~repro.mem.cache.cache.Cache`
    with equal :attr:`~repro.mem.cache.cache.Cache.geometry`, each memory
    event's set index and tag are computed once and the per-point caches
    are probed through
    :meth:`~repro.mem.cache.cache.Cache.access_latency_located`.

    Returns each core's cycle count, in core order.
    """
    n = len(cores)
    if len(start_seconds) != n:
        raise SimulationError(
            f"need one start time per core: {n} cores, {len(start_seconds)} times"
        )
    if explicit_addrs is None:
        explicit_addrs = [None] * n
    if n == 1:
        return [cores[0].run_compiled(compiled, start_seconds[0], explicit_addrs[0])]

    hertz = [core.config.frequency.hertz for core in cores]
    issue_width = [core.config.issue_width for core in cores]
    penalty = [core.config.branch_mispredict_penalty for core in cores]
    hit_latency = [
        core.config.frequency.cycles_to_seconds(core.config.l1d.latency)
        for core in cores
    ]
    mlp = [core.mlp for core in cores]
    memories = [core.memory for core in cores]
    access = [memory.access_latency for memory in memories]
    predict = [core.predictor.predict_and_update for core in cores]
    pu = ProcessingUnit.CPU

    # Shared address decomposition: legal only when every point's top level
    # is a raw cache and all geometries agree (no MMU/coherence fronts).
    located = None
    if all(type(memory) is Cache for memory in memories):
        geometries = {memory.geometry for memory in memories}
        if len(geometries) == 1:
            line_bytes, num_sets = geometries.pop()
            located = [memory.access_latency_located for memory in memories]

    cycles = [0.0] * n
    slots = [0] * n
    for kind, a, b, c in compiled.events:
        if kind == EV_COMPUTE_RUN:
            for i in range(n):
                slot = slots[i] + a
                width = issue_width[i]
                wraps = slot // width
                slots[i] = slot - wraps * width
                if wraps:
                    cy = cycles[i]
                    if cy.is_integer():
                        cycles[i] = cy + wraps
                    else:
                        for _ in range(wraps):
                            cy += 1.0
                        cycles[i] = cy
        elif kind == EV_MEMORY:
            is_write = bool(c)
            if located is not None:
                line = a // line_bytes
                index = line % num_sets
                tag = line // num_sets
            for i in range(n):
                slot = slots[i] + 1
                cy = cycles[i]
                if slot >= issue_width[i]:
                    cy += 1.0
                    slot = 0
                slots[i] = slot
                marker = explicit_addrs[i]
                explicit = bool(marker is not None and marker(a))
                issue_time = start_seconds[i] + int(cy) / hertz[i]
                if located is not None:
                    latency = located[i](
                        index, tag, a, b, is_write, pu, explicit, False, issue_time
                    )
                else:
                    latency = access[i](
                        a, b, is_write, pu, explicit, False, issue_time
                    )
                hit = hit_latency[i]
                if latency > hit:
                    stall = (latency - hit) / mlp[i]
                    stall_cycles = stall * hertz[i]
                    cy += stall_cycles
                    cores[i].memory_stall_cycles += stall_cycles
                cycles[i] = cy
        else:  # EV_BRANCH
            taken = bool(a)
            for i in range(n):
                slot = slots[i] + 1
                if slot >= issue_width[i]:
                    cycles[i] += 1.0
                    slot = 0
                if not predict[i](b, taken):
                    cycles[i] += penalty[i]
                    cores[i].branch_stall_cycles += penalty[i]
                    slot = 0
                slots[i] = slot
    out: List[int] = []
    for i in range(n):
        cy = cycles[i]
        if slots[i]:
            cy += 1
        cores[i].instructions_retired += compiled.length
        out.append(int(cy))
    return out
