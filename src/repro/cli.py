"""Command-line interface: regenerate any paper table or figure.

Installed as ``repro-explore``::

    repro-explore table 5
    repro-explore figure 6
    repro-explore compare
    repro-explore rank --top 10
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import compare as compare_mod
from repro.analysis import figures, tables
from repro.core.explorer import Explorer
from repro.core.report import format_table
from repro.core.space import DesignSpace

__all__ = ["main"]


def _cmd_table(args: argparse.Namespace) -> int:
    builders = {
        1: tables.table1,
        2: tables.table2,
        3: tables.table3,
        4: tables.table4,
        5: tables.table5,
    }
    print(builders[args.number]())
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    explorer = Explorer(jobs=args.jobs)
    builders = {
        5: figures.figure5_text,
        6: figures.figure6_text,
        7: figures.figure7_text,
    }
    print(builders[args.number](explorer))
    if args.stats:
        print(f"\n[run] {explorer.run_stats.summary()}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    checks = compare_mod.compare_all()
    for check in checks:
        print(check.line())
    failed = sum(1 for c in checks if not c.passed)
    print(f"\n{len(checks) - failed}/{len(checks)} checks passed")
    return 1 if failed else 0


def _cmd_rank(args: argparse.Namespace) -> int:
    explorer = Explorer(jobs=args.jobs)
    points = DesignSpace().feasible_points()
    if args.sample and args.sample < len(points):
        step = max(len(points) // args.sample, 1)
        points = points[::step]
    evaluations = explorer.rank_design_points(points)[: args.top]
    rows = [
        (
            e.point.label,
            f"{e.mean_seconds * 1e6:.1f}",
            f"{e.mean_comm_fraction:.1%}",
            e.comm_lines_total,
            e.locality_options,
        )
        for e in evaluations
    ]
    print(
        format_table(
            ("design point", "mean us", "comm%", "comm lines", "locality options"),
            rows,
            title=f"Top {len(rows)} design points",
        )
    )
    if args.stats:
        print(f"\n[run] {explorer.run_stats.summary()}")
    return 0


def _cmd_guidelines(args: argparse.Namespace) -> int:
    from repro.core.metrics import EfficiencyMetric, MetricWeights

    weights = MetricWeights(
        performance=args.w_perf,
        energy=args.w_energy,
        programmability=args.w_prog,
        versatility=args.w_options,
    )
    print(EfficiencyMetric(weights=weights).guidelines())
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    from repro.core.partition import optimal_split, rate_based_split
    from repro.kernels.registry import all_kernels

    rows = []
    for k in all_kernels():
        rate = rate_based_split(k)
        best = optimal_split(k)
        rows.append(
            (
                k.name,
                f"{rate:.2f}",
                f"{best.cpu_fraction:.2f}",
                f"{best.speedup_over_even:.2f}x",
            )
        )
    print(
        format_table(
            ("kernel", "rate-based split", "optimal split", "speedup vs 50/50"),
            rows,
            title="Adaptive work partitioning (Qilin-style, paper ref [25])",
        )
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report_md import full_report, write_report

    if args.path:
        path = write_report(args.path)
        print(f"wrote {path}")
    else:
        print(full_report())
    return 0


def _cmd_codegen(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.progmodel.lowering import lower
    from repro.progmodel.spec import all_program_specs
    from repro.taxonomy import AddressSpaceKind

    out_dir = Path(args.dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    count = 0
    for spec in all_program_specs():
        for kind in AddressSpaceKind:
            program = lower(spec, kind)
            slug = spec.name.replace(" ", "_")
            path = out_dir / f"{slug}.{kind.short.lower()}.c"
            path.write_text(program.render() + "\n")
            count += 1
    print(f"wrote {count} generated sources to {out_dir}/")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.analysis.export import export_results

    path = export_results(args.path)
    print(f"wrote {path}")
    return 0


def _cmd_litmus(args: argparse.Namespace) -> int:
    from repro.consistency.litmus import LITMUS_TESTS, model_for
    from repro.consistency.model import is_allowed
    from repro.taxonomy import ConsistencyModel

    rows = []
    for test in LITMUS_TESTS:
        verdicts = {}
        for consistency in (ConsistencyModel.STRONG, ConsistencyModel.WEAK):
            allowed = is_allowed(test.program, test.observation, model_for(consistency))
            verdicts[consistency] = "allowed" if allowed else "forbidden"
        rows.append(
            (
                test.name,
                verdicts[ConsistencyModel.STRONG],
                verdicts[ConsistencyModel.WEAK],
                test.description,
            )
        )
    print(
        format_table(
            ("litmus", "strong (SC)", "weak (buffered)", "description"),
            rows,
            title="Consistency-model litmus verdicts (Table I's consistency axis)",
        )
    )
    return 0


def _add_jobs_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for simulation fan-out (default 1 = in-process; "
        "results are identical at any job count)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print runtime job/cache statistics after the output",
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-explore",
        description="Design-space exploration of heterogeneous memory models "
        "(reproduction of Lim & Kim, MSPC 2012)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table = sub.add_parser("table", help="print a paper table")
    p_table.add_argument("number", type=int, choices=(1, 2, 3, 4, 5))
    p_table.set_defaults(func=_cmd_table)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure")
    p_fig.add_argument("number", type=int, choices=(5, 6, 7))
    _add_jobs_arg(p_fig)
    p_fig.set_defaults(func=_cmd_figure)

    p_cmp = sub.add_parser("compare", help="run all paper-vs-measured checks")
    p_cmp.set_defaults(func=_cmd_compare)

    p_rank = sub.add_parser("rank", help="rank feasible design points")
    p_rank.add_argument("--top", type=int, default=10)
    p_rank.add_argument(
        "--sample", type=int, default=40, help="evaluate at most N points (0 = all)"
    )
    _add_jobs_arg(p_rank)
    p_rank.set_defaults(func=_cmd_rank)

    p_guide = sub.add_parser(
        "guidelines", help="efficiency guidelines per address space (future work, §VII)"
    )
    p_guide.add_argument("--w-perf", type=float, default=1.0)
    p_guide.add_argument("--w-energy", type=float, default=1.0)
    p_guide.add_argument("--w-prog", type=float, default=1.0)
    p_guide.add_argument("--w-options", type=float, default=1.0)
    p_guide.set_defaults(func=_cmd_guidelines)

    p_part = sub.add_parser(
        "partition", help="makespan-optimal CPU/GPU work splits per kernel"
    )
    p_part.set_defaults(func=_cmd_partition)

    p_litmus = sub.add_parser(
        "litmus", help="consistency-model litmus verdicts (strong vs weak)"
    )
    p_litmus.set_defaults(func=_cmd_litmus)

    p_export = sub.add_parser(
        "export", help="write every regenerated experiment to a JSON file"
    )
    p_export.add_argument("path", help="output path, e.g. results.json")
    p_export.set_defaults(func=_cmd_export)

    p_report = sub.add_parser(
        "report", help="full markdown reproduction report (tables, figures, checks)"
    )
    p_report.add_argument("path", nargs="?", default=None)
    p_report.set_defaults(func=_cmd_report)

    p_codegen = sub.add_parser(
        "codegen",
        help="emit the lowered pseudo-C for every kernel under every "
        "address space (the Figure 2/3 code patterns)",
    )
    p_codegen.add_argument("dir", help="output directory")
    p_codegen.set_defaults(func=_cmd_codegen)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
