"""Command-line interface: regenerate any paper table or figure.

Installed as ``repro-explore``::

    repro-explore table 5
    repro-explore figure 6
    repro-explore compare
    repro-explore rank --top 10
    repro-explore rank --checkpoint sweep.jsonl   # killed? rerun to resume
    repro-explore rank --faults "pcie:fail=0.2" --retries 3
    repro-explore faults --rates 0.05,0.1,0.2
    repro-explore figure 5 --trace-out fig5.json --metrics-out fig5.csv
    repro-explore metrics-diff before.csv after.csv
    repro-explore check
    repro-explore check --fixtures --rule PAS001
    repro-explore bench --out BENCH_hotpath.json --baseline benchmarks/output/BENCH_hotpath.json
    repro-explore rank --store results.store      # killed? rerun replays from disk
    repro-explore store verify results.store
    repro-explore serve --port 8763 --store results.store
    repro-explore chaos --seed 7

All output goes through the structured ``repro`` logger onto stdout
(byte-identical to plain printing by default); ``--quiet`` silences it and
``-v`` adds debug detail. Exit codes: 0 success, 1 failed comparison
checks, 2 configuration errors (including malformed ``--faults`` specs),
3 simulation errors (including jobs that failed every retry), 4
static-checker violations (``check`` subcommand, or a ``--check error``
gate refusal), 5 store integrity errors (``store verify`` on a corrupt
store, or a chaos scenario ending in an unexpected state), 130
interrupted (Ctrl-C; any ``--checkpoint`` file keeps the completed
points, so rerunning resumes).
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.analysis import compare as compare_mod
from repro.analysis import figures, metrics_diff, tables
from repro.core.explorer import Explorer
from repro.core.report import format_table
from repro.core.space import DesignSpace
from repro.errors import (
    ChaosError,
    CheckError,
    ConfigError,
    DesignSpaceError,
    ProgramError,
    ReproError,
    StoreCorruptionError,
    StoreError,
    TraceError,
)
from repro.exec.retry import RetryPolicy
from repro.faults.spec import FaultPlan
from repro.obs.log import configure_logging, get_logger
from repro.obs.metrics import MetricSnapshot, write_metrics_csv, write_metrics_json
from repro.obs.tracing import trace_from_results
from repro.version import __version__

__all__ = [
    "main",
    "EXIT_OK",
    "EXIT_CONFIG_ERROR",
    "EXIT_SIMULATION_ERROR",
    "EXIT_CHECK_VIOLATIONS",
    "EXIT_STORE_ERROR",
    "EXIT_INTERRUPTED",
]

#: Exit codes: configuration mistakes (bad flags/values) vs failures while
#: actually simulating vs static-checker violations vs store integrity
#: problems — scripts can tell them apart. 130 (128 + SIGINT) follows
#: shell convention for Ctrl-C; checkpointed sweeps flush completed
#: points before it is returned.
EXIT_OK = 0
EXIT_CONFIG_ERROR = 2
EXIT_SIMULATION_ERROR = 3
EXIT_CHECK_VIOLATIONS = 4
EXIT_STORE_ERROR = 5
EXIT_INTERRUPTED = 130

_log = get_logger("cli")


def _out(text: str) -> None:
    """Emit CLI output (INFO on stdout; ``--quiet`` silences it)."""
    _log.info("%s", text)


# -- observability sinks ------------------------------------------------------


def _collect_metrics(explorer: Explorer) -> MetricSnapshot:
    """One flat sample set for a finished run: summed simulation counters
    (channel counters scoped under ``comm.``), the ``exec.`` runtime
    metrics, the memo-layer cache statistics (``exec.cache.*`` — trace,
    result, and segment-compile caches), and — when a durable store backs
    the run — its ``store.`` hit/miss/corruption counters."""
    totals: Dict[str, float] = {}
    for result in explorer.last_results:
        for key, value in result.counters.items():
            name = key if "." in key else f"comm.{key}"
            totals[name] = totals.get(name, 0.0) + value
    for key, value in explorer.run_stats.metrics.as_dict().items():
        totals[f"exec.{key}"] = value
    for name, stats in explorer.cache_stats().items():
        for key, value in stats.items():
            totals[f"exec.cache.{name}.{key}"] = value
    if explorer.store is not None:
        for key, value in explorer.store.metrics.as_dict().items():
            totals[f"store.{key}"] = value
    return MetricSnapshot(totals)


def _print_stats(args: argparse.Namespace, explorer: Explorer) -> None:
    """Honor ``--stats``: runtime summary plus the store line when backed."""
    if not getattr(args, "stats", False):
        return
    _out(f"\n[run] {explorer.run_stats.summary()}")
    store = explorer.store
    if store is not None:
        _out(
            f"[store] entries={len(store)} hits={store.hits} "
            f"misses={store.misses} corruptions={store.corruptions}"
        )


def _write_observability(args: argparse.Namespace, explorer: Explorer) -> None:
    """Honor ``--trace-out`` / ``--metrics-out`` after a command's run."""
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    if trace_out:
        tracer = trace_from_results(
            explorer.last_results, run_stats=explorer.run_stats
        )
        tracer.write(trace_out)
        _out(f"wrote {trace_out}")
    if metrics_out:
        snapshot = _collect_metrics(explorer)
        if metrics_out.endswith(".json"):
            write_metrics_json(metrics_out, snapshot)
        else:
            write_metrics_csv(metrics_out, snapshot)
        _out(f"wrote {metrics_out}")


def _explorer_from_args(args: argparse.Namespace) -> Explorer:
    """Build a subcommand's Explorer, resilience knobs included.

    A malformed ``--faults`` spec raises
    :class:`~repro.errors.FaultSpecError` (a :class:`ConfigError`), which
    ``main`` maps to exit code 2 like any other bad flag value.
    """
    faults = FaultPlan.parse(args.faults) if getattr(args, "faults", None) else None
    retries = getattr(args, "retries", 0)
    store = None
    if getattr(args, "store", None):
        from repro.store import ResultStore

        store = ResultStore(args.store)
    return Explorer(
        jobs=args.jobs,
        check=args.check,
        faults=faults,
        retry=RetryPolicy(retries=retries) if retries else None,
        job_timeout=getattr(args, "job_timeout", None),
        store=store,
        warm_dir=getattr(args, "warm", None),
    )


# -- subcommands --------------------------------------------------------------


def _cmd_table(args: argparse.Namespace) -> int:
    builders = {
        1: tables.table1,
        2: tables.table2,
        3: tables.table3,
        4: tables.table4,
        5: tables.table5,
    }
    _out(builders[args.number]())
    return EXIT_OK


def _cmd_figure(args: argparse.Namespace) -> int:
    explorer = _explorer_from_args(args)
    builders = {
        "5": figures.figure5_text,
        "6": figures.figure6_text,
        "7": figures.figure7_text,
        "coherence": figures.coherence_text,
    }
    _out(builders[args.number](explorer))
    _print_stats(args, explorer)
    _write_observability(args, explorer)
    return EXIT_OK


def _cmd_compare(args: argparse.Namespace) -> int:
    checks = compare_mod.compare_all()
    for check in checks:
        _out(check.line())
    failed = sum(1 for c in checks if not c.passed)
    _out(f"\n{len(checks) - failed}/{len(checks)} checks passed")
    return 1 if failed else EXIT_OK


def _cmd_rank(args: argparse.Namespace) -> int:
    explorer = _explorer_from_args(args)
    points = DesignSpace().feasible_points()
    if args.sample and args.sample < len(points):
        step = max(len(points) // args.sample, 1)
        points = points[::step]
    shards = getattr(args, "shards", None)
    if shards == "auto":
        # Two shards per worker keeps the pool saturated while the last
        # (uneven) shards drain.
        shards = max(2 * args.jobs, 1)
    if shards is not None and shards > 1 and args.jobs > 1:
        explorer.runner.prestart()
    evaluations = explorer.rank_design_points(
        points, checkpoint=args.checkpoint, shards=shards
    )[: args.top]
    rows = [
        (
            e.point.label,
            f"{e.mean_seconds * 1e6:.1f}",
            f"{e.mean_comm_fraction:.1%}",
            e.comm_lines_total,
            e.locality_options,
        )
        for e in evaluations
    ]
    _out(
        format_table(
            ("design point", "mean us", "comm%", "comm lines", "locality options"),
            rows,
            title=f"Top {len(rows)} design points",
        )
    )
    _print_stats(args, explorer)
    _write_observability(args, explorer)
    return EXIT_OK


def _cmd_metrics_diff(args: argparse.Namespace) -> int:
    before = metrics_diff.load_metrics(args.before)
    after = metrics_diff.load_metrics(args.after)
    _out(
        metrics_diff.format_metrics_diff(
            before, after, include_unchanged=args.all
        )
    )
    return EXIT_OK


def _cmd_guidelines(args: argparse.Namespace) -> int:
    from repro.core.metrics import EfficiencyMetric, MetricWeights

    weights = MetricWeights(
        performance=args.w_perf,
        energy=args.w_energy,
        programmability=args.w_prog,
        versatility=args.w_options,
    )
    _out(EfficiencyMetric(weights=weights).guidelines())
    return EXIT_OK


def _cmd_partition(args: argparse.Namespace) -> int:
    from repro.core.partition import optimal_split, rate_based_split
    from repro.kernels.registry import all_kernels

    rows = []
    for k in all_kernels():
        rate = rate_based_split(k)
        best = optimal_split(k)
        rows.append(
            (
                k.name,
                f"{rate:.2f}",
                f"{best.cpu_fraction:.2f}",
                f"{best.speedup_over_even:.2f}x",
            )
        )
    _out(
        format_table(
            ("kernel", "rate-based split", "optimal split", "speedup vs 50/50"),
            rows,
            title="Adaptive work partitioning (Qilin-style, paper ref [25])",
        )
    )
    return EXIT_OK


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report_md import full_report, write_report

    if args.path:
        path = write_report(args.path)
        _out(f"wrote {path}")
    else:
        _out(full_report())
    return EXIT_OK


def _cmd_codegen(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.progmodel.lowering import lower
    from repro.progmodel.spec import all_program_specs
    from repro.taxonomy import AddressSpaceKind

    out_dir = Path(args.dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    count = 0
    for spec in all_program_specs():
        for kind in AddressSpaceKind:
            program = lower(spec, kind)
            slug = spec.name.replace(" ", "_")
            path = out_dir / f"{slug}.{kind.short.lower()}.c"
            path.write_text(program.render() + "\n")
            count += 1
    _out(f"wrote {count} generated sources to {out_dir}/")
    return EXIT_OK


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.analysis.export import export_results

    path = export_results(args.path)
    _out(f"wrote {path}")
    return EXIT_OK


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.check import CheckConfig, Severity, check_trace, merge_reports
    from repro.check.rules import rule
    from repro.config.presets import CASE_STUDIES, case_study
    from repro.kernels.registry import all_kernels, kernel

    severity = Severity.parse(args.severity) if args.severity else None
    if args.rule:
        rule(args.rule)  # validate the id up front (ConfigError on typos)

    triples = []
    if args.fixtures:
        from repro.check.fixtures import all_fixtures

        # OPT/INF fixtures only fire in optimize mode; each fixture says
        # which mode it needs.
        triples = [
            (fx.trace, fx.config, fx.optimize or args.optimize)
            for fx in all_fixtures()
        ]
    else:
        kernels = [kernel(name) for name in args.kernel] or list(all_kernels())
        cases = [case_study(name) for name in args.case] or list(
            CASE_STUDIES.values()
        )
        triples = [
            (k.trace(), CheckConfig.from_case_study(case), args.optimize)
            for k in kernels
            for case in cases
        ]

    reports = [
        check_trace(trace, config, optimize=optimize).filtered(
            rule=args.rule, severity=severity
        )
        for trace, config, optimize in triples
    ]
    shown = reports if args.all else [r for r in reports if not r.ok]
    for report in shown:
        _out(report.format_text())
    findings = sum(len(r.findings) for r in reports)
    errors = sum(r.errors for r in reports)
    warnings = sum(r.warnings for r in reports)
    _out(
        f"\n{len(reports)} checks, {findings} findings "
        f"({errors} errors, {warnings} warnings)"
    )
    if args.json:
        import json as json_mod

        with open(args.json, "w", encoding="utf-8") as handle:
            json_mod.dump(
                [r.as_dict() for r in reports], handle, indent=2, sort_keys=True
            )
            handle.write("\n")
        _out(f"wrote {args.json}")
    if args.sarif:
        from repro.check.sarif import write_sarif

        write_sarif(args.sarif, reports)
        _out(f"wrote {args.sarif}")
    if args.metrics_out:
        snapshot = merge_reports(reports)
        if args.metrics_out.endswith(".json"):
            write_metrics_json(args.metrics_out, snapshot)
        else:
            write_metrics_csv(args.metrics_out, snapshot)
        _out(f"wrote {args.metrics_out}")
    return EXIT_CHECK_VIOLATIONS if findings else EXIT_OK


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf.bench import (
        compare_to_baseline,
        format_bench,
        load_bench_json,
        run_coherence_bench,
        run_hotpath_bench,
        run_scale_bench,
        run_store_bench,
        run_sweep_bench,
        write_bench_json,
    )

    doc: dict = {}
    if args.mode in ("hotpath", "all"):
        doc = run_hotpath_bench(
            scale=args.scale,
            repeats=args.repeats,
            case_name=args.case,
            kernels=args.kernel or None,
        )
    if args.mode in ("coherence", "all"):
        coherence_doc = run_coherence_bench(
            scale=args.scale,
            repeats=args.repeats,
            case_name=args.case,
            kernels=args.kernel or None,
        )
        if doc:
            doc["coherence"] = coherence_doc["coherence"]
        else:
            doc = coherence_doc
    if args.mode in ("sweep", "all"):
        sweep_doc = run_sweep_bench(
            scale=args.sweep_scale,
            repeats=args.repeats,
            kernels=args.kernel or None,
            stride=args.stride,
        )
        if doc:
            doc["sweep"] = sweep_doc["sweep"]
        else:
            doc = sweep_doc
    if args.mode in ("store", "all"):
        store_doc = run_store_bench(
            repeats=args.repeats,
            kernels=args.kernel or None,
            stride=args.store_stride,
        )
        if doc:
            doc["store"] = store_doc["store"]
        else:
            doc = store_doc
    if args.mode in ("scale", "all"):
        scale_doc = run_scale_bench(
            jobs=args.scale_jobs,
            kernels=args.kernel or None,
        )
        if doc:
            doc["scaling"] = scale_doc["scaling"]
        else:
            doc = scale_doc
    _out(format_bench(doc))
    if args.out:
        write_bench_json(args.out, doc)
        _out(f"wrote {args.out}")
    failed = False
    if args.min_speedup is not None:
        for name, data in doc.get("fidelities", {}).items():
            if data["geomean_speedup"] < args.min_speedup:
                _out(
                    f"FAIL: {name} geomean speedup "
                    f"{data['geomean_speedup']:.2f}x < {args.min_speedup:g}x"
                )
                failed = True
        sweep = doc.get("sweep")
        if sweep is not None and sweep["geomean_speedup"] < args.min_speedup:
            _out(
                f"FAIL: sweep geomean speedup "
                f"{sweep['geomean_speedup']:.2f}x < {args.min_speedup:g}x"
            )
            failed = True
        scaling = doc.get("scaling")
        if (
            scaling is not None
            and scaling["rank"]["speedup"] < args.min_speedup
        ):
            _out(
                f"FAIL: scaling rank speedup "
                f"{scaling['rank']['speedup']:.2f}x < {args.min_speedup:g}x"
            )
            failed = True
    if args.baseline:
        problems = compare_to_baseline(
            doc, load_bench_json(args.baseline), tolerance=args.tolerance
        )
        for problem in problems:
            _out(f"REGRESSION: {problem}")
        if problems:
            failed = True
        else:
            _out(f"no regressions vs {args.baseline}")
    return 1 if failed else EXIT_OK


def _cmd_litmus(args: argparse.Namespace) -> int:
    from repro.consistency.litmus import LITMUS_TESTS, model_for
    from repro.consistency.model import is_allowed
    from repro.taxonomy import ConsistencyModel

    rows = []
    for test in LITMUS_TESTS:
        verdicts = {}
        for consistency in (ConsistencyModel.STRONG, ConsistencyModel.WEAK):
            allowed = is_allowed(test.program, test.observation, model_for(consistency))
            verdicts[consistency] = "allowed" if allowed else "forbidden"
        rows.append(
            (
                test.name,
                verdicts[ConsistencyModel.STRONG],
                verdicts[ConsistencyModel.WEAK],
                test.description,
            )
        )
    _out(
        format_table(
            ("litmus", "strong (SC)", "weak (buffered)", "description"),
            rows,
            title="Consistency-model litmus verdicts (Table I's consistency axis)",
        )
    )
    return EXIT_OK


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.core.resilience import DEFAULT_FAULT_RATES, fault_sensitivity

    if args.rates:
        try:
            rates = tuple(float(token) for token in args.rates.split(","))
        except ValueError:
            raise ConfigError(
                f"--rates wants comma-separated numbers, got {args.rates!r}"
            ) from None
    else:
        rates = DEFAULT_FAULT_RATES
    points = DesignSpace().feasible_points()
    if args.sample and args.sample < len(points):
        step = max(len(points) // args.sample, 1)
        points = points[::step]
    sensitivities = fault_sensitivity(
        points=points,
        rates=rates,
        seed=args.seed,
        jobs=args.jobs,
        retries=args.retries,
    )
    shown = sensitivities[: args.top]
    nonzero = [rate for rate, _ in shown[0].seconds_by_rate if rate > 0.0]
    rows = []
    for entry in shown:
        cells: List[str] = [entry.point.label, f"{entry.baseline_seconds * 1e6:.1f}"]
        for rate, seconds in entry.seconds_by_rate:
            if rate == 0.0:
                continue
            if seconds == float("inf") or entry.baseline_seconds <= 0:
                cells.append("failed")
            else:
                cells.append(f"x{seconds / entry.baseline_seconds:.3f}")
        rows.append(tuple(cells))
    _out(
        format_table(
            ("design point", "base us") + tuple(f"@{r:g}" for r in nonzero),
            rows,
            title=(
                f"Fault sensitivity: {len(rows)} most fragile of "
                f"{len(sensitivities)} points (seed {args.seed})"
            ),
        )
    )
    return EXIT_OK


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults.chaos import run_scenarios, scenarios

    if args.list:
        from repro.core.report import format_table

        rows = [(s.id, s.description) for s in scenarios()]
        _out(format_table(("scenario", "contract"), rows, title="chaos scenarios"))
        return EXIT_OK
    outcomes = run_scenarios(args.scenario or None, seed=args.seed)
    for outcome in outcomes:
        _out(outcome.line())
    failed = [o for o in outcomes if not o.ok]
    _out(f"\n{len(outcomes) - len(failed)}/{len(outcomes)} scenarios passed")
    return EXIT_STORE_ERROR if failed else EXIT_OK


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import run_server

    server = run_server(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        queue_depth=args.queue_depth,
        deadline=args.deadline,
        watchdog_budget=args.watchdog_budget,
        store_path=args.store,
        retries=args.retries,
        job_timeout=args.job_timeout,
        warm_dir=args.warm,
    )
    _out(f"serving on {server.address} (Ctrl-C to stop)")
    server.serve_forever()
    return EXIT_OK


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.core.report import format_table
    from repro.store import ResultStore

    with ResultStore(args.root) as store:
        if args.action == "stat":
            rows = [
                (name, f"{value:g}") for name, value in sorted(store.stat().items())
            ]
            _out(format_table(("statistic", "value"), rows, title=f"store {args.root}"))
            return EXIT_OK
        if args.action == "verify":
            report = store.verify()
            _out(f"store {args.root}: {report.summary()}")
            for key in report.corrupt:
                _out(f"  corrupt: {key}")
            return EXIT_OK if report.ok else EXIT_STORE_ERROR
        if args.action == "gc":
            outcome = store.gc()
            _out(
                f"store {args.root}: kept {outcome['kept']} entr"
                f"{'y' if outcome['kept'] == 1 else 'ies'}, dropped "
                f"{outcome['dropped']}, reclaimed {outcome['reclaimed_bytes']} bytes"
            )
            return EXIT_OK
        # export
        if not args.out:
            raise ConfigError("store export needs an output path argument")
        count = store.export(args.out)
        _out(f"exported {count} entries to {args.out}")
        return EXIT_OK


def _jobs_value(text: str) -> int:
    """``--jobs`` values: an integer, or ``auto`` = the machine's CPU count.

    ``auto`` resolves here (clamped to >= 1 for exotic platforms where
    ``os.cpu_count()`` is unknown); explicit integers pass through
    unvalidated so 0/negative still raise the runner's
    :class:`~repro.errors.ConfigError` (exit code 2), not an argparse
    usage error.
    """
    if text.strip().lower() == "auto":
        import os

        return max(1, os.cpu_count() or 1)
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {text!r}"
        ) from None


def _shards_value(text: str) -> "int | str":
    """``--shards`` values: an integer, or the literal ``auto``.

    ``auto`` stays symbolic — it resolves to 2x the (already resolved)
    ``--jobs`` value inside :func:`_cmd_rank`. Out-of-range integers pass
    through so :meth:`Explorer.rank_design_points` raises its
    :class:`~repro.errors.ConfigError` (exit code 2).
    """
    if text.strip().lower() == "auto":
        return "auto"
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {text!r}"
        ) from None


def _add_jobs_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=_jobs_value,
        default=1,
        metavar="N",
        help="worker processes for simulation fan-out (default 1 = "
        "in-process; 'auto' = one per CPU core; results are identical at "
        "any job count)",
    )
    parser.add_argument(
        "--warm",
        metavar="DIR",
        default=None,
        help="share compiled trace segments across worker processes "
        "through a shared-memory region indexed under this directory; "
        "workers start pre-warmed from it instead of recompiling "
        "(falls back to private caches where shared memory is "
        "unavailable)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print runtime job/cache statistics after the output",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write a Chrome trace_event JSON timeline of the run "
        "(open in Perfetto or chrome://tracing)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the run's aggregated metrics (CSV, or JSON if the "
        "path ends in .json)",
    )
    parser.add_argument(
        "--check",
        choices=("off", "warn", "error", "optimize"),
        default="off",
        help="pre-simulation static memory-model checker: warn logs "
        "findings, error refuses violating (trace, design point) pairs "
        "with exit code 4, optimize additionally logs advisory OPT/INF "
        "findings without gating (default off)",
    )
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="inject seeded communication faults, e.g. "
        "'seed=1;pcie:fail=0.2,degrade=0.1;dma:drop=0.05' "
        "(targets: pcie, aperture, memctrl, interconnect, dma, ideal, or "
        "'*'; faults: fail, attempts, degrade, factor, window, drop). "
        "Deterministic per seed; results are uncached.",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="re-attempt failed simulation jobs up to N times with "
        "deterministic exponential backoff (default 0 = fail fast)",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry any worker job running longer than this "
        "(parallel runs only; counts against --retries)",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="back the result memo with a durable content-addressed store "
        "at this directory: completed simulations survive crashes and "
        "reruns replay them from disk (default: no persistence)",
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-explore",
        description="Design-space exploration of heterogeneous memory models "
        "(reproduction of Lim & Kim, MSPC 2012)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="debug logging (runner fallbacks, cache behaviour)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress all output except errors",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table = sub.add_parser("table", help="print a paper table")
    p_table.add_argument("number", type=int, choices=(1, 2, 3, 4, 5))
    p_table.set_defaults(func=_cmd_table)

    p_fig = sub.add_parser(
        "figure",
        help="regenerate a paper figure (5/6/7) or the coherence-overhead "
        "figure ('coherence')",
    )
    p_fig.add_argument("number", choices=("5", "6", "7", "coherence"))
    _add_jobs_arg(p_fig)
    p_fig.set_defaults(func=_cmd_figure)

    p_cmp = sub.add_parser("compare", help="run all paper-vs-measured checks")
    p_cmp.set_defaults(func=_cmd_compare)

    p_rank = sub.add_parser("rank", help="rank feasible design points")
    p_rank.add_argument("--top", type=int, default=10)
    p_rank.add_argument(
        "--sample", type=int, default=40, help="evaluate at most N points (0 = all)"
    )
    p_rank.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="persist completed point evaluations to a JSONL file; "
        "rerunning with the same path resumes a killed sweep and "
        "produces identical output",
    )
    p_rank.add_argument(
        "--shards",
        type=_shards_value,
        default=None,
        metavar="N",
        help="evaluate the point space as N timing-key-aware shards, each "
        "ranked entirely inside a worker ('auto' = 2x --jobs); output is "
        "byte-identical to the flat path, and --checkpoint files "
        "interoperate between the two",
    )
    _add_jobs_arg(p_rank)
    p_rank.set_defaults(func=_cmd_rank)

    p_faults = sub.add_parser(
        "faults",
        help="rank design points by fragility under injected "
        "communication faults (most fragile first)",
    )
    p_faults.add_argument(
        "--rates",
        metavar="R1,R2,...",
        default=None,
        help="comma-separated fault rates to sweep (default 0.05,0.1,0.2; "
        "a clean 0.0 baseline always runs first)",
    )
    p_faults.add_argument(
        "--seed", type=int, default=0, help="fault-injection seed (default 0)"
    )
    p_faults.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="harness re-attempts per failed job (default 2)",
    )
    p_faults.add_argument(
        "--sample", type=int, default=12, help="evaluate at most N points (0 = all)"
    )
    p_faults.add_argument("--top", type=int, default=10)
    p_faults.add_argument(
        "--jobs",
        type=_jobs_value,
        default=1,
        metavar="N",
        help="worker processes (default 1 = in-process; 'auto' = one per "
        "CPU core)",
    )
    p_faults.set_defaults(func=_cmd_faults)

    p_diff = sub.add_parser(
        "metrics-diff",
        help="diff two --metrics-out files (largest relative change first)",
    )
    p_diff.add_argument("before", help="baseline metrics file (CSV or JSON)")
    p_diff.add_argument("after", help="comparison metrics file (CSV or JSON)")
    p_diff.add_argument(
        "--all",
        action="store_true",
        help="include unchanged metrics in the report",
    )
    p_diff.set_defaults(func=_cmd_metrics_diff)

    p_guide = sub.add_parser(
        "guidelines", help="efficiency guidelines per address space (future work, §VII)"
    )
    p_guide.add_argument("--w-perf", type=float, default=1.0)
    p_guide.add_argument("--w-energy", type=float, default=1.0)
    p_guide.add_argument("--w-prog", type=float, default=1.0)
    p_guide.add_argument("--w-options", type=float, default=1.0)
    p_guide.set_defaults(func=_cmd_guidelines)

    p_part = sub.add_parser(
        "partition", help="makespan-optimal CPU/GPU work splits per kernel"
    )
    p_part.set_defaults(func=_cmd_partition)

    p_litmus = sub.add_parser(
        "litmus", help="consistency-model litmus verdicts (strong vs weak)"
    )
    p_litmus.set_defaults(func=_cmd_litmus)

    p_bench = sub.add_parser(
        "bench",
        help="benchmark the detailed simulator's compiled hot path against "
        "the legacy generator path (exit 1 on regression)",
    )
    p_bench.add_argument(
        "--mode",
        choices=("hotpath", "sweep", "coherence", "store", "scale", "all"),
        default="hotpath",
        help="hotpath: legacy vs compiled per kernel; sweep: per-point vs "
        "batched design-point axis on a rank-style workload; coherence: "
        "protocol-on vs protocol-off simulation overhead; store: "
        "warm-store vs cold sweep wall-clock; scale: sharded-vs-flat "
        "full-space rank and cold-vs-warm pool startup; all: every "
        "section (default hotpath)",
    )
    p_bench.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="trace scale factor for the hotpath cells (default 0.05)",
    )
    p_bench.add_argument(
        "--sweep-scale",
        type=float,
        default=0.01,
        metavar="X",
        help="trace scale for the sweep mode's rank-style workload "
        "(default 0.01 — smaller than --scale because the per-point "
        "oracle replays the trace once per sampled design point)",
    )
    p_bench.add_argument(
        "--stride",
        type=int,
        default=3,
        metavar="N",
        help="sample every Nth feasible design point for the sweep "
        "workload (default 3: ~645 of the 1933 points)",
    )
    p_bench.add_argument(
        "--store-stride",
        type=int,
        default=8,
        metavar="N",
        help="sample every Nth feasible design point for the store "
        "workload (default 8 — the cold side simulates every point)",
    )
    p_bench.add_argument(
        "--scale-jobs",
        type=int,
        default=4,
        metavar="N",
        help="worker processes for the scale mode's flat and sharded "
        "sides (default 4 — the acceptance criterion's pool width)",
    )
    p_bench.add_argument(
        "--repeats",
        type=int,
        default=1,
        metavar="N",
        help="take the best of N timings per cell (default 1)",
    )
    p_bench.add_argument(
        "--case",
        default="CPU+GPU",
        metavar="NAME",
        help="case-study system to simulate (default CPU+GPU)",
    )
    p_bench.add_argument(
        "--kernel",
        action="append",
        default=[],
        metavar="NAME",
        help="benchmark only this kernel (repeatable; default: all six)",
    )
    p_bench.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the BENCH_hotpath JSON document here",
    )
    p_bench.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="compare speedups against a stored BENCH_hotpath JSON; any "
        "regression beyond --tolerance exits 1",
    )
    p_bench.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="allowed fractional speedup drop vs the baseline before "
        "failing (default 0.5, loose enough for shared CI runners)",
    )
    p_bench.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless every measured speedup headline (fidelity "
        "geomeans, sweep geomean, scaling rank) is at least X",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_check = sub.add_parser(
        "check",
        help="static memory-model checker: races, ownership, transfers, "
        "staleness (exit 4 when violations are found)",
    )
    p_check.add_argument(
        "--kernel",
        action="append",
        default=[],
        metavar="NAME",
        help="check only this kernel (repeatable; default: all six)",
    )
    p_check.add_argument(
        "--case",
        action="append",
        default=[],
        metavar="NAME",
        help="check only under this case-study system (repeatable; "
        "default: all five paper systems)",
    )
    p_check.add_argument(
        "--fixtures",
        action="store_true",
        help="check the seeded-violation fixture suite instead of the "
        "paper kernels (exercises every rule id; exits 4)",
    )
    p_check.add_argument(
        "--rule", default=None, metavar="ID", help="report only this rule id"
    )
    p_check.add_argument(
        "--severity",
        default=None,
        choices=("error", "warning"),
        help="report only findings of this severity",
    )
    p_check.add_argument(
        "--all",
        action="store_true",
        help="also print clean (trace, configuration) pairs",
    )
    p_check.add_argument(
        "--optimize",
        action="store_true",
        help="also run the advisory dataflow optimization passes "
        "(OPT001 dead transfers, OPT002 redundant transfers, INF001 "
        "inferable declareAccess modes)",
    )
    p_check.add_argument(
        "--json", default=None, metavar="PATH", help="write the reports as JSON"
    )
    p_check.add_argument(
        "--sarif",
        default=None,
        metavar="PATH",
        help="write the findings as a SARIF 2.1.0 document (rule "
        "metadata, locations, fix hints) for CI annotation",
    )
    p_check.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write aggregated check.* metrics (CSV, or JSON if the path "
        "ends in .json)",
    )
    p_check.set_defaults(func=_cmd_check)

    p_export = sub.add_parser(
        "export", help="write every regenerated experiment to a JSON file"
    )
    p_export.add_argument("path", help="output path, e.g. results.json")
    p_export.set_defaults(func=_cmd_export)

    p_report = sub.add_parser(
        "report", help="full markdown reproduction report (tables, figures, checks)"
    )
    p_report.add_argument("path", nargs="?", default=None)
    p_report.set_defaults(func=_cmd_report)

    p_codegen = sub.add_parser(
        "codegen",
        help="emit the lowered pseudo-C for every kernel under every "
        "address space (the Figure 2/3 code patterns)",
    )
    p_codegen.add_argument("dir", help="output directory")
    p_codegen.set_defaults(func=_cmd_codegen)

    p_store = sub.add_parser(
        "store",
        help="inspect or maintain a durable result store (see --store): "
        "stat, verify (exit 5 on corruption), gc, export",
    )
    p_store.add_argument("action", choices=("stat", "verify", "gc", "export"))
    p_store.add_argument("root", help="store directory")
    p_store.add_argument(
        "out", nargs="?", default=None, help="output path (export only)"
    )
    p_store.set_defaults(func=_cmd_store)

    p_serve = sub.add_parser(
        "serve",
        help="run the supervised exploration daemon: queued, coalesced, "
        "deadline-bounded design-point evaluations over HTTP",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port",
        type=int,
        default=8763,
        help="listen port (0 picks a free port; default 8763)",
    )
    p_serve.add_argument(
        "--jobs",
        type=_jobs_value,
        default=1,
        metavar="N",
        help="worker processes per evaluation (default 1; 'auto' = one "
        "per CPU core)",
    )
    p_serve.add_argument(
        "--warm",
        metavar="DIR",
        default=None,
        help="shared compile-cache region directory: worker pools start "
        "pre-warmed from it and publish new compilations back "
        "(falls back to private caches where shared memory is "
        "unavailable)",
    )
    p_serve.add_argument(
        "--queue-depth",
        type=int,
        default=32,
        metavar="N",
        help="pending-job bound; submissions past it get HTTP 503 "
        "(default 32)",
    )
    p_serve.add_argument(
        "--deadline",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="default per-request deadline (default 30; requests can "
        "override)",
    )
    p_serve.add_argument(
        "--watchdog-budget",
        type=int,
        default=3,
        metavar="N",
        help="explorer rebuilds allowed after crashed worker pools "
        "before the service goes unready (default 3)",
    )
    p_serve.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="durable result store to warm-start from and write through to",
    )
    p_serve.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="per-job retry budget (default 0)",
    )
    p_serve.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry any worker job running longer than this",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_chaos = sub.add_parser(
        "chaos",
        help="run the seeded chaos scenario suite (worker kills, torn "
        "writes, corruption, live-server faults); any violated contract "
        "exits 5",
    )
    p_chaos.add_argument(
        "--scenario",
        action="append",
        default=[],
        metavar="ID",
        help="run only this scenario (repeatable; default: all)",
    )
    p_chaos.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for every scenario's random choices (default 0)",
    )
    p_chaos.add_argument(
        "--list", action="store_true", help="list scenarios and their contracts"
    )
    p_chaos.set_defaults(func=_cmd_chaos)

    args = parser.parse_args(argv)
    configure_logging(-1 if args.quiet else args.verbose)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # Checkpoint entries are flushed as each chunk completes, so a
        # rerun with the same --checkpoint path resumes; 130 = 128 + SIGINT.
        print("repro-explore: interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except (StoreCorruptionError, ChaosError) as exc:
        # Integrity failures: a corrupt store surfaced by an explicit
        # verify, or a chaos scenario that ended in an unexpected state.
        print(f"repro-explore: integrity error: {exc}", file=sys.stderr)
        return EXIT_STORE_ERROR
    except StoreError as exc:
        # Structural store problems (unwritable root, wrong format) are
        # configuration mistakes, not integrity failures.
        print(f"repro-explore: store error: {exc}", file=sys.stderr)
        return EXIT_CONFIG_ERROR
    except (ConfigError, TraceError, ProgramError, DesignSpaceError) as exc:
        print(f"repro-explore: configuration error: {exc}", file=sys.stderr)
        return EXIT_CONFIG_ERROR
    except CheckError as exc:
        print(f"repro-explore: check violations: {exc}", file=sys.stderr)
        return EXIT_CHECK_VIOLATIONS
    except ReproError as exc:
        print(f"repro-explore: simulation error: {exc}", file=sys.stderr)
        return EXIT_SIMULATION_ERROR


if __name__ == "__main__":
    sys.exit(main())
