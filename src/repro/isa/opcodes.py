"""Opcode vocabulary shared by the CPU and GPU trace formats.

Traces are ISA-agnostic: the memory-model study only needs to distinguish
computation, memory operations, control flow, and the special
programming-model instructions — the actual x86/PTX encoding is irrelevant
(see DESIGN.md §2).
"""

from __future__ import annotations

import enum

__all__ = ["OpClass", "Opcode", "OPCODE_TO_CODE", "CODE_TO_OPCODE"]


class OpClass(enum.Enum):
    """Coarse instruction classes used by timing models and statistics."""

    COMPUTE = "compute"
    MEMORY = "memory"
    CONTROL = "control"
    SPECIAL = "special"


class Opcode(enum.Enum):
    """Trace opcodes.

    SIMD variants exist for the GPU: one SIMD instruction does
    ``simd_width`` lanes of work but occupies a single trace record, as in
    lane-compressed GPU traces.
    """

    INT_ALU = "int-alu"
    FP_ALU = "fp-alu"
    SIMD_ALU = "simd-alu"
    LOAD = "load"
    STORE = "store"
    SIMD_LOAD = "simd-load"
    SIMD_STORE = "simd-store"
    BRANCH = "branch"
    NOP = "nop"
    FENCE = "fence"
    SPECIAL = "special"

    @property
    def op_class(self) -> OpClass:
        """The coarse class this opcode belongs to."""
        return _OP_CLASS[self]

    @property
    def is_memory(self) -> bool:
        return self.op_class is OpClass.MEMORY

    @property
    def is_load(self) -> bool:
        return self in (Opcode.LOAD, Opcode.SIMD_LOAD)

    @property
    def is_store(self) -> bool:
        return self in (Opcode.STORE, Opcode.SIMD_STORE)

    @property
    def is_simd(self) -> bool:
        return self in (Opcode.SIMD_ALU, Opcode.SIMD_LOAD, Opcode.SIMD_STORE)


#: Stable compact integer codes used by the compiled-trace hot path
#: (:mod:`repro.perf.compiled`): segments encode opcodes as uint8 arrays
#: instead of enum members. Codes index :data:`CODE_TO_OPCODE`.
CODE_TO_OPCODE = tuple(Opcode)
OPCODE_TO_CODE = {opcode: code for code, opcode in enumerate(CODE_TO_OPCODE)}


_OP_CLASS = {
    Opcode.INT_ALU: OpClass.COMPUTE,
    Opcode.FP_ALU: OpClass.COMPUTE,
    Opcode.SIMD_ALU: OpClass.COMPUTE,
    Opcode.LOAD: OpClass.MEMORY,
    Opcode.STORE: OpClass.MEMORY,
    Opcode.SIMD_LOAD: OpClass.MEMORY,
    Opcode.SIMD_STORE: OpClass.MEMORY,
    Opcode.BRANCH: OpClass.CONTROL,
    Opcode.NOP: OpClass.COMPUTE,
    Opcode.FENCE: OpClass.CONTROL,
    Opcode.SPECIAL: OpClass.SPECIAL,
}
