"""Special instructions modeling programming-model effects (paper §IV-C).

"To model different programming model effects, we use a series of special
instructions. By varying the latency of these operations, we also explore
the overhead of communication methods." — the four Table IV instructions
plus the locality-control ``push`` of §II-B and kernel boundary markers.
"""

from __future__ import annotations

import enum

from repro.config.comm import CommParams
from repro.errors import ConfigError

__all__ = ["SpecialOp", "special_latency_cycles"]


class SpecialOp(enum.Enum):
    """Special (pseudo-)instructions inserted into traces.

    The first four carry the Table IV latencies. The rest are structural:
    they mark kernel launches/returns and locality-control points and have
    negligible direct cost, but timing models may attach mechanism-specific
    behaviour to them.
    """

    API_PCI = "api-pci"
    API_ACQ = "api-acq"
    API_TR = "api-tr"
    LIB_PF = "lib-pf"
    PUSH = "push"
    KERNEL_LAUNCH = "kernel-launch"
    KERNEL_RETURN = "kernel-return"
    SYNC = "sync"

    @property
    def is_table4(self) -> bool:
        """Whether this op appears in the paper's Table IV."""
        return self in (
            SpecialOp.API_PCI,
            SpecialOp.API_ACQ,
            SpecialOp.API_TR,
            SpecialOp.LIB_PF,
        )


def special_latency_cycles(
    op: SpecialOp, params: CommParams, num_bytes: int = 0
) -> int:
    """CPU-cycle latency of a special instruction under ``params``.

    ``num_bytes`` is only meaningful for :data:`SpecialOp.API_PCI`, whose
    latency has a size-dependent term (Table IV: ``33250 + trans_rate``).
    Structural markers cost a single cycle.
    """
    if op is SpecialOp.API_PCI:
        return params.api_pci_cycles(num_bytes)
    if num_bytes:
        raise ConfigError(f"{op} takes no byte-count argument")
    if op is SpecialOp.API_ACQ:
        return params.api_acq_cycles
    if op is SpecialOp.API_TR:
        return params.api_tr_cycles
    if op is SpecialOp.LIB_PF:
        return params.lib_pf_cycles
    return 1
