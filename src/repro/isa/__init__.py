"""Instruction-set vocabulary for the trace-driven simulator.

The paper's methodology (§IV) drives MacSim with CPU and GPU traces and
models library/OS/programming-model effects with *special instructions*
(Table IV). This package defines the opcode vocabulary
(:mod:`repro.isa.opcodes`) and the special-instruction set
(:mod:`repro.isa.special`).
"""

from repro.isa.opcodes import Opcode, OpClass
from repro.isa.special import SpecialOp, special_latency_cycles

__all__ = ["Opcode", "OpClass", "SpecialOp", "special_latency_cycles"]
