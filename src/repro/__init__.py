"""repro — design-space exploration of memory models for heterogeneous computing.

A production-quality reproduction of Jieun Lim and Hyesoon Kim,
*Design Space Exploration of Memory Model for Heterogeneous Computing*
(MSPC/PLDI-W 2012). See DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro import case_study, kernel, FastSimulator

    sim = FastSimulator()
    result = sim.run(kernel("reduction").trace(), case_study("LRB"))
    print(result.breakdown)
"""

from repro.version import __version__
from repro.config import (
    CommParams,
    SystemConfig,
    baseline_system,
    case_study,
    case_study_names,
)
from repro.kernels import all_kernels, kernel, kernel_names
from repro.taxonomy import (
    AddressSpaceKind,
    CoherenceKind,
    CommMechanism,
    ConsistencyModel,
    LocalityPolicy,
    LocalityScheme,
    ProcessingUnit,
)

__all__ = [
    "__version__",
    "CommParams",
    "SystemConfig",
    "baseline_system",
    "case_study",
    "case_study_names",
    "all_kernels",
    "kernel",
    "kernel_names",
    "AddressSpaceKind",
    "CoherenceKind",
    "CommMechanism",
    "ConsistencyModel",
    "LocalityPolicy",
    "LocalityScheme",
    "ProcessingUnit",
]

# Simulators are imported at module bottom to avoid a cycle with repro.config.
from repro.sim import DetailedSimulator, FastSimulator, SimulationResult  # noqa: E402

__all__ += ["DetailedSimulator", "FastSimulator", "SimulationResult"]
