"""Merge-sort kernel: parallel -> merge -> sequential (Table III row 5).

Each PU sorts half of the array; the GPU's sorted half returns to the CPU,
which performs the final sequential merge. Merge sort is the branchiest of
the six kernels, and the CPU/GPU instruction counts differ (161233 vs
157233) because the comparison-driven control flow diverges between halves.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import TraceError
from repro.kernels.base import (
    INPUT_BASE,
    OUTPUT_BASE,
    Kernel,
    KernelShape,
    MixProfile,
    make_mix,
)
from repro.taxonomy import ProcessingUnit
from repro.trace.phase import CommPhase, Direction, ParallelPhase, Segment, SequentialPhase
from repro.trace.stream import KernelTrace

__all__ = ["MergeSortKernel"]


class MergeSortKernel(Kernel):
    """Parallel two-way merge sort with a sequential final merge."""

    name = "merge sort"
    compute_pattern = "parallel -> merge -> sequential"
    profile_cpu = MixProfile(load_frac=0.30, store_frac=0.15, branch_frac=0.25, fp_frac=0.0)
    profile_gpu = MixProfile(load_frac=0.30, store_frac=0.15, branch_frac=0.25, fp_frac=0.0)
    # Table III: 161233 CPU, 157233 GPU, 97668 serial, 2 comms, 39936 B.
    default_shape = KernelShape(
        cpu_instructions=161233,
        gpu_instructions=157233,
        serial_instructions=97668,
        initial_transfer_bytes=39936,
        result_bytes=39936,
    )

    def for_size(self, n: int) -> KernelShape:
        """Shape for an ``n``-element array (compute scales as n log n)."""
        if n <= 0:
            raise TraceError(f"problem size must be positive, got {n}")
        base = self.default_shape
        base_n = base.initial_transfer_bytes // 4
        n = max(n, 2)
        factor = (n * math.log2(n)) / (base_n * math.log2(base_n))
        linear = n / base_n
        return KernelShape(
            cpu_instructions=max(int(base.cpu_instructions * factor), 1),
            gpu_instructions=max(int(base.gpu_instructions * factor), 1),
            serial_instructions=max(int(base.serial_instructions * linear), 1),
            initial_transfer_bytes=4 * n,
            result_bytes=4 * n,
        )

    def build(self, shape: Optional[KernelShape] = None) -> KernelTrace:
        shape = shape or self.default_shape
        half_bytes = max(shape.initial_transfer_bytes // 2, 4)
        cpu = Segment(
            pu=ProcessingUnit.CPU,
            mix=make_mix(shape.cpu_instructions, self.profile_cpu, ProcessingUnit.CPU),
            base_addr=INPUT_BASE,
            footprint_bytes=half_bytes,
            label="sort-cpu-half",
        )
        gpu = Segment(
            pu=ProcessingUnit.GPU,
            mix=make_mix(shape.gpu_instructions, self.profile_gpu, ProcessingUnit.GPU),
            base_addr=INPUT_BASE + half_bytes,
            footprint_bytes=half_bytes,
            label="sort-gpu-half",
        )
        merge = Segment(
            pu=ProcessingUnit.CPU,
            mix=make_mix(shape.serial_instructions, self.profile_cpu, ProcessingUnit.CPU),
            base_addr=OUTPUT_BASE,
            footprint_bytes=max(shape.result_bytes, 4),
            label="sort-final-merge",
        )
        return KernelTrace(
            name=self.name,
            phases=(
                CommPhase(
                    label="send-gpu-half",
                    direction=Direction.H2D,
                    num_bytes=shape.initial_transfer_bytes,
                    num_objects=1,
                    first_touch=True,
                ),
                ParallelPhase(label="sort-halves", cpu=cpu, gpu=gpu),
                CommPhase(
                    label="return-sorted-half",
                    direction=Direction.D2H,
                    num_bytes=shape.result_bytes,
                    num_objects=1,
                ),
                SequentialPhase(label="final-merge", segment=merge),
            ),
        )
