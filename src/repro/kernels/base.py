"""Shared machinery for kernel trace generators."""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.errors import TraceError
from repro.taxonomy import ProcessingUnit
from repro.trace.mix import InstructionMix
from repro.trace.stats import TraceStats, compute_stats
from repro.trace.stream import KernelTrace

__all__ = ["MixProfile", "make_mix", "KernelShape", "Kernel"]

# Virtual-address layout used by all kernels. These are *virtual* regions;
# the address-space models decide what is reachable by which PU and how it
# maps to physical memory.
INPUT_BASE = 0x1000_0000
OUTPUT_BASE = 0x2000_0000
SCRATCH_BASE = 0x3000_0000


@dataclass(frozen=True)
class MixProfile:
    """Fractions of an instruction total per category.

    The integer-count remainder after loads/stores/branches/FP goes to
    integer ALU operations, so every generated mix hits its target total
    exactly.
    """

    load_frac: float
    store_frac: float
    branch_frac: float
    fp_frac: float

    def __post_init__(self) -> None:
        fracs = (self.load_frac, self.store_frac, self.branch_frac, self.fp_frac)
        if any(f < 0 for f in fracs):
            raise TraceError("mix fractions must be non-negative")
        if sum(fracs) > 1.0 + 1e-9:
            raise TraceError(f"mix fractions sum to {sum(fracs):.3f} > 1")


def make_mix(total: int, profile: MixProfile, pu: ProcessingUnit) -> InstructionMix:
    """Build a mix of exactly ``total`` instructions following ``profile``.

    GPU mixes use SIMD opcodes for their ALU and memory operations
    (lane-compressed trace records); CPU mixes use scalar opcodes.
    """
    if total < 0:
        raise TraceError(f"total must be non-negative, got {total}")
    loads = int(total * profile.load_frac)
    stores = int(total * profile.store_frac)
    branches = int(total * profile.branch_frac)
    fp = int(total * profile.fp_frac)
    remainder = total - loads - stores - branches - fp
    if remainder < 0:
        raise TraceError("mix fractions overflow the total")
    if pu is ProcessingUnit.GPU:
        return InstructionMix(
            simd_loads=loads,
            simd_stores=stores,
            branches=branches,
            simd_alu=fp,
            int_alu=remainder,
        )
    return InstructionMix(
        loads=loads,
        stores=stores,
        branches=branches,
        fp_alu=fp,
        int_alu=remainder,
    )


@dataclass(frozen=True)
class KernelShape:
    """Trace-level quantities a kernel generator must hit.

    The default shape of each kernel equals its Table III row; alternative
    shapes are derived from per-element cost models for other problem sizes
    (see each kernel's ``for_size``).
    """

    cpu_instructions: int
    gpu_instructions: int
    serial_instructions: int
    initial_transfer_bytes: int
    result_bytes: int
    iterations: int = 1

    def __post_init__(self) -> None:
        for name in (
            "cpu_instructions",
            "gpu_instructions",
            "serial_instructions",
            "initial_transfer_bytes",
            "result_bytes",
        ):
            if getattr(self, name) < 0:
                raise TraceError(f"{name} must be non-negative")
        if self.iterations < 1:
            raise TraceError("iterations must be >= 1")


class Kernel(abc.ABC):
    """A benchmark kernel: builds traces and reports its Table III row.

    Subclasses define the kernel name, the paper's compute-pattern string,
    per-PU mix profiles, the calibrated default shape, and the phase
    construction in :meth:`build`.
    """

    name: str = ""
    compute_pattern: str = ""
    profile_cpu: MixProfile
    profile_gpu: MixProfile
    default_shape: KernelShape

    @abc.abstractmethod
    def build(self, shape: Optional[KernelShape] = None) -> KernelTrace:
        """Construct the phase-structured trace for ``shape`` (default:
        the Table III calibration)."""

    def for_size(self, n: int) -> KernelShape:
        """A shape for problem size ``n``, scaled from the default.

        Subclasses with a natural per-element cost model override this;
        the default scales every quantity linearly from the calibrated
        shape's implied problem size.
        """
        if n <= 0:
            raise TraceError(f"problem size must be positive, got {n}")
        base = self.default_shape
        base_n = max(base.initial_transfer_bytes // 4, 1)
        factor = n / base_n
        return KernelShape(
            cpu_instructions=max(int(base.cpu_instructions * factor), 1),
            gpu_instructions=max(int(base.gpu_instructions * factor), 1),
            serial_instructions=max(int(base.serial_instructions * factor), 1),
            initial_transfer_bytes=max(4 * n, 4),
            result_bytes=max(int(base.result_bytes * factor), 4),
            iterations=base.iterations,
        )

    def trace(self, shape: Optional[KernelShape] = None) -> KernelTrace:
        """Build the trace (alias for :meth:`build`)."""
        return self.build(shape)

    def table3_row(self) -> TraceStats:
        """The Table III row this kernel reproduces at its default shape."""
        return compute_stats(self.build(), compute_pattern=self.compute_pattern)

    def __repr__(self) -> str:
        return f"<Kernel {self.name!r}>"
