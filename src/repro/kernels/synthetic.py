"""Synthetic workload generator for robustness studies.

The paper's conclusions are drawn from six kernels; this generator builds
deterministic pseudo-random kernels with the same structural vocabulary
(parallel/merge/sequential phases, even splits, H2D-then-D2H transfers) so
the design-space conclusions can be checked over arbitrarily many
workloads (see ``benchmarks/bench_extension_robustness.py``).

Everything derives from a seed through a private :class:`random.Random`,
so a synthetic kernel is fully reproducible from its seed.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.errors import TraceError
from repro.kernels.base import (
    INPUT_BASE,
    OUTPUT_BASE,
    Kernel,
    KernelShape,
    MixProfile,
    make_mix,
)
from repro.taxonomy import ProcessingUnit
from repro.trace.phase import (
    CommPhase,
    Direction,
    ParallelPhase,
    Phase,
    Segment,
    SequentialPhase,
)
from repro.trace.stream import KernelTrace

__all__ = ["SyntheticKernel"]


class SyntheticKernel(Kernel):
    """A random-but-reproducible kernel in the Table III vocabulary.

    The phase structure is ``iterations`` repetitions of
    (H2D -> parallel -> D2H) followed by an optional sequential merge —
    the superset of all six paper kernels' patterns.
    """

    def __init__(self, seed: int, name: Optional[str] = None) -> None:
        rng = random.Random(seed)
        self.seed = seed
        self.name = name or f"synthetic-{seed}"
        self.iterations = rng.randint(1, 4)
        self.has_merge = rng.random() < 0.7
        fracs = [
            rng.uniform(0.15, 0.45),  # loads
            rng.uniform(0.01, 0.15),  # stores
            rng.uniform(0.05, 0.25),  # branches
            rng.uniform(0.0, 0.4),  # fp
        ]
        total_frac = sum(fracs)
        if total_frac > 0.9:
            fracs = [f * 0.9 / total_frac for f in fracs]
        self.profile_cpu = MixProfile(*fracs)
        self.profile_gpu = self.profile_cpu
        parallel_total = rng.randint(50_000, 4_000_000)
        skew = rng.uniform(0.97, 1.0)
        serial_total = (
            rng.randint(1_000, parallel_total // 8) if self.has_merge else 0
        )
        transfer = rng.randrange(4 * 1024, 512 * 1024, 4)
        self.default_shape = KernelShape(
            cpu_instructions=parallel_total,
            gpu_instructions=max(int(parallel_total * skew), 1),
            serial_instructions=max(serial_total, 1),
            initial_transfer_bytes=transfer,
            result_bytes=max(transfer // rng.choice((2, 4, 8, 16)), 4),
            iterations=self.iterations,
        )
        self.compute_pattern = (
            "parallel -> merge -> sequential (repeated)"
            if self.iterations > 1
            else ("parallel -> merge -> sequential" if self.has_merge else "fully parallel")
        )

    def _split(self, total: int, parts: int) -> List[int]:
        base = total // parts
        remainder = total - base * parts
        return [base + (1 if i < remainder else 0) for i in range(parts)]

    def build(self, shape: Optional[KernelShape] = None) -> KernelTrace:
        shape = shape or self.default_shape
        iters = shape.iterations
        cpu_parts = self._split(shape.cpu_instructions, iters)
        gpu_parts = self._split(shape.gpu_instructions, iters)
        serial_parts = self._split(shape.serial_instructions, iters)
        half = max(shape.initial_transfer_bytes // 2, 4)

        phases: List[Phase] = []
        for i in range(iters):
            phases.append(
                CommPhase(
                    label=f"h2d-{i}",
                    direction=Direction.H2D,
                    num_bytes=shape.initial_transfer_bytes if i == 0 else shape.result_bytes,
                    num_objects=2 if i == 0 else 1,
                    first_touch=(i == 0),
                )
            )
            phases.append(
                ParallelPhase(
                    label=f"compute-{i}",
                    cpu=Segment(
                        pu=ProcessingUnit.CPU,
                        mix=make_mix(cpu_parts[i], self.profile_cpu, ProcessingUnit.CPU),
                        base_addr=INPUT_BASE,
                        footprint_bytes=half,
                        label=f"{self.name}-cpu-{i}",
                    ),
                    gpu=Segment(
                        pu=ProcessingUnit.GPU,
                        mix=make_mix(gpu_parts[i], self.profile_gpu, ProcessingUnit.GPU),
                        base_addr=INPUT_BASE + half,
                        footprint_bytes=half,
                        label=f"{self.name}-gpu-{i}",
                    ),
                )
            )
            phases.append(
                CommPhase(
                    label=f"d2h-{i}",
                    direction=Direction.D2H,
                    num_bytes=shape.result_bytes,
                    num_objects=1,
                )
            )
            if self.has_merge:
                phases.append(
                    SequentialPhase(
                        label=f"merge-{i}",
                        segment=Segment(
                            pu=ProcessingUnit.CPU,
                            mix=make_mix(
                                serial_parts[i], self.profile_cpu, ProcessingUnit.CPU
                            ),
                            base_addr=OUTPUT_BASE,
                            footprint_bytes=max(shape.result_bytes, 4),
                            label=f"{self.name}-merge-{i}",
                        ),
                    )
                )
        return KernelTrace(name=self.name, phases=tuple(phases))
