"""Convolution kernel: parallel -> merge -> parallel (Table III row 3).

A two-pass separable convolution: both PUs filter half of the signal, the
CPU merges boundary regions, then both PUs run the second pass on data they
already hold. Three communications: the initial input+filter transfer, the
boundary exchange before the merge, and the final result return.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TraceError
from repro.kernels.base import (
    INPUT_BASE,
    OUTPUT_BASE,
    Kernel,
    KernelShape,
    MixProfile,
    make_mix,
)
from repro.taxonomy import ProcessingUnit
from repro.trace.phase import CommPhase, Direction, ParallelPhase, Segment, SequentialPhase
from repro.trace.stream import KernelTrace

__all__ = ["ConvolutionKernel"]


class ConvolutionKernel(Kernel):
    """Separable convolution with a boundary-merge between passes."""

    name = "convolution"
    compute_pattern = "parallel -> merge -> parallel"
    profile_cpu = MixProfile(load_frac=0.35, store_frac=0.05, branch_frac=0.15, fp_frac=0.30)
    profile_gpu = MixProfile(load_frac=0.35, store_frac=0.05, branch_frac=0.15, fp_frac=0.30)
    # Table III: 448260 CPU, 448259 GPU, 65536 serial, 3 comms, 65536 B.
    default_shape = KernelShape(
        cpu_instructions=448260,
        gpu_instructions=448259,
        serial_instructions=65536,
        initial_transfer_bytes=65536,
        result_bytes=32768,
    )

    def for_size(self, n: int) -> KernelShape:
        """Shape for an ``n``-sample signal (fixed filter width: linear)."""
        if n <= 0:
            raise TraceError(f"signal length must be positive, got {n}")
        base = self.default_shape
        base_n = base.initial_transfer_bytes // 4
        factor = n / base_n
        return KernelShape(
            cpu_instructions=max(int(base.cpu_instructions * factor), 2),
            gpu_instructions=max(int(base.gpu_instructions * factor), 2),
            serial_instructions=max(int(base.serial_instructions * factor), 1),
            initial_transfer_bytes=4 * n,
            result_bytes=max(2 * n, 4),
        )

    def build(self, shape: Optional[KernelShape] = None) -> KernelTrace:
        shape = shape or self.default_shape
        half_bytes = max(shape.initial_transfer_bytes // 2, 4)
        cpu_first = shape.cpu_instructions - shape.cpu_instructions // 2
        cpu_second = shape.cpu_instructions // 2
        gpu_first = shape.gpu_instructions - shape.gpu_instructions // 2
        gpu_second = shape.gpu_instructions // 2

        def seg(pu: ProcessingUnit, total: int, base: int, label: str) -> Segment:
            profile = self.profile_cpu if pu is ProcessingUnit.CPU else self.profile_gpu
            return Segment(
                pu=pu,
                mix=make_mix(total, profile, pu),
                base_addr=base,
                footprint_bytes=half_bytes,
                label=label,
            )

        merge = Segment(
            pu=ProcessingUnit.CPU,
            mix=make_mix(shape.serial_instructions, self.profile_cpu, ProcessingUnit.CPU),
            base_addr=OUTPUT_BASE,
            footprint_bytes=shape.result_bytes,
            label="conv-boundary-merge",
        )
        return KernelTrace(
            name=self.name,
            phases=(
                CommPhase(
                    label="send-input-filter",
                    direction=Direction.H2D,
                    num_bytes=shape.initial_transfer_bytes,
                    num_objects=2,
                    first_touch=True,
                ),
                ParallelPhase(
                    label="pass-1",
                    cpu=seg(ProcessingUnit.CPU, cpu_first, INPUT_BASE, "conv-cpu-pass1"),
                    gpu=seg(ProcessingUnit.GPU, gpu_first, INPUT_BASE + half_bytes, "conv-gpu-pass1"),
                ),
                CommPhase(
                    label="boundary-exchange",
                    direction=Direction.D2H,
                    num_bytes=shape.result_bytes,
                    num_objects=1,
                ),
                SequentialPhase(label="merge-boundaries", segment=merge),
                ParallelPhase(
                    label="pass-2",
                    cpu=seg(ProcessingUnit.CPU, cpu_second, OUTPUT_BASE, "conv-cpu-pass2"),
                    gpu=seg(ProcessingUnit.GPU, gpu_second, OUTPUT_BASE + half_bytes, "conv-gpu-pass2"),
                ),
                CommPhase(
                    label="return-result",
                    direction=Direction.D2H,
                    num_bytes=shape.result_bytes,
                    num_objects=1,
                ),
            ),
        )
