"""DCT kernel: fully parallel, no communication during computation.

Blocked 8x8 discrete cosine transform over an image split evenly between
PUs. The CPU initializes the image sequentially, sends the GPU its half
(Table III quotes 262244 B — reproduced verbatim, including what is most
likely a typo for 262144), and the GPU returns its transformed half.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TraceError
from repro.kernels.base import (
    INPUT_BASE,
    OUTPUT_BASE,
    Kernel,
    KernelShape,
    MixProfile,
    make_mix,
)
from repro.taxonomy import ProcessingUnit
from repro.trace.phase import CommPhase, Direction, ParallelPhase, Segment, SequentialPhase
from repro.trace.stream import KernelTrace

__all__ = ["DctKernel"]


class DctKernel(Kernel):
    """Blocked 8x8 DCT over an evenly split image."""

    name = "dct"
    compute_pattern = "fully parallel, no comm. during computation"
    profile_cpu = MixProfile(load_frac=0.25, store_frac=0.10, branch_frac=0.10, fp_frac=0.45)
    profile_gpu = MixProfile(load_frac=0.25, store_frac=0.10, branch_frac=0.10, fp_frac=0.45)
    # Table III: 2359298 CPU, 2359298 GPU, 262144 serial, 2 comms, 262244 B.
    default_shape = KernelShape(
        cpu_instructions=2359298,
        gpu_instructions=2359298,
        serial_instructions=262144,
        initial_transfer_bytes=262244,
        result_bytes=131072,
    )

    def for_size(self, n: int) -> KernelShape:
        """Shape for an ``n``-pixel image (fixed 8x8 blocks: linear)."""
        if n <= 0:
            raise TraceError(f"pixel count must be positive, got {n}")
        base = self.default_shape
        base_n = base.initial_transfer_bytes
        factor = n / base_n
        return KernelShape(
            cpu_instructions=max(int(base.cpu_instructions * factor), 1),
            gpu_instructions=max(int(base.gpu_instructions * factor), 1),
            serial_instructions=max(int(base.serial_instructions * factor), 1),
            initial_transfer_bytes=n,
            result_bytes=max(n // 2, 4),
        )

    def build(self, shape: Optional[KernelShape] = None) -> KernelTrace:
        shape = shape or self.default_shape
        half_bytes = max(shape.initial_transfer_bytes // 2, 4)
        init = Segment(
            pu=ProcessingUnit.CPU,
            mix=make_mix(shape.serial_instructions, self.profile_cpu, ProcessingUnit.CPU),
            base_addr=INPUT_BASE,
            footprint_bytes=shape.initial_transfer_bytes,
            label="dct-init-image",
        )
        cpu = Segment(
            pu=ProcessingUnit.CPU,
            mix=make_mix(shape.cpu_instructions, self.profile_cpu, ProcessingUnit.CPU),
            base_addr=INPUT_BASE,
            footprint_bytes=half_bytes,
            label="dct-cpu-blocks",
        )
        gpu = Segment(
            pu=ProcessingUnit.GPU,
            mix=make_mix(shape.gpu_instructions, self.profile_gpu, ProcessingUnit.GPU),
            base_addr=INPUT_BASE + half_bytes,
            footprint_bytes=half_bytes,
            label="dct-gpu-blocks",
        )
        return KernelTrace(
            name=self.name,
            phases=(
                SequentialPhase(label="init-image", segment=init),
                CommPhase(
                    label="send-image-half",
                    direction=Direction.H2D,
                    num_bytes=shape.initial_transfer_bytes,
                    num_objects=1,
                    first_touch=True,
                ),
                ParallelPhase(label="dct-blocks", cpu=cpu, gpu=gpu),
                CommPhase(
                    label="return-coefficients",
                    direction=Direction.D2H,
                    num_bytes=shape.result_bytes,
                    num_objects=1,
                ),
            ),
        )
