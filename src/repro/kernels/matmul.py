"""Matrix-multiply kernel: fully parallel, no communication during compute.

Each PU computes half of the rows of ``C = A x B``. Two communications:
the initial transfer of A and B (524288 B = two 256x256 float matrices at
the default size) and the return of the GPU's half of C.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TraceError
from repro.kernels.base import (
    INPUT_BASE,
    OUTPUT_BASE,
    Kernel,
    KernelShape,
    MixProfile,
    make_mix,
)
from repro.taxonomy import ProcessingUnit
from repro.trace.phase import CommPhase, Direction, ParallelPhase, Segment, SequentialPhase
from repro.trace.stream import KernelTrace

__all__ = ["MatmulKernel"]


class MatmulKernel(Kernel):
    """Dense square matrix multiplication, rows split evenly between PUs."""

    name = "matrix mul"
    compute_pattern = "fully parallel, no comm during computation"
    profile_cpu = MixProfile(load_frac=0.33, store_frac=0.01, branch_frac=0.16, fp_frac=0.33)
    profile_gpu = MixProfile(load_frac=0.33, store_frac=0.01, branch_frac=0.16, fp_frac=0.33)
    # Table III: 8585229 CPU, 8585228 GPU, 16384 serial, 2 comms, 524288 B.
    default_shape = KernelShape(
        cpu_instructions=8585229,
        gpu_instructions=8585228,
        serial_instructions=16384,
        initial_transfer_bytes=524288,
        result_bytes=131072,
    )

    #: Default matrix dimension implied by the calibration: two n*n float
    #: matrices make up the initial transfer, so n = sqrt(524288/8) = 256.
    default_dim = 256

    def for_size(self, n: int) -> KernelShape:
        """Shape for ``n x n`` matrices (compute scales as n^3, data n^2)."""
        if n <= 0:
            raise TraceError(f"matrix dimension must be positive, got {n}")
        base = self.default_shape
        cubic = (n / self.default_dim) ** 3
        quadratic = (n / self.default_dim) ** 2
        return KernelShape(
            cpu_instructions=max(int(base.cpu_instructions * cubic), 1),
            gpu_instructions=max(int(base.gpu_instructions * cubic), 1),
            serial_instructions=max(int(base.serial_instructions * quadratic), 1),
            initial_transfer_bytes=max(int(base.initial_transfer_bytes * quadratic), 8),
            result_bytes=max(int(base.result_bytes * quadratic), 4),
        )

    def build(self, shape: Optional[KernelShape] = None) -> KernelTrace:
        shape = shape or self.default_shape
        footprint = shape.initial_transfer_bytes // 2 + shape.result_bytes
        init = Segment(
            pu=ProcessingUnit.CPU,
            mix=make_mix(shape.serial_instructions, self.profile_cpu, ProcessingUnit.CPU),
            base_addr=INPUT_BASE,
            footprint_bytes=shape.initial_transfer_bytes,
            label="matmul-init",
        )
        cpu = Segment(
            pu=ProcessingUnit.CPU,
            mix=make_mix(shape.cpu_instructions, self.profile_cpu, ProcessingUnit.CPU),
            base_addr=INPUT_BASE,
            footprint_bytes=footprint,
            label="matmul-cpu-rows",
        )
        gpu = Segment(
            pu=ProcessingUnit.GPU,
            mix=make_mix(shape.gpu_instructions, self.profile_gpu, ProcessingUnit.GPU),
            base_addr=INPUT_BASE + footprint,
            footprint_bytes=footprint,
            label="matmul-gpu-rows",
        )
        return KernelTrace(
            name=self.name,
            phases=(
                SequentialPhase(label="init-matrices", segment=init),
                CommPhase(
                    label="send-a-b",
                    direction=Direction.H2D,
                    num_bytes=shape.initial_transfer_bytes,
                    num_objects=2,
                    first_touch=True,
                ),
                ParallelPhase(label="row-blocks", cpu=cpu, gpu=gpu),
                CommPhase(
                    label="return-c-half",
                    direction=Direction.D2H,
                    num_bytes=shape.result_bytes,
                    num_objects=1,
                ),
            ),
        )
