"""Registry of the six evaluation kernels, in Table III order."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import TraceError
from repro.kernels.base import Kernel
from repro.kernels.convolution import ConvolutionKernel
from repro.kernels.dct import DctKernel
from repro.kernels.kmeans import KMeansKernel
from repro.kernels.matmul import MatmulKernel
from repro.kernels.mergesort import MergeSortKernel
from repro.kernels.reduction import ReductionKernel

__all__ = ["all_kernels", "kernel", "kernel_names"]

_KERNELS: Dict[str, Kernel] = {
    k.name: k
    for k in (
        ReductionKernel(),
        MatmulKernel(),
        ConvolutionKernel(),
        DctKernel(),
        MergeSortKernel(),
        KMeansKernel(),
    )
}

# Aliases accepted by `kernel()` for convenience.
_ALIASES = {
    "matmul": "matrix mul",
    "matrix-mul": "matrix mul",
    "mergesort": "merge sort",
    "merge-sort": "merge sort",
    "kmeans": "k-mean",
    "k-means": "k-mean",
    "conv": "convolution",
}


def all_kernels() -> Tuple[Kernel, ...]:
    """All six kernels in Table III order."""
    return tuple(_KERNELS.values())


def kernel_names() -> Tuple[str, ...]:
    """Kernel names in Table III order."""
    return tuple(_KERNELS)


def kernel(name: str) -> Kernel:
    """Look up a kernel by name (paper names and common aliases accepted)."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key in _KERNELS:
        return _KERNELS[key]
    raise TraceError(
        f"unknown kernel {name!r}; known: {', '.join(_KERNELS)}"
    )
