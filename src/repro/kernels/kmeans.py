"""K-means kernel: repeated parallel -> merge -> sequential (Table III row 6).

Three clustering iterations. Each iteration assigns points to centroids in
parallel on both PUs, returns partial centroid sums to the CPU, and
sequentially recomputes centroids. Six communications total: the first
iteration sends the full point set plus centroids (136192 B at the default
size); later iterations only exchange centroids and partial sums.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import TraceError
from repro.kernels.base import (
    INPUT_BASE,
    OUTPUT_BASE,
    Kernel,
    KernelShape,
    MixProfile,
    make_mix,
)
from repro.taxonomy import ProcessingUnit
from repro.trace.phase import (
    CommPhase,
    Direction,
    ParallelPhase,
    Phase,
    Segment,
    SequentialPhase,
)
from repro.trace.stream import KernelTrace

__all__ = ["KMeansKernel"]


def _split(total: int, parts: int) -> List[int]:
    """Split ``total`` into ``parts`` near-equal integers summing exactly."""
    base = total // parts
    remainder = total - base * parts
    return [base + (1 if i < remainder else 0) for i in range(parts)]


class KMeansKernel(Kernel):
    """Lloyd's k-means over an evenly split point set, 3 iterations."""

    name = "k-mean"
    compute_pattern = "parallel -> merge -> sequential (repeated)"
    profile_cpu = MixProfile(load_frac=0.30, store_frac=0.05, branch_frac=0.15, fp_frac=0.35)
    profile_gpu = MixProfile(load_frac=0.30, store_frac=0.05, branch_frac=0.15, fp_frac=0.35)
    # Table III: 1847765 CPU, 1844981 GPU, 36784 serial, 6 comms, 136192 B.
    default_shape = KernelShape(
        cpu_instructions=1847765,
        gpu_instructions=1844981,
        serial_instructions=36784,
        initial_transfer_bytes=136192,
        result_bytes=4096,
        iterations=3,
    )

    def for_size(self, n: int, iterations: Optional[int] = None) -> KernelShape:
        """Shape for ``n`` points (linear per iteration; centroid exchange
        fixed). ``iterations`` overrides the default 3 Lloyd iterations."""
        if n <= 0:
            raise TraceError(f"point count must be positive, got {n}")
        base = self.default_shape
        iters = iterations if iterations is not None else base.iterations
        if iters < 1:
            raise TraceError(f"need at least one iteration, got {iters}")
        base_n = base.initial_transfer_bytes // 8  # two floats per point
        per_iter_factor = (n / base_n) * (iters / base.iterations)
        return KernelShape(
            cpu_instructions=max(int(base.cpu_instructions * per_iter_factor), iters),
            gpu_instructions=max(int(base.gpu_instructions * per_iter_factor), iters),
            serial_instructions=max(
                int(base.serial_instructions * iters / base.iterations), iters
            ),
            initial_transfer_bytes=8 * n,
            result_bytes=base.result_bytes,
            iterations=iters,
        )

    def build(self, shape: Optional[KernelShape] = None) -> KernelTrace:
        shape = shape or self.default_shape
        iters = shape.iterations
        cpu_parts = _split(shape.cpu_instructions, iters)
        gpu_parts = _split(shape.gpu_instructions, iters)
        serial_parts = _split(shape.serial_instructions, iters)
        half_bytes = max(shape.initial_transfer_bytes // 2, 4)
        centroid_bytes = shape.result_bytes

        phases: List[Phase] = []
        for i in range(iters):
            if i == 0:
                phases.append(
                    CommPhase(
                        label="send-points-centroids",
                        direction=Direction.H2D,
                        num_bytes=shape.initial_transfer_bytes,
                        num_objects=2,
                        first_touch=True,
                    )
                )
            else:
                phases.append(
                    CommPhase(
                        label=f"send-centroids-{i}",
                        direction=Direction.H2D,
                        num_bytes=centroid_bytes,
                        num_objects=1,
                    )
                )
            cpu = Segment(
                pu=ProcessingUnit.CPU,
                mix=make_mix(cpu_parts[i], self.profile_cpu, ProcessingUnit.CPU),
                base_addr=INPUT_BASE,
                footprint_bytes=half_bytes,
                label=f"assign-cpu-{i}",
            )
            gpu = Segment(
                pu=ProcessingUnit.GPU,
                mix=make_mix(gpu_parts[i], self.profile_gpu, ProcessingUnit.GPU),
                base_addr=INPUT_BASE + half_bytes,
                footprint_bytes=half_bytes,
                label=f"assign-gpu-{i}",
            )
            phases.append(ParallelPhase(label=f"assign-{i}", cpu=cpu, gpu=gpu))
            phases.append(
                CommPhase(
                    label=f"return-partials-{i}",
                    direction=Direction.D2H,
                    num_bytes=centroid_bytes,
                    num_objects=1,
                )
            )
            update = Segment(
                pu=ProcessingUnit.CPU,
                mix=make_mix(serial_parts[i], self.profile_cpu, ProcessingUnit.CPU),
                base_addr=OUTPUT_BASE,
                footprint_bytes=centroid_bytes,
                label=f"update-centroids-{i}",
            )
            phases.append(SequentialPhase(label=f"update-{i}", segment=update))
        return KernelTrace(name=self.name, phases=tuple(phases))
