"""Reduction kernel: parallel -> merge -> sequential (Table III row 1).

Both PUs sum half of the input array; the GPU's partial sums return to the
CPU, which performs the final sequential merge. Two communications: the
initial input transfer (320512 B at the default size) and the partial-sum
return.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TraceError
from repro.kernels.base import (
    INPUT_BASE,
    OUTPUT_BASE,
    Kernel,
    KernelShape,
    MixProfile,
    make_mix,
)
from repro.taxonomy import ProcessingUnit
from repro.trace.phase import CommPhase, Direction, ParallelPhase, Segment, SequentialPhase
from repro.trace.stream import KernelTrace

__all__ = ["ReductionKernel"]


class ReductionKernel(Kernel):
    """Sum-reduction over an integer array split evenly between PUs."""

    name = "reduction"
    compute_pattern = "parallel -> merge -> sequential"
    profile_cpu = MixProfile(load_frac=0.45, store_frac=0.01, branch_frac=0.15, fp_frac=0.30)
    profile_gpu = MixProfile(load_frac=0.45, store_frac=0.01, branch_frac=0.15, fp_frac=0.30)
    # Table III: 70006 CPU, 70001 GPU, 99996 serial, 2 comms, 320512 B.
    default_shape = KernelShape(
        cpu_instructions=70006,
        gpu_instructions=70001,
        serial_instructions=99996,
        initial_transfer_bytes=320512,
        result_bytes=512,
    )

    def for_size(self, n: int) -> KernelShape:
        """Shape for an ``n``-element input array.

        Per-element parallel cost and the serial merge cost are calibrated
        from the default shape (default n = 320512/4 = 80128 elements).
        """
        if n <= 0:
            raise TraceError(f"problem size must be positive, got {n}")
        base = self.default_shape
        base_n = base.initial_transfer_bytes // 4
        factor = n / base_n
        return KernelShape(
            cpu_instructions=max(int(base.cpu_instructions * factor), 1),
            gpu_instructions=max(int(base.gpu_instructions * factor), 1),
            serial_instructions=max(int(base.serial_instructions * factor), 1),
            initial_transfer_bytes=4 * n,
            result_bytes=base.result_bytes,
        )

    def build(self, shape: Optional[KernelShape] = None) -> KernelTrace:
        shape = shape or self.default_shape
        half_bytes = max(shape.initial_transfer_bytes // 2, 4)
        cpu = Segment(
            pu=ProcessingUnit.CPU,
            mix=make_mix(shape.cpu_instructions, self.profile_cpu, ProcessingUnit.CPU),
            base_addr=INPUT_BASE,
            footprint_bytes=half_bytes,
            label="reduce-cpu-half",
        )
        gpu = Segment(
            pu=ProcessingUnit.GPU,
            mix=make_mix(shape.gpu_instructions, self.profile_gpu, ProcessingUnit.GPU),
            base_addr=INPUT_BASE + half_bytes,
            footprint_bytes=half_bytes,
            label="reduce-gpu-half",
        )
        merge = Segment(
            pu=ProcessingUnit.CPU,
            mix=make_mix(shape.serial_instructions, self.profile_cpu, ProcessingUnit.CPU),
            base_addr=OUTPUT_BASE,
            footprint_bytes=max(shape.result_bytes, 4),
            label="reduce-final-sum",
        )
        return KernelTrace(
            name=self.name,
            phases=(
                CommPhase(
                    label="send-input",
                    direction=Direction.H2D,
                    num_bytes=shape.initial_transfer_bytes,
                    num_objects=2,
                    first_touch=True,
                ),
                ParallelPhase(label="partial-sums", cpu=cpu, gpu=gpu),
                CommPhase(
                    label="return-partials",
                    direction=Direction.D2H,
                    num_bytes=shape.result_bytes,
                    num_objects=1,
                ),
                SequentialPhase(label="final-sum", segment=merge),
            ),
        )
