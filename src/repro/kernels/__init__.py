"""The six evaluation kernels of the paper (Table III).

Each kernel module builds a :class:`repro.trace.KernelTrace` whose phase
structure follows Table III's "compute pattern" column and whose default
instruction counts, communication counts, and transfer sizes reproduce
Table III exactly (see DESIGN.md §5 for the calibration approach: the
paper's traces came from real CUDA programs we do not have, so the
generators are calibrated to the published trace statistics and scale
naturally from per-element cost models for other problem sizes).
"""

from repro.kernels.base import Kernel, KernelShape, MixProfile, make_mix
from repro.kernels.registry import all_kernels, kernel, kernel_names

__all__ = [
    "Kernel",
    "KernelShape",
    "MixProfile",
    "make_mix",
    "all_kernels",
    "kernel",
    "kernel_names",
]
