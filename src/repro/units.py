"""Physical-unit helpers used throughout the simulator.

The simulator mixes clock domains (a 3.5 GHz CPU and a 1.5 GHz GPU), byte
quantities, and bandwidths (PCI-E 2.0 at 16 GB/s, DDR3-1333 at 41.6 GB/s).
Keeping conversions in one module avoids the classic cycles-vs-nanoseconds
bugs in heterogeneous timing models.

Conventions:

- time is expressed in **seconds** (float) at the inter-domain level;
- each clock domain converts seconds to its own integral **cycles**;
- sizes are **bytes** (int); bandwidths are **bytes per second** (float).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "KB",
    "MB",
    "GB",
    "KHZ",
    "MHZ",
    "GHZ",
    "Frequency",
    "Bandwidth",
    "transfer_seconds",
    "ceil_div",
]

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

KHZ = 1_000.0
MHZ = 1_000_000.0
GHZ = 1_000_000_000.0


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division for positive operands.

    >>> ceil_div(7, 4)
    2
    >>> ceil_div(8, 4)
    2
    """
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return -(-numerator // denominator)


@dataclass(frozen=True)
class Frequency:
    """A clock frequency with cycle/second conversions.

    >>> f = Frequency(2 * GHZ)
    >>> f.cycles_to_seconds(4)
    2e-09
    >>> f.seconds_to_cycles(1e-9)
    2
    """

    hertz: float

    def __post_init__(self) -> None:
        if self.hertz <= 0:
            raise ValueError(f"frequency must be positive, got {self.hertz}")

    @property
    def period(self) -> float:
        """Seconds per cycle."""
        return 1.0 / self.hertz

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count in this domain to wall-clock seconds."""
        return cycles / self.hertz

    def seconds_to_cycles(self, seconds: float) -> int:
        """Convert wall-clock seconds to whole cycles, rounding up.

        Rounding up models the synchronizer: an event arriving mid-cycle is
        visible at the next edge.
        """
        return int(math.ceil(seconds * self.hertz - 1e-12))

    def __str__(self) -> str:
        if self.hertz >= GHZ:
            return f"{self.hertz / GHZ:g}GHz"
        if self.hertz >= MHZ:
            return f"{self.hertz / MHZ:g}MHz"
        return f"{self.hertz:g}Hz"


@dataclass(frozen=True)
class Bandwidth:
    """A transfer rate in bytes per second.

    >>> bw = Bandwidth.from_gb_per_s(16.0)
    >>> bw.seconds_for(16 * 10**9)
    1.0
    """

    bytes_per_second: float

    def __post_init__(self) -> None:
        if self.bytes_per_second <= 0:
            raise ValueError(
                f"bandwidth must be positive, got {self.bytes_per_second}"
            )

    @classmethod
    def from_gb_per_s(cls, gb_per_s: float) -> "Bandwidth":
        """Build from decimal gigabytes per second (as link specs quote)."""
        return cls(gb_per_s * 1e9)

    def seconds_for(self, num_bytes: int) -> float:
        """Time to move ``num_bytes`` at this rate."""
        if num_bytes < 0:
            raise ValueError(f"byte count must be non-negative, got {num_bytes}")
        return num_bytes / self.bytes_per_second

    def __str__(self) -> str:
        return f"{self.bytes_per_second / 1e9:g}GB/s"


def transfer_seconds(num_bytes: int, bandwidth: Bandwidth, latency: float = 0.0) -> float:
    """Latency + size/bandwidth time for a single transfer."""
    if latency < 0:
        raise ValueError(f"latency must be non-negative, got {latency}")
    return latency + bandwidth.seconds_for(num_bytes)
