"""Operational memory-consistency models and litmus tests.

Consistency is one of the paper's design axes (Table I's consistency
column; §II discusses strong vs weak models and release consistency), but
the paper treats it qualitatively. This package makes the axis executable:

- :mod:`repro.consistency.ops` — tiny per-PU programs of loads, stores,
  and fences over shared locations;
- :mod:`repro.consistency.model` — exhaustive operational executors for
  **sequential consistency** (stores globally visible immediately) and a
  **weak, store-buffered** model (per-PU FIFO store buffers, drained
  nondeterministically or by fences) standing in for the weak models of
  Table I;
- :mod:`repro.consistency.litmus` — the classic litmus tests (store
  buffering, message passing, coherence) with their expected verdicts per
  model, plus the mapping from the design-space
  :class:`~repro.taxonomy.ConsistencyModel` values to executors.
"""

from repro.consistency.ops import Fence, Load, Program, Store
from repro.consistency.model import allowed_outcomes, is_allowed
from repro.consistency.litmus import (
    LITMUS_TESTS,
    LitmusTest,
    litmus_verdict,
    model_for,
    model_for_design,
)

__all__ = [
    "Load",
    "Store",
    "Fence",
    "Program",
    "allowed_outcomes",
    "is_allowed",
    "LitmusTest",
    "LITMUS_TESTS",
    "litmus_verdict",
    "model_for",
    "model_for_design",
]
