"""Classic litmus tests and the design-space mapping.

Each test carries the observation of interest and the expected verdict
under each model — the standard results:

- **SB** (store buffering): both loads seeing 0 is forbidden under SC but
  allowed with store buffers; full fences forbid it again;
- **MP** (message passing): seeing the flag but stale data is forbidden
  under both models here (per-PU buffers are FIFO, preserving each PU's
  store order);
- **CoRR** (coherence of read-read): a single location never appears to go
  backwards under either model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.consistency.model import is_allowed
from repro.consistency.ops import Fence, Load, Program, Store
from repro.errors import SimulationError
from repro.taxonomy import CoherenceKind, ConsistencyModel, ProcessingUnit

__all__ = [
    "LitmusTest",
    "LITMUS_TESTS",
    "litmus_verdict",
    "model_for",
    "model_for_design",
]

CPU, GPU = ProcessingUnit.CPU, ProcessingUnit.GPU


@dataclass(frozen=True)
class LitmusTest:
    """A program, the observation of interest, and expected verdicts."""

    name: str
    program: Program
    observation: Dict[str, int]
    allowed_sc: bool
    allowed_weak: bool
    description: str


LITMUS_TESTS: Tuple[LitmusTest, ...] = (
    LitmusTest(
        name="SB",
        program=Program(
            threads={
                CPU: (Store("x", 1), Load("y", "r0")),
                GPU: (Store("y", 1), Load("x", "r1")),
            }
        ),
        observation={"r0": 0, "r1": 0},
        allowed_sc=False,
        allowed_weak=True,
        description="store buffering: both PUs read the other's flag as 0",
    ),
    LitmusTest(
        name="SB+fences",
        program=Program(
            threads={
                CPU: (Store("x", 1), Fence(), Load("y", "r0")),
                GPU: (Store("y", 1), Fence(), Load("x", "r1")),
            }
        ),
        observation={"r0": 0, "r1": 0},
        allowed_sc=False,
        allowed_weak=False,
        description="fences drain the buffers and restore SC for SB",
    ),
    LitmusTest(
        name="MP",
        program=Program(
            threads={
                CPU: (Store("data", 1), Store("flag", 1)),
                GPU: (Load("flag", "r0"), Load("data", "r1")),
            }
        ),
        observation={"r0": 1, "r1": 0},
        allowed_sc=False,
        allowed_weak=False,
        description="message passing: FIFO buffers preserve store order",
    ),
    LitmusTest(
        name="CoRR",
        program=Program(
            threads={
                CPU: (Store("x", 1),),
                GPU: (Load("x", "r0"), Load("x", "r1")),
            }
        ),
        observation={"r0": 1, "r1": 0},
        allowed_sc=False,
        allowed_weak=False,
        description="coherence: a location never appears to go backwards",
    ),
)


def model_for(consistency: ConsistencyModel) -> str:
    """Executor for a design-space consistency value.

    Strong consistency is SC; the weak family (weak, release, centralized
    release) all permit store-buffering relaxations.
    """
    return "sc" if consistency is ConsistencyModel.STRONG else "weak"


def model_for_design(
    consistency: ConsistencyModel, coherence: CoherenceKind
) -> str:
    """Executor for a (consistency, coherence) design point.

    A strong ordering only yields SC behaviour across PUs when a hardware
    protocol actually keeps the shared window coherent; without one, a PU
    can keep serving a stale cached copy — indistinguishable, to the other
    PU, from a delayed store buffer. So the cross-PU model is ``"sc"`` only
    for STRONG + hardware coherence, and ``"weak"`` everywhere else.
    """
    if consistency is ConsistencyModel.STRONG and coherence.hardware:
        return "sc"
    return "weak"


def litmus_verdict(test_name: str, consistency: ConsistencyModel) -> bool:
    """Whether a litmus observation is allowed under a consistency model."""
    for test in LITMUS_TESTS:
        if test.name == test_name:
            return is_allowed(test.program, test.observation, model_for(consistency))
    raise SimulationError(
        f"unknown litmus test {test_name!r}; known: "
        + ", ".join(t.name for t in LITMUS_TESTS)
    )
