"""Exhaustive operational executors for SC and the store-buffered model.

State = (per-PU program counter, per-PU store buffer, shared memory,
register file). From each state the executor may either execute the next
instruction of some PU or drain the oldest entry of some PU's store
buffer; exhaustive exploration with memoization yields the exact set of
reachable final register valuations.

- **SC** (``model="sc"``): store buffers are disabled — every store hits
  shared memory atomically in program order, so the explored executions
  are exactly the interleavings of the threads.
- **Weak/TSO-like** (``model="weak"``): per-PU FIFO store buffers with
  forwarding (a load first checks its own buffer). This exhibits the
  store-buffering relaxation that distinguishes the weak models of the
  paper's Table I from a strongly consistent system, while keeping each
  PU's stores ordered (message passing still works).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set, Tuple

from repro.consistency.ops import Fence, Load, Program, Store
from repro.errors import SimulationError
from repro.taxonomy import ProcessingUnit

__all__ = ["allowed_outcomes", "is_allowed"]

Outcome = FrozenSet[Tuple[str, int]]
_MODELS = ("sc", "weak")


def allowed_outcomes(program: Program, model: str = "sc") -> Set[Outcome]:
    """All final register valuations the model permits for ``program``.

    Memory locations start at 0. An execution is final when every thread
    has retired all its instructions and every store buffer is empty.
    """
    if model not in _MODELS:
        raise SimulationError(f"unknown model {model!r}; use one of {_MODELS}")
    buffered = model == "weak"
    pus = tuple(program.threads)
    initial_memory = tuple(sorted((loc, 0) for loc in program.locations))

    # State: (pcs, buffers, memory, regs) — all hashable tuples.
    initial = (
        tuple(0 for _ in pus),
        tuple(() for _ in pus),
        initial_memory,
        (),
    )
    seen = set()
    outcomes: Set[Outcome] = set()
    stack = [initial]
    while stack:
        state = stack.pop()
        if state in seen:
            continue
        seen.add(state)
        pcs, buffers, memory, regs = state
        mem = dict(memory)
        done = all(
            pcs[i] >= len(program.threads[pu]) and not buffers[i]
            for i, pu in enumerate(pus)
        )
        if done:
            outcomes.add(frozenset(regs))
            continue

        for i, pu in enumerate(pus):
            ops = program.threads[pu]
            # Option 1: drain the oldest buffered store to memory.
            if buffers[i]:
                loc, value = buffers[i][0]
                new_buffers = list(buffers)
                new_buffers[i] = buffers[i][1:]
                new_mem = dict(mem)
                new_mem[loc] = value
                stack.append(
                    (pcs, tuple(new_buffers), tuple(sorted(new_mem.items())), regs)
                )
            # Option 2: execute the next instruction.
            if pcs[i] >= len(ops):
                continue
            op = ops[pcs[i]]
            new_pcs = list(pcs)
            new_pcs[i] += 1
            if isinstance(op, Store):
                if buffered:
                    new_buffers = list(buffers)
                    new_buffers[i] = buffers[i] + ((op.loc, op.value),)
                    stack.append((tuple(new_pcs), tuple(new_buffers), memory, regs))
                else:
                    new_mem = dict(mem)
                    new_mem[op.loc] = op.value
                    stack.append(
                        (tuple(new_pcs), buffers, tuple(sorted(new_mem.items())), regs)
                    )
            elif isinstance(op, Load):
                # Forward from the own buffer's youngest matching store.
                value = None
                for loc, buffered_value in reversed(buffers[i]):
                    if loc == op.loc:
                        value = buffered_value
                        break
                if value is None:
                    value = mem.get(op.loc, 0)
                new_regs = tuple(sorted(set(regs) | {(op.reg, value)}))
                stack.append((tuple(new_pcs), buffers, memory, new_regs))
            elif isinstance(op, Fence):
                # A fence retires only when the buffer is empty; draining
                # is already an available action, so just block until then.
                if buffers[i]:
                    continue
                stack.append((tuple(new_pcs), buffers, memory, regs))
            else:
                raise SimulationError(f"unknown op {op!r}")
    return outcomes


def is_allowed(program: Program, observation: Dict[str, int], model: str = "sc") -> bool:
    """Whether a register valuation is reachable under the model."""
    target = frozenset(observation.items())
    return target in allowed_outcomes(program, model)
