"""Operations and programs for the consistency models."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import SimulationError
from repro.taxonomy import ProcessingUnit

__all__ = ["Load", "Store", "Fence", "Program"]


@dataclass(frozen=True)
class Store:
    """Write ``value`` to shared location ``loc``."""

    loc: str
    value: int


@dataclass(frozen=True)
class Load:
    """Read shared location ``loc`` into register ``reg``."""

    loc: str
    reg: str


@dataclass(frozen=True)
class Fence:
    """Full fence: drains the issuing PU's store buffer."""


Op = object  # union of the three, kept informal for 3.9 compatibility


@dataclass(frozen=True)
class Program:
    """One thread of straight-line code per PU.

    Registers must be globally unique across threads (litmus convention),
    so an outcome is a flat register valuation.
    """

    threads: Dict[ProcessingUnit, Tuple[object, ...]]

    def __post_init__(self) -> None:
        if not self.threads:
            raise SimulationError("a program needs at least one thread")
        regs = []
        for ops in self.threads.values():
            for op in ops:
                if isinstance(op, Load):
                    regs.append(op.reg)
                elif not isinstance(op, (Store, Fence)):
                    raise SimulationError(f"unknown op {op!r}")
        if len(set(regs)) != len(regs):
            raise SimulationError("registers must be unique across threads")

    @property
    def registers(self) -> Tuple[str, ...]:
        return tuple(
            op.reg
            for ops in self.threads.values()
            for op in ops
            if isinstance(op, Load)
        )

    @property
    def locations(self) -> Tuple[str, ...]:
        locs = []
        for ops in self.threads.values():
            for op in ops:
                if isinstance(op, (Load, Store)) and op.loc not in locs:
                    locs.append(op.loc)
        return tuple(locs)
