"""repro.store — the durable, crash-safe, content-addressed result store.

Generalizes the process-lifetime memo caches into a disk-backed store an
exploration campaign survives on: append-only segments, a write-ahead
journal, atomic metadata commits, per-entry checksums verified on read,
and corruption quarantine. See :mod:`repro.store.store` for the commit
protocol and :mod:`repro.store.keys` for the stable key scheme.
"""

from repro.store.cache import StoreBackedResultCache
from repro.store.keys import PICKLE_PROTOCOL, stable_digest, stable_key
from repro.store.store import FORMAT_VERSION, ResultStore, StoreVerifyReport

__all__ = [
    "ResultStore",
    "StoreBackedResultCache",
    "StoreVerifyReport",
    "FORMAT_VERSION",
    "PICKLE_PROTOCOL",
    "stable_digest",
    "stable_key",
]
