"""The durable, crash-safe, content-addressed result store.

A :class:`ResultStore` generalizes the process-lifetime memo caches
(:class:`~repro.exec.cache.TraceCache`/:class:`~repro.exec.cache.ResultCache`)
into a disk-backed store an exploration campaign can survive on: kill the
process at any instruction and reopening the store always yields a
consistent prefix of the committed entries — never a torn record, never a
silently wrong payload.

On-disk layout (one directory)::

    <root>/META.json          store identity: format version, key scheme
    <root>/journal.jsonl      write-ahead journal of committed segment lengths
    <root>/segments/seg-000001.jsonl   append-only entry records
    <root>/quarantine/bad-entries.jsonl  corrupt records moved aside

Entry records are one JSON line each::

    {"k": "<kind>/<sha256 of the memo key>",
     "s": "<sha256 of the payload bytes>",
     "p": "<base64 payload>"}

**Commit protocol** (:meth:`ResultStore.put`): the record is appended to
the current segment, flushed, and ``fsync``\\ ed; only then is the
segment's new byte length appended to the journal and ``fsync``\\ ed. A
crash between the two steps leaves an uncommitted tail after the last
journaled length — reopening truncates it away. Metadata rewrites
(``META.json``, journal compaction, ``gc``, ``export``) go through
``tmp + fsync + rename``, so they are atomic on POSIX filesystems.

**Read path**: payload checksums are verified on every :meth:`get`. A
record that fails its checksum (bit rot, an overwrite landing inside a
committed region) is *quarantined* — its raw bytes move to
``quarantine/``, the key drops from the index, and the caller sees a
miss, so the value is recomputed instead of crashing the run or serving
garbage.

Hit/miss/corruption counters live on a ``store``-component
:class:`~repro.obs.metrics.MetricRegistry` so they export next to every
other metric surface. All operations are thread-safe (one lock): the
exploration daemon shares a single store across its worker threads.
Cross-*process* writers are not coordinated — one writer per store.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json
import os
import pickle
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Hashable, List, Optional, Tuple

from repro.errors import StoreCorruptionError, StoreError
from repro.obs.log import get_logger
from repro.obs.metrics import MetricRegistry
from repro.store.keys import PICKLE_PROTOCOL, stable_key

__all__ = ["ResultStore", "StoreVerifyReport", "FORMAT_VERSION"]

_log = get_logger("store")

FORMAT_VERSION = 1

#: Segment rotation threshold: a new append past this size starts a new
#: segment file, keeping any single scan/truncate/compaction bounded.
DEFAULT_SEGMENT_MAX_BYTES = 4 * 1024 * 1024

_SEGMENT_DIR = "segments"
_QUARANTINE_DIR = "quarantine"
_META_NAME = "META.json"
_JOURNAL_NAME = "journal.jsonl"
_QUARANTINE_FILE = "bad-entries.jsonl"


def _fsync_dir(path: Path) -> None:
    """Best-effort directory fsync (durability of renames/creates)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir-fsync
        pass
    finally:
        os.close(fd)


def _atomic_write(path: Path, data: bytes) -> None:
    """tmp + fsync + rename: the file is either the old or the new bytes."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


@dataclass(frozen=True)
class StoreVerifyReport:
    """Outcome of a full integrity scan (``repro-explore store verify``)."""

    entries: int
    verified: int
    corrupt: Tuple[str, ...] = ()
    quarantined_bytes: int = 0

    @property
    def ok(self) -> bool:
        return not self.corrupt

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.corrupt)} CORRUPT"
        return (
            f"{self.entries} entries, {self.verified} verified, {status}"
            + (
                f" ({self.quarantined_bytes} bytes quarantined)"
                if self.quarantined_bytes
                else ""
            )
        )


@dataclass
class _IndexEntry:
    segment: str
    offset: int
    length: int
    payload_sha: str = field(repr=False, default="")


class ResultStore:
    """Disk-backed content-addressed store with crash-safe appends.

    ``root`` is created on first open. ``segment_max_bytes`` bounds each
    append-only segment file before rotation. Values are pickled with the
    pinned protocol from :mod:`repro.store.keys`, so a stored
    :class:`~repro.sim.results.SimulationResult` round-trips bit-exactly
    (floats included) — the property the byte-identical-resume guarantee
    rests on.
    """

    def __init__(
        self,
        root: "str | Path",
        segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES,
    ) -> None:
        if segment_max_bytes < 1:
            raise StoreError(
                f"segment_max_bytes must be >= 1, got {segment_max_bytes}"
            )
        self.root = Path(root)
        self.segment_max_bytes = segment_max_bytes
        self.metrics = MetricRegistry("store")
        self._hits = self.metrics.counter(
            "hits", unit="lookups", description="store lookups served from disk"
        )
        self._misses = self.metrics.counter(
            "misses", unit="lookups", description="store lookups with no entry"
        )
        self._puts = self.metrics.counter(
            "puts", unit="entries", description="entries committed to disk"
        )
        self._bytes_written = self.metrics.counter(
            "bytes_written", unit="bytes", description="record bytes appended"
        )
        self._corruptions = self.metrics.counter(
            "corruptions",
            unit="entries",
            description="corrupt entries quarantined instead of served",
        )
        self._entries_gauge = self.metrics.gauge(
            "entries", unit="entries", description="live entries in the index"
        )
        self._lock = threading.RLock()
        self._index: Dict[str, _IndexEntry] = {}
        self._segment_handle = None
        self._segment_name = ""
        self._segment_length = 0
        self._journal_handle = None
        self._closed = True
        self._open()

    # -- paths -------------------------------------------------------------

    @property
    def _segments_dir(self) -> Path:
        return self.root / _SEGMENT_DIR

    @property
    def _quarantine_dir(self) -> Path:
        return self.root / _QUARANTINE_DIR

    @property
    def _meta_path(self) -> Path:
        return self.root / _META_NAME

    @property
    def _journal_path(self) -> Path:
        return self.root / _JOURNAL_NAME

    def _segment_path(self, name: str) -> Path:
        return self._segments_dir / name

    # -- open / recovery ---------------------------------------------------

    def _open(self) -> None:
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            self._segments_dir.mkdir(exist_ok=True)
            self._quarantine_dir.mkdir(exist_ok=True)
        except OSError as exc:
            raise StoreError(f"cannot create store root {self.root}: {exc}") from exc
        if self._meta_path.exists():
            self._check_meta()
        else:
            _atomic_write(
                self._meta_path,
                json.dumps(
                    {"format": FORMAT_VERSION, "pickle_protocol": PICKLE_PROTOCOL},
                    sort_keys=True,
                ).encode("utf-8")
                + b"\n",
            )
        committed = self._replay_journal()
        for path in sorted(self._segments_dir.glob("seg-*.jsonl")):
            self._recover_segment(path, committed.get(path.name))
        self._entries_gauge.set(len(self._index))
        # Resume appends on the highest-numbered segment (or start fresh).
        names = sorted(p.name for p in self._segments_dir.glob("seg-*.jsonl"))
        self._segment_name = names[-1] if names else self._next_segment_name("")
        self._closed = False

    def _check_meta(self) -> None:
        try:
            meta = json.loads(self._meta_path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise StoreError(
                f"store meta {self._meta_path} is unreadable: {exc}"
            ) from exc
        if not isinstance(meta, dict) or meta.get("format") != FORMAT_VERSION:
            raise StoreError(
                f"store {self.root} has format {meta.get('format')!r}; "
                f"this build reads format {FORMAT_VERSION}"
            )

    def _replay_journal(self) -> Dict[str, int]:
        """Last committed byte length per segment (torn trailing line ok)."""
        committed: Dict[str, int] = {}
        if not self._journal_path.exists():
            return committed
        try:
            raw = self._journal_path.read_bytes()
        except OSError as exc:
            raise StoreError(
                f"cannot read store journal {self._journal_path}: {exc}"
            ) from exc
        for line in raw.split(b"\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                segment = record["segment"]
                length = int(record["length"])
            except (ValueError, TypeError, KeyError):
                # A torn trailing journal line is the expected shape of a
                # crash between segment-fsync and journal-fsync; the entry
                # it described is simply not yet committed. Debug, not
                # warning: recovery is routine, and a resumed run's stdout
                # must stay byte-identical to an uninterrupted one.
                _log.debug(
                    "store %s: ignoring torn journal line (%d bytes)",
                    self.root,
                    len(line),
                )
                continue
            committed[segment] = length
        return committed

    def _recover_segment(self, path: Path, committed_length: Optional[int]) -> None:
        """Index one segment's records; truncate uncommitted/torn tails.

        With a journaled length, everything beyond it is an uncommitted
        tail from a crash mid-append — dropped without ceremony. Without
        one (journal lost, or the crash predated the first commit), the
        longest cleanly-parsing newline-terminated prefix is kept.
        Newline-terminated records that fail to parse *inside* the
        committed region are genuine corruption: quarantined, scan
        continues.
        """
        try:
            raw = path.read_bytes()
        except OSError as exc:
            raise StoreError(f"cannot read store segment {path}: {exc}") from exc
        limit = len(raw) if committed_length is None else min(committed_length, len(raw))
        truncate_to: Optional[int] = None
        if committed_length is not None and len(raw) > committed_length:
            truncate_to = committed_length
        offset = 0
        while offset < limit:
            newline = raw.find(b"\n", offset, limit)
            if newline < 0:
                if committed_length is None:
                    # Torn final record with no journal to consult: the
                    # clean prefix ends here.
                    truncate_to = offset
                else:
                    # The journal says these bytes were committed, yet the
                    # record is unterminated — corruption, not a torn
                    # append. Quarantine and drop.
                    self._quarantine_bytes(path.name, raw[offset:limit])
                    truncate_to = offset
                break
            line = raw[offset : newline + 1]
            entry = self._parse_record(path.name, offset, line)
            if entry is not None:
                key, index_entry = entry
                self._index[key] = index_entry
            offset = newline + 1
        if truncate_to is not None:
            # Debug for the same byte-identity reason as the journal case:
            # dropping an uncommitted tail is normal crash recovery.
            _log.debug(
                "store %s: truncating %s to %d committed bytes (%d dropped)",
                self.root,
                path.name,
                truncate_to,
                len(raw) - truncate_to,
            )
            with open(path, "r+b") as handle:
                handle.truncate(truncate_to)
                handle.flush()
                os.fsync(handle.fileno())

    def _parse_record(
        self, segment: str, offset: int, line: bytes
    ) -> Optional[Tuple[str, _IndexEntry]]:
        """One record line -> (key, index entry), quarantining bad lines."""
        try:
            record = json.loads(line)
            key = record["k"]
            payload_sha = record["s"]
            if not isinstance(key, str) or not isinstance(payload_sha, str):
                raise TypeError("record fields must be strings")
            record["p"]  # presence check; decoded lazily on get()
        except (ValueError, TypeError, KeyError):
            self._quarantine_bytes(segment, line)
            return None
        return key, _IndexEntry(
            segment=segment, offset=offset, length=len(line), payload_sha=payload_sha
        )

    @staticmethod
    def _next_segment_name(current: str) -> str:
        if not current:
            return "seg-000001.jsonl"
        number = int(current[len("seg-") : -len(".jsonl")])
        return f"seg-{number + 1:06d}.jsonl"

    # -- write path --------------------------------------------------------

    def _ensure_open(self) -> None:
        if self._closed:
            raise StoreError(f"store {self.root} is closed")

    def _writer(self):
        if self._segment_handle is None:
            path = self._segment_path(self._segment_name)
            self._segment_handle = open(path, "ab")
            self._segment_length = self._segment_handle.tell()
        return self._segment_handle

    def _rotate_if_needed(self) -> None:
        if self._segment_length < self.segment_max_bytes:
            return
        self._segment_handle.close()
        self._segment_handle = None
        self._segment_name = self._next_segment_name(self._segment_name)
        self._segment_length = 0

    def _journal_commit(self, segment: str, length: int) -> None:
        if self._journal_handle is None:
            self._journal_handle = open(self._journal_path, "ab")
        line = (
            json.dumps({"segment": segment, "length": length}, sort_keys=True).encode(
                "utf-8"
            )
            + b"\n"
        )
        self._journal_handle.write(line)
        self._journal_handle.flush()
        os.fsync(self._journal_handle.fileno())

    def put_bytes(self, key: str, payload: bytes) -> None:
        """Durably commit one entry (overwrites any prior value for key)."""
        record = (
            json.dumps(
                {
                    "k": key,
                    "s": hashlib.sha256(payload).hexdigest(),
                    "p": base64.b64encode(payload).decode("ascii"),
                },
                sort_keys=True,
            ).encode("utf-8")
            + b"\n"
        )
        with self._lock:
            self._ensure_open()
            self._rotate_if_needed()
            handle = self._writer()
            offset = self._segment_length
            try:
                handle.write(record)
                handle.flush()
                os.fsync(handle.fileno())
            except OSError as exc:
                raise StoreError(
                    f"cannot append to store segment {self._segment_name}: {exc}"
                ) from exc
            self._segment_length = offset + len(record)
            self._journal_commit(self._segment_name, self._segment_length)
            self._index[key] = _IndexEntry(
                segment=self._segment_name,
                offset=offset,
                length=len(record),
                payload_sha=hashlib.sha256(payload).hexdigest(),
            )
            self._puts.inc()
            self._bytes_written.inc(len(record))
            self._entries_gauge.set(len(self._index))

    def get_bytes(self, key: str) -> Optional[bytes]:
        """The payload for ``key``, checksum-verified, or ``None``.

        A committed record that fails its checksum is quarantined and
        reported as a miss — the caller recomputes; the run never crashes
        on store corruption.
        """
        with self._lock:
            self._ensure_open()
            entry = self._index.get(key)
            if entry is None:
                self._misses.inc()
                return None
            payload = self._read_verified(key, entry)
            if payload is None:
                self._misses.inc()
                return None
            self._hits.inc()
            return payload

    def _read_verified(self, key: str, entry: _IndexEntry) -> Optional[bytes]:
        path = self._segment_path(entry.segment)
        try:
            # Appends go through a separate handle; flush it so a
            # same-process read-after-write sees the committed bytes.
            if self._segment_handle is not None and entry.segment == self._segment_name:
                self._segment_handle.flush()
            with open(path, "rb") as handle:
                handle.seek(entry.offset)
                line = handle.read(entry.length)
        except OSError:
            self._quarantine_entry(key, entry, b"")
            return None
        try:
            record = json.loads(line)
            payload = base64.b64decode(record["p"], validate=True)
            if record["k"] != key:
                raise ValueError(f"record key {record['k']!r} != index key {key!r}")
            if hashlib.sha256(payload).hexdigest() != record["s"]:
                raise ValueError("payload checksum mismatch")
        except (ValueError, TypeError, KeyError, binascii.Error):
            self._quarantine_entry(key, entry, line)
            return None
        return payload

    # -- quarantine --------------------------------------------------------

    def _quarantine_bytes(self, segment: str, raw: bytes) -> None:
        """Move corrupt record bytes aside (append-only quarantine file)."""
        self._corruptions.inc()
        wrapper = (
            json.dumps(
                {"segment": segment, "raw": base64.b64encode(raw).decode("ascii")},
                sort_keys=True,
            ).encode("utf-8")
            + b"\n"
        )
        try:
            with open(self._quarantine_dir / _QUARANTINE_FILE, "ab") as handle:
                handle.write(wrapper)
                handle.flush()
                os.fsync(handle.fileno())
        except OSError:  # pragma: no cover - quarantine is best-effort
            _log.warning("store %s: could not persist quarantined record", self.root)
        _log.warning(
            "store %s: quarantined a corrupt record from %s (%d bytes)",
            self.root,
            segment,
            len(raw),
        )

    def _quarantine_entry(self, key: str, entry: _IndexEntry, raw: bytes) -> None:
        self._quarantine_bytes(entry.segment, raw)
        self._index.pop(key, None)
        self._entries_gauge.set(len(self._index))

    # -- typed convenience layer -------------------------------------------

    def put_object(self, memo_key: Hashable, value: object, kind: str = "result") -> str:
        """Pickle + commit ``value`` under the stable key of ``memo_key``."""
        key = stable_key(memo_key, kind=kind)
        self.put_bytes(key, pickle.dumps(value, protocol=PICKLE_PROTOCOL))
        return key

    def get_object(self, memo_key: Hashable, kind: str = "result") -> Optional[object]:
        """The stored value for ``memo_key``, or ``None`` (miss/corrupt)."""
        payload = self.get_bytes(stable_key(memo_key, kind=kind))
        if payload is None:
            return None
        try:
            return pickle.loads(payload)
        except Exception:
            # Checksum passed but the pickle is undecodable (e.g. written
            # by a build whose classes changed shape): treat as a miss.
            self._corruptions.inc()
            _log.warning(
                "store %s: entry for kind %r unpickles no longer; recomputing",
                self.root,
                kind,
            )
            return None

    # -- maintenance operations (CLI: store stat/verify/gc/export) ---------

    def __len__(self) -> int:
        return len(self._index)

    @property
    def hits(self) -> int:
        return int(self._hits.value)

    @property
    def misses(self) -> int:
        return int(self._misses.value)

    @property
    def corruptions(self) -> int:
        return int(self._corruptions.value)

    def stat(self) -> Dict[str, float]:
        """Flat statistics for ``store stat`` and metrics export."""
        with self._lock:
            self._ensure_open()
            segment_files = sorted(self._segments_dir.glob("seg-*.jsonl"))
            quarantine_path = self._quarantine_dir / _QUARANTINE_FILE
            data: Dict[str, float] = {
                "entries": len(self._index),
                "segments": len(segment_files),
                "segment_bytes": float(
                    sum(p.stat().st_size for p in segment_files)
                ),
                "quarantine_bytes": float(
                    quarantine_path.stat().st_size if quarantine_path.exists() else 0
                ),
            }
            data.update(self.metrics.as_dict())
            return data

    def verify(self, strict: bool = False) -> StoreVerifyReport:
        """Checksum every live entry; optionally raise on any corruption.

        Unlike the lazy read path this does not quarantine — ``verify``
        is a report, not a mutation — but it counts and names the bad
        keys so ``store verify`` can exit nonzero and ``gc`` can drop
        them.
        """
        with self._lock:
            self._ensure_open()
            corrupt: List[str] = []
            verified = 0
            quarantined = 0
            for key, entry in sorted(self._index.items()):
                path = self._segment_path(entry.segment)
                try:
                    with open(path, "rb") as handle:
                        handle.seek(entry.offset)
                        line = handle.read(entry.length)
                    record = json.loads(line)
                    payload = base64.b64decode(record["p"], validate=True)
                    ok = (
                        record["k"] == key
                        and hashlib.sha256(payload).hexdigest() == record["s"]
                    )
                except (OSError, ValueError, TypeError, KeyError, binascii.Error):
                    ok = False
                    line = b""
                if ok:
                    verified += 1
                else:
                    corrupt.append(key)
                    quarantined += len(line)
            report = StoreVerifyReport(
                entries=len(self._index),
                verified=verified,
                corrupt=tuple(corrupt),
                quarantined_bytes=quarantined,
            )
        if strict and not report.ok:
            raise StoreCorruptionError(
                f"store {self.root} failed verification: "
                f"{len(report.corrupt)} corrupt entr"
                f"{'y' if len(report.corrupt) == 1 else 'ies'}"
            )
        return report

    def gc(self) -> Dict[str, int]:
        """Compact: rewrite live verified entries, drop dead/corrupt bytes.

        Live records are copied into a fresh first segment written via
        ``tmp + fsync + rename``; superseded duplicates, quarantine-bound
        corruption, and uncommitted tails all disappear. The journal is
        rewritten to the compacted state the same way. Returns counts.
        """
        with self._lock:
            self._ensure_open()
            live: List[Tuple[str, bytes]] = []
            dropped = 0
            for key, entry in sorted(self._index.items()):
                payload = self._read_verified(key, entry)
                if payload is None:
                    dropped += 1
                    continue
                live.append((key, payload))
            before_bytes = sum(
                p.stat().st_size for p in self._segments_dir.glob("seg-*.jsonl")
            )
            if self._segment_handle is not None:
                self._segment_handle.close()
                self._segment_handle = None
            if self._journal_handle is not None:
                self._journal_handle.close()
                self._journal_handle = None
            lines = []
            for key, payload in live:
                lines.append(
                    json.dumps(
                        {
                            "k": key,
                            "s": hashlib.sha256(payload).hexdigest(),
                            "p": base64.b64encode(payload).decode("ascii"),
                        },
                        sort_keys=True,
                    ).encode("utf-8")
                    + b"\n"
                )
            compacted = b"".join(lines)
            fresh_name = "seg-000001.jsonl"
            _atomic_write(self._segment_path(fresh_name), compacted)
            for path in self._segments_dir.glob("seg-*.jsonl"):
                if path.name != fresh_name:
                    path.unlink()
            _atomic_write(
                self._journal_path,
                json.dumps(
                    {"segment": fresh_name, "length": len(compacted)}, sort_keys=True
                ).encode("utf-8")
                + b"\n",
            )
            self._index.clear()
            offset = 0
            for (key, _payload), line in zip(live, lines):
                parsed = self._parse_record(fresh_name, offset, line)
                assert parsed is not None
                self._index[key] = parsed[1]
                offset += len(line)
            self._segment_name = fresh_name
            self._segment_length = len(compacted)
            self._entries_gauge.set(len(self._index))
            after_bytes = len(compacted)
            return {
                "kept": len(live),
                "dropped": dropped,
                "reclaimed_bytes": max(0, before_bytes - after_bytes),
            }

    def export(self, path: "str | Path") -> int:
        """Write every live verified entry to one portable JSONL file.

        The export is itself written atomically; each line is a full
        record (key, checksum, payload), so a store can be rebuilt from
        it. Returns the number of entries exported.
        """
        with self._lock:
            self._ensure_open()
            lines = []
            for key, entry in sorted(self._index.items()):
                payload = self._read_verified(key, entry)
                if payload is None:
                    continue
                lines.append(
                    json.dumps(
                        {
                            "k": key,
                            "s": hashlib.sha256(payload).hexdigest(),
                            "p": base64.b64encode(payload).decode("ascii"),
                        },
                        sort_keys=True,
                    ).encode("utf-8")
                    + b"\n"
                )
            _atomic_write(Path(path), b"".join(lines))
            return len(lines)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._segment_handle is not None:
                self._segment_handle.close()
                self._segment_handle = None
            if self._journal_handle is not None:
                self._journal_handle.close()
                self._journal_handle = None
            self._closed = True

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ResultStore {self.root} entries={len(self._index)}>"
