"""Bridge from the in-memory result memo to the durable store.

:class:`StoreBackedResultCache` is a drop-in
:class:`~repro.exec.cache.ResultCache`: the runner keeps calling
``get``/``put`` with the same memo keys, but misses fall through to a
:class:`~repro.store.store.ResultStore` (promote-on-hit into memory) and
every computed result is written through to disk. Restarting a sweep
against the same store therefore replays completed simulations from disk
— the nonzero-hit-rate, byte-identical-resume property the acceptance
criteria pin.

Semantics preserved from the in-memory cache:

- relabel-on-hit — ``system_name`` is not part of the memo key, so a
  stored result is re-labeled for the asking job on every hit;
- miss accounting — a lookup counts as a miss only if *both* layers
  miss (the disk layer keeps its own hit/miss/corruption counters on
  ``repro.obs``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Hashable, Optional

from repro.exec.cache import ResultCache
from repro.sim.results import SimulationResult
from repro.store.store import ResultStore

__all__ = ["StoreBackedResultCache"]

#: Store namespace for simulation results (see :func:`repro.store.keys.stable_key`).
RESULT_KIND = "result"


class StoreBackedResultCache(ResultCache):
    """A :class:`ResultCache` whose backing truth lives in a :class:`ResultStore`."""

    def __init__(self, store: ResultStore) -> None:
        super().__init__()
        self.store = store

    def get(
        self, key: Hashable, system_name: Optional[str] = None
    ) -> Optional[SimulationResult]:
        """Memory first, then disk (checksum-verified), else ``None``.

        A disk hit is promoted into the in-memory layer so repeated
        lookups within one process never touch the store again. A corrupt
        disk entry is quarantined by the store and surfaces here as a
        plain miss — the runner recomputes and the write-through repairs
        the store.
        """
        try:
            result = self._store[key]
            self.hits += 1
        except KeyError:
            stored = self.store.get_object(key, kind=RESULT_KIND)
            if stored is None:
                self.misses += 1
                return None
            self._store[key] = stored
            self.hits += 1
            result = stored
        if system_name is not None and result.system != system_name:
            result = replace(result, system=system_name)
        return result

    def put(self, key: Hashable, result: SimulationResult) -> None:
        super().put(key, result)
        self.store.put_object(key, result, kind=RESULT_KIND)
