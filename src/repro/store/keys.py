"""Stable content-addressed keys for the durable result store.

The in-memory memo layers (:mod:`repro.exec.cache`) key on hashable
tuples of frozen dataclasses — perfect inside one process, useless on
disk: ``hash()`` is salted per interpreter and the tuples themselves are
not filenames. :func:`stable_key` turns any picklable memo key into a
stable hex digest: SHA-256 over a canonical ``pickle`` (protocol pinned,
so the byte stream for a given pure-data object graph is identical in
every process and on every run).

Determinism argument: every key this store sees is a tree of frozen
dataclasses, enums, strings, numbers, and tuples built by deterministic
code — pickle serializes such a graph bottom-up in field order, dicts in
insertion order, with no memo-id leakage for graphs without shared
mutable substructure. The round-trip is pinned by tests
(tests/store/test_keys.py) including across processes.

Digests of large shared components (kernel traces appear in thousands of
job keys per sweep) are memoized per object via a weak-key map, so a
ranking run digests each trace once, not once per design point.
"""

from __future__ import annotations

import hashlib
import pickle
import weakref
from typing import Hashable

from repro.errors import StoreError

__all__ = ["stable_key", "stable_digest", "PICKLE_PROTOCOL"]

#: Pinned pickle protocol: the digest of a key must never depend on the
#: interpreter's default protocol changing between Python versions.
PICKLE_PROTOCOL = 4

#: Per-object digest memo for weakref-able components (traces, configs).
#: Weak keys: the memo never keeps a retired trace alive.
_DIGEST_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def stable_digest(obj: object) -> str:
    """A stable SHA-256 hex digest of one picklable object.

    Tuples digest element-wise (so a composite job key reuses the
    memoized digest of its trace instead of re-pickling it); everything
    else digests its canonical pickle, memoized per object where weak
    references allow.
    """
    if isinstance(obj, tuple):
        hasher = hashlib.sha256(b"repro-tuple:")
        for element in obj:
            hasher.update(stable_digest(element).encode("ascii"))
            hasher.update(b";")
        return hasher.hexdigest()
    try:
        return _DIGEST_MEMO[obj]
    except (KeyError, TypeError):
        pass
    try:
        payload = pickle.dumps(obj, protocol=PICKLE_PROTOCOL)
    except Exception as exc:
        raise StoreError(
            f"cannot derive a stable store key from {type(obj).__name__!r}: "
            f"object does not pickle ({exc})"
        ) from exc
    digest = hashlib.sha256(payload).hexdigest()
    try:
        _DIGEST_MEMO[obj] = digest
    except TypeError:
        pass  # not weakref-able/hashable; recompute next time
    return digest


def stable_key(key: Hashable, kind: str = "result") -> str:
    """The store's on-disk key for one memo key: ``<kind>/<digest>``.

    ``kind`` namespaces entry classes (simulation results vs. traces vs.
    future artifact types) so one store can hold them all without digest
    collisions meaning anything across classes.
    """
    if not kind or "/" in kind:
        raise StoreError(f"store kind must be a bare token, got {kind!r}")
    return f"{kind}/{stable_digest(key)}"
