"""A small fully-associative TLB with LRU replacement.

§II-A1 notes that different per-PU page table formats "complicate TLB
designs and memory management units"; the TLB model exposes exactly the
quantities such a study needs (hit/miss counts, walk costs charged by the
caller).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict

from repro.errors import ConfigError

__all__ = ["TLB"]


class TLB:
    """Caches virtual-page -> physical-frame translations."""

    def __init__(self, entries: int, page_bytes: int) -> None:
        if entries < 1:
            raise ConfigError("TLB needs at least one entry")
        if page_bytes <= 0 or page_bytes & (page_bytes - 1):
            raise ConfigError("page size must be a positive power of two")
        self.entries = entries
        self.page_bytes = page_bytes
        self._map: "OrderedDict[int, int]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, vaddr: int) -> "int | None":
        """Cached frame number for ``vaddr``'s page, or None on a miss."""
        vpn = vaddr // self.page_bytes
        frame = self._map.get(vpn)
        if frame is None:
            self.misses += 1
            return None
        self.hits += 1
        self._map.move_to_end(vpn)
        return frame

    def install(self, vaddr: int, frame: int) -> None:
        """Install a translation after a walk, evicting LRU if full."""
        vpn = vaddr // self.page_bytes
        if vpn in self._map:
            self._map.move_to_end(vpn)
            self._map[vpn] = frame
            return
        while len(self._map) >= self.entries:
            self._map.popitem(last=False)
        self._map[vpn] = frame

    def invalidate(self, vaddr: int) -> bool:
        """Shoot down one page's entry; True if it was present."""
        return self._map.pop(vaddr // self.page_bytes, None) is not None

    def flush(self) -> None:
        self._map.clear()

    @property
    def occupancy(self) -> int:
        return len(self._map)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, int]:
        return {"tlb_hits": self.hits, "tlb_misses": self.misses}
