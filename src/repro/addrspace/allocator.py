"""Region allocators and allocation records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import AllocationError
from repro.taxonomy import ProcessingUnit

__all__ = ["Allocation", "RegionAllocator"]


@dataclass(frozen=True)
class Allocation:
    """One allocated buffer.

    ``home`` is the PU whose private region holds it (None for buffers in
    the shared window); ``shared`` marks shared-window residence; ``name``
    is the program-level identifier (used by ownership control and the
    mini-DSL lowering).
    """

    name: str
    addr: int
    size: int
    home: Optional[ProcessingUnit]
    shared: bool

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise AllocationError(f"{self.name}: allocation size must be positive")
        if self.addr < 0:
            raise AllocationError(f"{self.name}: negative address")

    @property
    def end(self) -> int:
        return self.addr + self.size

    def contains(self, addr: int) -> bool:
        return self.addr <= addr < self.end


class RegionAllocator:
    """A bump allocator over one virtual region with alignment and free().

    Freed space is only reclaimed when everything is freed (arena-style),
    which matches how the short-lived kernels of the study allocate; the
    allocator still tracks live bytes so exhaustion is detected honestly.
    """

    def __init__(self, name: str, base: int, size: int, align: int = 64) -> None:
        if size <= 0:
            raise AllocationError(f"region {name}: size must be positive")
        if align <= 0 or align & (align - 1):
            raise AllocationError(f"region {name}: alignment must be a power of two")
        self.name = name
        self.base = base
        self.size = size
        self.align = align
        self._cursor = base
        self._live: Dict[int, int] = {}

    @property
    def end(self) -> int:
        return self.base + self.size

    @property
    def used_bytes(self) -> int:
        return self._cursor - self.base

    @property
    def live_bytes(self) -> int:
        return sum(self._live.values())

    def allocate(self, size: int) -> int:
        """Reserve ``size`` bytes; returns the base address."""
        if size <= 0:
            raise AllocationError(f"region {self.name}: size must be positive")
        aligned = (self._cursor + self.align - 1) & ~(self.align - 1)
        if aligned + size > self.end:
            raise AllocationError(
                f"region {self.name}: out of space "
                f"({self.end - aligned} bytes left, {size} requested)"
            )
        self._cursor = aligned + size
        self._live[aligned] = size
        return aligned

    def free(self, addr: int) -> None:
        """Release a previous allocation."""
        if self._live.pop(addr, None) is None:
            raise AllocationError(f"region {self.name}: {addr:#x} is not allocated")
        if not self._live:
            self._cursor = self.base

    def grow(self, new_size: int) -> None:
        """Extend the region in place (existing allocations stay valid)."""
        if new_size <= self.size:
            raise AllocationError(
                f"region {self.name}: grow target {new_size} not larger than {self.size}"
            )
        self.size = new_size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end
