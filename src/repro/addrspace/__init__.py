"""Memory address-space models (paper §II-A, Figure 1).

Four designs, one class each, all sharing the :class:`AddressSpace`
interface:

- :class:`~repro.addrspace.unified.UnifiedAddressSpace` — one space, any
  task anywhere, no explicit transfers (possibly virtually unified over
  discrete memories);
- :class:`~repro.addrspace.disjoint.DisjointAddressSpace` — private spaces,
  explicit communication always required;
- :class:`~repro.addrspace.partially_shared.PartiallySharedAddressSpace` —
  a shared window with optional LRB-style ownership control;
- :class:`~repro.addrspace.adsm.AdsmAddressSpace` — the CPU sees everything,
  the GPU only its own space (GMAC).

Substrates: page tables with per-PU page sizes (:mod:`paging`), TLBs
(:mod:`tlb`), allocators (:mod:`allocator`), ownership control
(:mod:`ownership`), and the PCI aperture window (:mod:`aperture`).
"""

from repro.addrspace.allocator import Allocation, RegionAllocator
from repro.addrspace.aperture import PciAperture
from repro.addrspace.base import AddressSpace, make_address_space
from repro.addrspace.adsm import AdsmAddressSpace
from repro.addrspace.disjoint import DisjointAddressSpace
from repro.addrspace.layout import (
    CPU_PRIVATE_BASE,
    GPU_PRIVATE_BASE,
    REGION_BYTES,
    SHARED_BASE,
)
from repro.addrspace.ownership import OwnershipTable
from repro.addrspace.paging import PageTable
from repro.addrspace.partially_shared import PartiallySharedAddressSpace
from repro.addrspace.tlb import TLB
from repro.addrspace.unified import UnifiedAddressSpace

__all__ = [
    "AddressSpace",
    "make_address_space",
    "UnifiedAddressSpace",
    "DisjointAddressSpace",
    "PartiallySharedAddressSpace",
    "AdsmAddressSpace",
    "Allocation",
    "RegionAllocator",
    "PageTable",
    "TLB",
    "OwnershipTable",
    "PciAperture",
    "CPU_PRIVATE_BASE",
    "GPU_PRIVATE_BASE",
    "SHARED_BASE",
    "REGION_BYTES",
]
