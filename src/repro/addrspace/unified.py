"""Unified memory address space (paper §II-A1).

"A unified memory address space means that there is no separation between
CPU address space and GPU address space. Any tasks can be run on any PU
without explicit data transfer commands." The space may still be *virtually*
unified over discrete physical memories — each PU keeps its own page table
with its own page size and format — and unified does **not** imply
coherence (CUDA 4.0's UVA is the paper's example).
"""

from __future__ import annotations

from typing import Optional

from repro.config.system import SystemConfig
from repro.addrspace.allocator import Allocation
from repro.addrspace.base import AddressSpace
from repro.taxonomy import AddressSpaceKind, ProcessingUnit

__all__ = ["UnifiedAddressSpace"]


class UnifiedAddressSpace(AddressSpace):
    """One address space; every address reachable by every PU.

    Allocations land in the requesting PU's region purely as a locality
    hint; reachability never depends on it. ``shared=True`` is accepted and
    ignored (everything is shared).
    """

    kind = AddressSpaceKind.UNIFIED

    def __init__(self, config: Optional[SystemConfig] = None) -> None:
        super().__init__(config)

    def alloc(
        self,
        name: str,
        size: int,
        pu: ProcessingUnit = ProcessingUnit.CPU,
        shared: bool = False,
    ) -> Allocation:
        region = self.cpu_region if pu is ProcessingUnit.CPU else self.gpu_region
        addr = region.allocate(size)
        # Map eagerly in the allocating PU's table; the peer maps on demand
        # (that is what a virtually unified space over discrete memories
        # does — the runtime migrates pages on first touch).
        self.page_tables[pu].map_range(addr, size)
        return self._register(
            Allocation(name=name, addr=addr, size=size, home=pu, shared=True)
        )

    def accessible(self, pu: ProcessingUnit, addr: int) -> bool:
        return (
            self.cpu_region.contains(addr)
            or self.gpu_region.contains(addr)
        )

    def transfer_required(self, allocation: Allocation, to_pu: ProcessingUnit) -> bool:
        """Never: the defining property of the unified space."""
        return False
