"""The PCI aperture: a small shared window over PCI-E (paper §II-A3).

"Allocating a portion of the PCI aperture space to the user space of an
application provides a common buffer between CPUs and GPUs ... this method
is intended to support only small portions of memory space" — so the
aperture is a :class:`~repro.addrspace.allocator.RegionAllocator` with a
deliberately small default capacity, plus async-copy bookkeeping.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import AllocationError
from repro.addrspace.allocator import RegionAllocator
from repro.units import MB

__all__ = ["PciAperture"]

#: Default aperture size: small relative to system memory, per the paper.
DEFAULT_APERTURE_BYTES = 32 * MB


class PciAperture:
    """A window of virtual memory pinned for CPU<->GPU buffers.

    ``allocate`` fails once the window fills (the paper's noted limitation,
    "although in principle the address space can grow dynamically" — pass
    ``growable=True`` to model that variant). The aperture natively
    supports asynchronous copies; :meth:`record_async_copy` counts them for
    reports.
    """

    def __init__(
        self,
        base: int,
        size: int = DEFAULT_APERTURE_BYTES,
        growable: bool = False,
    ) -> None:
        self._region = RegionAllocator("pci-aperture", base, size)
        self.growable = growable
        self.grow_events = 0
        self.async_copies = 0
        self.async_bytes = 0

    @property
    def base(self) -> int:
        return self._region.base

    @property
    def size(self) -> int:
        return self._region.size

    def allocate(self, size: int) -> int:
        """Reserve an aperture buffer; grows the window if permitted."""
        try:
            return self._region.allocate(size)
        except AllocationError:
            if not self.growable:
                raise
        # Grow by doubling until the request fits (the "in principle the
        # address space can grow dynamically" variant).
        new_size = self._region.size
        while new_size - self._region.used_bytes < size + self._region.align:
            new_size *= 2
        self._region.grow(new_size)
        self.grow_events += 1
        return self._region.allocate(size)

    def free(self, addr: int) -> None:
        self._region.free(addr)

    def contains(self, addr: int) -> bool:
        return self._region.contains(addr)

    def record_async_copy(self, num_bytes: int) -> None:
        """Count one asynchronous aperture copy."""
        if num_bytes < 0:
            raise AllocationError("copy size must be non-negative")
        self.async_copies += 1
        self.async_bytes += num_bytes

    def stats(self) -> Dict[str, int]:
        return {
            "used_bytes": self._region.used_bytes,
            "grow_events": self.grow_events,
            "async_copies": self.async_copies,
            "async_bytes": self.async_bytes,
        }
