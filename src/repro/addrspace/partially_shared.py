"""Partially shared memory address space (paper §II-A3).

"A part of the memory space is shared to get benefits from both the
convenience of using shared memory and to reduce the hardware design cost."
Shared-window objects come from ``sharedmalloc`` and carry LRB-style
ownership: a PU must own an object before touching it, and ownership moves
with explicit acquire/release commands — which is why the shared window
needs no hardware coherence.

The window can be backed by a :class:`~repro.addrspace.aperture.PciAperture`
(the LRB implementation) or live in ordinary memory; both PUs map the same
virtual range, so each shared allocation is mapped in *both* page tables
(the "maintaining page table mapping in both CPUs and GPUs" overhead the
paper notes).
"""

from __future__ import annotations

from typing import Optional

from repro.config.system import SystemConfig
from repro.errors import AllocationError
from repro.addrspace.allocator import Allocation, RegionAllocator
from repro.addrspace.aperture import PciAperture
from repro.addrspace.base import AddressSpace
from repro.addrspace.layout import REGION_BYTES, SHARED_BASE
from repro.addrspace.ownership import OwnershipTable
from repro.taxonomy import AddressSpaceKind, ProcessingUnit

__all__ = ["PartiallySharedAddressSpace"]


class PartiallySharedAddressSpace(AddressSpace):
    """Private regions plus an owned shared window.

    ``use_aperture`` backs the window with a small PCI aperture (LRB);
    otherwise the window is a full-size region (an integrated
    implementation). ``ownership_control`` can be disabled — ownership "is
    for performance optimizations and is not essential" (§II-A3) — in which
    case shared data needs coherence support instead.
    """

    kind = AddressSpaceKind.PARTIALLY_SHARED

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        use_aperture: bool = True,
        ownership_control: bool = True,
    ) -> None:
        super().__init__(config)
        self.use_aperture = use_aperture
        self.ownership_control = ownership_control
        self.ownership = OwnershipTable() if ownership_control else None
        if use_aperture:
            self.aperture: Optional[PciAperture] = PciAperture(SHARED_BASE)
            self.shared_region = RegionAllocator(
                "shared-window", SHARED_BASE, self.aperture.size
            )
        else:
            self.aperture = None
            self.shared_region = RegionAllocator("shared-window", SHARED_BASE, REGION_BYTES)
        self._aperture_blocks: dict = {}
        self.globalizations = 0
        self.privatizations = 0

    def alloc(
        self,
        name: str,
        size: int,
        pu: ProcessingUnit = ProcessingUnit.CPU,
        shared: bool = False,
    ) -> Allocation:
        if not shared:
            region = self.cpu_region if pu is ProcessingUnit.CPU else self.gpu_region
            addr = region.allocate(size)
            self.page_tables[pu].map_range(addr, size)
            return self._register(
                Allocation(name=name, addr=addr, size=size, home=pu, shared=False)
            )
        # sharedmalloc: window residence, mapped in BOTH page tables.
        addr = self.shared_region.allocate(size)
        if self.aperture is not None:
            # Keep the aperture's accounting in sync with the window.
            self._aperture_blocks[name] = self.aperture.allocate(size)
        for table in self.page_tables.values():
            table.map_range(addr, size)
        if self.ownership is not None:
            self.ownership.register(name, owner=pu)
        return self._register(
            Allocation(name=name, addr=addr, size=size, home=None, shared=True)
        )

    def free(self, allocation: Allocation) -> None:
        """Release a buffer, deregistering shared objects from ownership
        and releasing their aperture backing."""
        super().free(allocation)
        if allocation.shared:
            if self.ownership is not None and self.ownership.is_registered(
                allocation.name
            ):
                self.ownership.deregister(allocation.name)
            block = self._aperture_blocks.pop(allocation.name, None)
            if block is not None and self.aperture is not None:
                self.aperture.free(block)

    def accessible(self, pu: ProcessingUnit, addr: int) -> bool:
        own = self.cpu_region if pu is ProcessingUnit.CPU else self.gpu_region
        return own.contains(addr) or self.shared_region.contains(addr)

    def check_object_access(self, name: str, pu: ProcessingUnit) -> None:
        """Ownership check for a shared object (no-op without ownership)."""
        if self.ownership is not None and self.ownership.is_registered(name):
            self.ownership.check_access(name, pu)

    # -- globalization / privatization (§II-A3) ------------------------------

    def globalize(self, allocation: Allocation) -> Allocation:
        """Move a private buffer into the shared window at run time.

        §II-A3: "Globalization and privatization can also be performed
        during program execution to indicate ownership changes." The
        buffer gets a fresh shared-window address (mapped in both page
        tables) and, under ownership control, starts owned by its old
        home PU. Returns the new allocation (the old one is freed).
        """
        if allocation.shared:
            raise AllocationError(f"{allocation.name!r} is already shared")
        home = allocation.home
        name, size = allocation.name, allocation.size
        self.free(allocation)
        self.globalizations += 1
        return self.alloc(name, size, pu=home, shared=True)

    def privatize(
        self, allocation: Allocation, pu: ProcessingUnit
    ) -> Allocation:
        """Move a shared buffer into ``pu``'s private space at run time.

        Only the current owner may privatize (it holds the authoritative
        copy). Returns the new private allocation.
        """
        if not allocation.shared:
            raise AllocationError(f"{allocation.name!r} is not in the shared window")
        if self.ownership is not None:
            self.ownership.check_access(allocation.name, pu)
        name, size = allocation.name, allocation.size
        self.free(allocation)  # also deregisters ownership
        self.privatizations += 1
        return self.alloc(name, size, pu=pu, shared=False)

    def transfer_required(self, allocation: Allocation, to_pu: ProcessingUnit) -> bool:
        """Shared objects move via ownership transfer, not copies; private
        remote objects cannot be reached at all (copy through the window)."""
        if allocation.shared:
            return False
        return allocation.home is not to_pu

    def stats(self):
        merged = super().stats()
        if self.ownership is not None:
            merged.update(self.ownership.stats())
        if self.aperture is not None:
            for key, value in self.aperture.stats().items():
                merged[f"aperture_{key}"] = value
        return merged
