"""Asymmetric distributed shared memory (paper §II-A4, GMAC [10]).

"While one PU can access the entire memory address space, the other PU can
only access its private memory address space." The CPU sees everything; the
GPU sees only its private region plus buffers allocated with ``adsmAlloc``,
which map "two identical memory address ranges ... to each PU". Only the
CPU side maintains coherent data states (here: a runtime, per GMAC).
"""

from __future__ import annotations

from typing import Optional

from repro.config.system import SystemConfig
from repro.errors import AllocationError
from repro.addrspace.allocator import Allocation, RegionAllocator
from repro.addrspace.base import AddressSpace
from repro.addrspace.layout import REGION_BYTES, SHARED_BASE
from repro.taxonomy import AddressSpaceKind, ProcessingUnit

__all__ = ["AdsmAddressSpace"]


class AdsmAddressSpace(AddressSpace):
    """CPU-omniscient, GPU-private address space with adsmAlloc buffers."""

    kind = AddressSpaceKind.ADSM

    #: The four fundamental ADSM APIs (§II-A4): shared-data allocation,
    #: shared-data release, kernel invocation, return synchronization.
    FUNDAMENTAL_APIS = ("adsmAlloc", "accfree", "kernel-invoke", "return-sync")

    def __init__(self, config: Optional[SystemConfig] = None) -> None:
        super().__init__(config)
        self.shared_region = RegionAllocator("adsm-window", SHARED_BASE, REGION_BYTES)

    def alloc(
        self,
        name: str,
        size: int,
        pu: ProcessingUnit = ProcessingUnit.CPU,
        shared: bool = False,
    ) -> Allocation:
        if shared:
            # adsmAlloc: identical virtual range mapped in both tables.
            addr = self.shared_region.allocate(size)
            for table in self.page_tables.values():
                table.map_range(addr, size)
            return self._register(
                Allocation(name=name, addr=addr, size=size, home=None, shared=True)
            )
        region = self.cpu_region if pu is ProcessingUnit.CPU else self.gpu_region
        addr = region.allocate(size)
        self.page_tables[pu].map_range(addr, size)
        return self._register(
            Allocation(name=name, addr=addr, size=size, home=pu, shared=False)
        )

    def adsm_alloc(self, name: str, size: int) -> Allocation:
        """The paper's ``adsmAlloc`` (alias for ``alloc(shared=True)``)."""
        return self.alloc(name, size, shared=True)

    def accfree(self, allocation: Allocation) -> None:
        """The paper's ``accfree``: release a shared buffer."""
        if not allocation.shared:
            raise AllocationError(f"{allocation.name!r} is not an ADSM buffer")
        self.free(allocation)

    def accessible(self, pu: ProcessingUnit, addr: int) -> bool:
        if pu is ProcessingUnit.CPU:
            # The CPU can access the entire memory address space.
            return (
                self.cpu_region.contains(addr)
                or self.gpu_region.contains(addr)
                or self.shared_region.contains(addr)
            )
        return self.gpu_region.contains(addr) or self.shared_region.contains(addr)

    def transfer_required(self, allocation: Allocation, to_pu: ProcessingUnit) -> bool:
        """The GPU needs data staged into its space or the ADSM window;
        the CPU never needs a transfer ("no need to transfer data back to
        the host memory space")."""
        if to_pu is ProcessingUnit.CPU:
            return False
        return not allocation.shared and allocation.home is not ProcessingUnit.GPU
