"""Disjoint memory address space (paper §II-A2).

"In a disjoint memory address space, there should be explicit communication
between two address spaces in order to access data allocated in the other
space." Each PU sees only its own region; using remote data requires a
device-side alias buffer plus an explicit copy (the ``Memcpy`` pattern of
Figure 3(a)).
"""

from __future__ import annotations

from typing import Optional

from repro.config.system import SystemConfig
from repro.errors import AllocationError
from repro.addrspace.allocator import Allocation
from repro.addrspace.base import AddressSpace
from repro.taxonomy import AddressSpaceKind, ProcessingUnit

__all__ = ["DisjointAddressSpace"]


class DisjointAddressSpace(AddressSpace):
    """Two private spaces; no shared window at all."""

    kind = AddressSpaceKind.DISJOINT

    def __init__(self, config: Optional[SystemConfig] = None) -> None:
        super().__init__(config)

    def alloc(
        self,
        name: str,
        size: int,
        pu: ProcessingUnit = ProcessingUnit.CPU,
        shared: bool = False,
    ) -> Allocation:
        if shared:
            raise AllocationError(
                "the disjoint address space has no shared window; "
                "allocate per-PU buffers and copy explicitly"
            )
        region = self.cpu_region if pu is ProcessingUnit.CPU else self.gpu_region
        addr = region.allocate(size)
        self.page_tables[pu].map_range(addr, size)
        return self._register(
            Allocation(name=name, addr=addr, size=size, home=pu, shared=False)
        )

    def alloc_device_copy(self, source: Allocation, pu: ProcessingUnit) -> Allocation:
        """Allocate the remote alias for ``source`` on ``pu``.

        This is Figure 3(a)'s ``GPUmemallocate``: the duplicated pointer a
        disjoint space forces programmers to manage.
        """
        if source.home is pu:
            raise AllocationError(
                f"{source.name!r} already lives on {pu}; no alias needed"
            )
        return self.alloc(f"{source.name}@{pu}", source.size, pu=pu)

    def accessible(self, pu: ProcessingUnit, addr: int) -> bool:
        region = self.cpu_region if pu is ProcessingUnit.CPU else self.gpu_region
        return region.contains(addr)

    def transfer_required(self, allocation: Allocation, to_pu: ProcessingUnit) -> bool:
        """Always, for remote data: explicit communication is the rule."""
        return allocation.home is not to_pu
