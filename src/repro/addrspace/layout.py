"""Virtual-address layout shared by all address-space models.

Three fixed regions keep the models comparable: CPU-private, GPU-private,
and the shared window. Which regions exist and who may touch them is what
distinguishes the four designs of Figure 1.
"""

from repro.units import MB

__all__ = ["CPU_PRIVATE_BASE", "GPU_PRIVATE_BASE", "SHARED_BASE", "REGION_BYTES"]

#: Base virtual address of the CPU-private region.
CPU_PRIVATE_BASE = 0x1000_0000
#: Base virtual address of the GPU-private region.
GPU_PRIVATE_BASE = 0x2000_0000
#: Base virtual address of the shared window (PAS/ADSM/unified use it).
SHARED_BASE = 0x3000_0000
#: Size of each region.
REGION_BYTES = 256 * MB
